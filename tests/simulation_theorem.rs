//! Integration test of Theorem 4 (the Simulation Theorem), eq. (7):
//!
//! `C(Z, σ) ≤ C_TLB(X, σ) + C_IO(Y, σ) + n/poly(P)`
//!
//! on all three of the paper's workloads. With theory-derived allocator
//! parameters the failure term is empirically zero and the inequality is
//! *equality* — Z's TLB misses match X's and its IOs match Y's exactly.

use atp::core::{IcebergAlloc, IcebergParams, OneChoiceAlloc, OneChoiceParams};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{DecoupledMm, MemoryManager, PagingOnlyMm, VirtualOnlyMm};
use atp::replacement::PolicyKind;
use atp::types::{CostModel, VirtPage};
use atp::workloads::{Bimodal, Graph500Config, Graph500Trace, ParetoWalk};

const PHYS: u64 = 1 << 14;
const TLB_ENTRIES: u64 = 96;
const N: usize = 150_000;

fn check_theorem4(name: &str, trace: &[VirtPage]) {
    let params = IcebergParams::derive(PHYS);
    let mut z = DecoupledMm::new(
        IcebergAlloc::new(&params, 21),
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries: TLB_ENTRIES,
            tlb_policy: PolicyKind::Lru,
            resident_pages: params.max_resident,
            ram_policy: PolicyKind::Lru,
            seed: 21,
        },
    );
    let hmax = z.coverage();
    let mut x = VirtualOnlyMm::new(hmax, TLB_ENTRIES, PolicyKind::Lru, 21);
    let mut y = PagingOnlyMm::new(params.max_resident, PolicyKind::Lru, 21);

    for &p in trace {
        z.access(p);
        x.access(p);
        y.access(p);
    }

    let model = CostModel::new(0.01);
    let (cz, cx, cy) = (z.costs(), x.costs(), y.costs());

    // The additive slack the theorem allows: n/poly(P). We grant n/P.
    let slack = trace.len() as f64 / PHYS as f64;
    assert!(
        cz.total(model) <= cx.tlb_cost(model) + cy.io_cost() + slack,
        "{name}: C(Z)={} > C_TLB(X)+C_IO(Y)+slack={}",
        cz.total(model),
        cx.tlb_cost(model) + cy.io_cost() + slack
    );

    // With zero failures the accounting is exact.
    if cz.paging_failures == 0 {
        assert_eq!(cz.tlb_misses, cx.tlb_misses, "{name}: TLB misses differ");
        assert_eq!(cz.ios, cy.ios, "{name}: IOs differ");
        assert_eq!(cz.decode_misses, 0);
    }
    // Failures must be vanishingly rare regardless.
    assert!(
        (cz.paging_failures as f64) <= slack,
        "{name}: {} failures exceeds n/P={slack}",
        cz.paging_failures
    );
}

#[test]
fn theorem4_bimodal() {
    let trace: Vec<VirtPage> = Bimodal::scaled(31, 1 << 16).take(N).collect();
    check_theorem4("bimodal", &trace);
}

#[test]
fn theorem4_pareto_walk() {
    let trace: Vec<VirtPage> = ParetoWalk::new(32, 1 << 16, 0.01).take(N).collect();
    check_theorem4("pareto-walk", &trace);
}

#[test]
fn theorem4_graph500() {
    let g = Graph500Trace::generate(&Graph500Config {
        scale: 13,
        edge_factor: 16,
        seed: 33,
        max_accesses: N,
    });
    let trace: Vec<VirtPage> = g.iter().collect();
    check_theorem4("graph500", &trace);
}

#[test]
fn theorem4_holds_for_one_choice_allocator_too() {
    // Theorem 1's scheme plugs into the same combinator.
    let params = OneChoiceParams::derive(PHYS);
    let mut z = DecoupledMm::new(
        OneChoiceAlloc::new(&params, 5),
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries: TLB_ENTRIES,
            tlb_policy: PolicyKind::Lru,
            resident_pages: params.max_resident,
            ram_policy: PolicyKind::Lru,
            seed: 5,
        },
    );
    let hmax = z.coverage();
    assert!(hmax >= 2, "one-choice hmax at least 2, got {hmax}");
    let mut x = VirtualOnlyMm::new(hmax, TLB_ENTRIES, PolicyKind::Lru, 5);
    let mut y = PagingOnlyMm::new(params.max_resident, PolicyKind::Lru, 5);
    let trace: Vec<VirtPage> = Bimodal::scaled(55, 1 << 16).take(N).collect();
    for &p in &trace {
        z.access(p);
        x.access(p);
        y.access(p);
    }
    assert_eq!(z.costs().paging_failures, 0);
    assert_eq!(z.costs().tlb_misses, x.costs().tlb_misses);
    assert_eq!(z.costs().ios, y.costs().ios);
}

#[test]
fn z_beats_both_pure_strategies_on_mixed_cost() {
    // The whole point: X is terrible on IOs (it has none to count — compare
    // against classic h=hmax instead) and plain paging (h=1) is terrible on
    // TLB misses; Z gets both. Compare against classic managers.
    use atp::memmgmt::classic::{ClassicConfig, ClassicMm};
    let params = IcebergParams::derive(PHYS);
    // 1% of accesses are cold so the huge-page manager pays visible
    // amplification; the 512-page hot set fits in every manager's RAM and
    // fits a 96-entry TLB at h=hmax=8 (64 entries) but not at h=1.
    let trace: Vec<VirtPage> = Bimodal::new(77, 1 << 18, 512, 0.99).take(N).collect();

    let mut z = DecoupledMm::new(
        IcebergAlloc::new(&params, 9),
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries: TLB_ENTRIES,
            tlb_policy: PolicyKind::Lru,
            resident_pages: params.max_resident,
            ram_policy: PolicyKind::Lru,
            seed: 9,
        },
    );
    let hmax = z.coverage();
    // Classic managers get the same number of resident pages as Z for a
    // like-for-like comparison.
    let mut flat = ClassicMm::new(ClassicConfig {
        huge_pages: 1,
        phys_pages: params.max_resident,
        tlb_entries: TLB_ENTRIES,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 9,
    });
    let mut huge = ClassicMm::new(ClassicConfig {
        huge_pages: hmax,
        phys_pages: params.max_resident,
        tlb_entries: TLB_ENTRIES,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 9,
    });
    for &p in &trace {
        z.access(p);
        flat.access(p);
        huge.access(p);
    }
    // Z's TLB misses ≈ huge's (same coverage), far below flat's.
    assert!(z.costs().tlb_misses * 2 < flat.costs().tlb_misses);
    // Z's IOs ≈ flat's (page granular), far below huge's.
    assert!(z.costs().ios * 2 < huge.costs().ios);
}
