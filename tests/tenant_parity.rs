//! Single-tenant equivalence suite for the multi-tenancy refactor.
//!
//! The tentpole invariant: threading ASIDs through the stack must not
//! perturb single-tenant behaviour *at all*. An `Asid(0)`-only run
//! through [`TenantArena`] is the identity embedding over the wrapped
//! manager, so its [`Costs`] must be **bit-identical** to driving the
//! manager directly — for every golden-suite manager on every golden
//! trace (the same 7 × 3 grid as `tests/golden_parity.rs`, whose golden
//! table those direct runs are already pinned against). The tagged-TLB
//! manager gets the same treatment against its physical twin
//! `ClassicMm`, and an N-tenant sweep is pinned as a pure function of
//! its seed.

use atp::core::{IcebergAlloc, IcebergParams};
use atp::memmgmt::classic::{ClassicConfig, ClassicMm};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{
    DecoupledMm, HybridMm, MemoryManager, PagingOnlyMm, SparseConfig, SparseDecoupledMm,
    TenantArena, TenantManager, TenantMm, TenantMmConfig, ThpConfig, ThpMm, VirtualOnlyMm,
};
use atp::replacement::PolicyKind;
use atp::sim::run_tenants;
use atp::types::{Asid, Costs, TenantOp, VirtPage};
use atp::workloads::{Graph500Config, Graph500Trace, Sequential, TenantMix, Zipfian};

const N: usize = 60_000;
const PHYS: u64 = 1 << 12;
const TLB: u64 = 128;

/// Wide enough that every golden trace's pages fit one tenant's span.
const VSPAN: u64 = 1 << 40;

fn traces() -> Vec<(&'static str, Vec<VirtPage>)> {
    vec![
        ("zipf", Zipfian::new(42, 1 << 14, 1.1).take(N).collect()),
        ("graph500", {
            Graph500Trace::generate(&Graph500Config {
                scale: 12,
                edge_factor: 8,
                seed: 7,
                max_accesses: N,
            })
            .iter()
            .collect()
        }),
        ("sequential", Sequential::new(1 << 13).take(N).collect()),
    ]
}

fn managers() -> Vec<Box<dyn MemoryManager>> {
    let params = IcebergParams::derive(PHYS);
    vec![
        Box::new(ClassicMm::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 11,
        })),
        Box::new(VirtualOnlyMm::new(8, TLB, PolicyKind::Lru, 11)),
        Box::new(PagingOnlyMm::new(PHYS, PolicyKind::Lru, 11)),
        Box::new(DecoupledMm::new(
            IcebergAlloc::new(&params, 11),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 11,
            },
        )),
        Box::new(HybridMm::new(
            IcebergAlloc::new(&params, 13),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 13,
            },
            4,
        )),
        Box::new(SparseDecoupledMm::new(
            IcebergAlloc::new(&params, 17),
            SparseConfig {
                tlb_value_bits: 64,
                coverage: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 17,
            },
        )),
        Box::new(ThpMm::new(ThpConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            policy: PolicyKind::Lru,
            seed: 19,
        })),
    ]
}

fn run_direct(mgr: &mut dyn MemoryManager, trace: &[VirtPage]) -> Costs {
    for &p in trace {
        mgr.access(p);
    }
    mgr.costs()
}

#[test]
fn arena_n1_is_bit_identical_to_every_golden_manager() {
    let traces = traces();
    for mgr_slot in 0..managers().len() {
        for (trace_name, trace) in &traces {
            let mut direct = managers().remove(mgr_slot);
            let name = direct.name();
            let want = run_direct(direct.as_mut(), trace);

            let mut arena = TenantArena::new(managers().remove(mgr_slot), VSPAN);
            for &p in trace {
                arena.access(Asid::SINGLE, p);
            }
            assert_eq!(
                arena.costs(),
                want,
                "{name} on {trace_name}: Asid(0) arena run drifted from the direct run"
            );
            // The whole aggregate is attributed to the one tenant.
            assert_eq!(
                arena.tenant_costs(),
                vec![(Asid::SINGLE, want)],
                "{name} on {trace_name}: per-tenant attribution broke N=1"
            );
        }
    }
}

#[test]
fn arena_n1_through_the_sim_driver_matches_too() {
    // Same invariant one layer up: the context-switch-aware driver on a
    // switchless stream must not perturb costs either.
    let traces = traces();
    for (trace_name, trace) in &traces {
        let mut direct = managers().remove(0);
        let want = run_direct(direct.as_mut(), trace);

        let mut arena = TenantArena::new(managers().remove(0), VSPAN);
        let ops = trace.iter().map(|&p| TenantOp::Access(p));
        let stats = run_tenants(&mut arena, ops, 0, trace.len() as u64);
        assert_eq!(
            stats.costs, want,
            "driver run on {trace_name} drifted from the direct run"
        );
        assert_eq!(stats.switches, 0, "switchless stream recorded switches");
        assert_eq!(stats.shootdowns, 0, "switchless stream recorded shootdowns");
    }
}

#[test]
fn tagged_tlb_manager_n1_matches_classic_bit_for_bit() {
    // TenantMm is ClassicMm with ASID-tagged keys; under one tenant the
    // tags are constant, so LRU recency — and therefore every cost —
    // must coincide.
    for (trace_name, trace) in &traces() {
        let mut classic = ClassicMm::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 11,
        });
        let want = run_direct(&mut classic, trace);

        let mut tagged = TenantMm::new(TenantMmConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 11,
        });
        for &p in trace {
            tagged.access(Asid::SINGLE, p);
        }
        assert_eq!(
            tagged.costs(),
            want,
            "TenantMm N=1 on {trace_name} drifted from ClassicMm"
        );
    }
}

#[test]
fn ten_thousand_tenant_sweep_is_a_pure_function_of_its_seed() {
    let stats = |_: ()| {
        let mix = TenantMix::new(42, 10_000, 1 << 12, 1.1, 1.01, 64, 0.02);
        let mut mgr = TenantMm::new(TenantMmConfig::paper(8, PHYS));
        run_tenants(&mut mgr, mix.take(200_000), 10_000, 40_000)
    };
    let a = stats(());
    let b = stats(());
    assert_eq!(a, b, "multi-tenant sweep is not deterministic");
    assert!(
        a.tenants_seen() > 50,
        "10k-tenant zipf mix should surface a long tail, saw {}",
        a.tenants_seen()
    );
    assert!(a.switches > 0, "sweep replayed no context switches");
}
