//! End-to-end shape checks for the Figure-1 reproduction (scaled down).
//!
//! The paper's qualitative claims: as the huge-page size grows, IOs rise by
//! orders of magnitude while TLB misses fall by orders of magnitude, and at
//! h = 1 TLB misses exceed IOs by 1–4 orders of magnitude.

use atp::memmgmt::classic::{ClassicConfig, ClassicMm};
use atp::replacement::PolicyKind;
use atp::sim::run;
use atp::types::{Costs, VirtPage};
use atp::workloads::{Bimodal, Graph500Config, Graph500Trace, ParetoWalk};

const TLB_ENTRIES: u64 = 128;
const WARMUP: u64 = 150_000;
const MEASURE: u64 = 150_000;

fn classic_costs(trace: &[VirtPage], h: u64, phys: u64) -> Costs {
    let mut m = ClassicMm::new(ClassicConfig {
        huge_pages: h,
        phys_pages: phys,
        tlb_entries: TLB_ENTRIES,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 9,
    });
    run(&mut m, trace.iter().copied(), WARMUP, MEASURE).costs
}

fn assert_figure1_shape(name: &str, trace: &[VirtPage], phys: u64) {
    let lo = classic_costs(trace, 1, phys);
    let hi = classic_costs(trace, 256, phys);

    // TLB misses dominate IOs without huge pages ("1 to 4 orders of
    // magnitude larger"; at our scale we require at least 10×).
    assert!(
        lo.tlb_misses > lo.ios * 10,
        "{name}: h=1 should be TLB-bound: {} misses vs {} IOs",
        lo.tlb_misses,
        lo.ios
    );
    // Huge pages amplify IOs dramatically...
    assert!(
        hi.ios > lo.ios * 20,
        "{name}: h=256 must amplify IOs: {} vs {}",
        hi.ios,
        lo.ios
    );
    // ...while slashing TLB misses.
    assert!(
        hi.tlb_misses * 5 < lo.tlb_misses,
        "{name}: h=256 must reduce TLB misses: {} vs {}",
        hi.tlb_misses,
        lo.tlb_misses
    );
}

#[test]
fn bimodal_shape() {
    let trace: Vec<VirtPage> = Bimodal::scaled(1, 1 << 17)
        .take((WARMUP + MEASURE) as usize)
        .collect();
    assert_figure1_shape("bimodal", &trace, 1 << 15);
}

#[test]
fn pareto_walk_shape() {
    let trace: Vec<VirtPage> = ParetoWalk::new(2, 1 << 16, 0.01)
        .take((WARMUP + MEASURE) as usize)
        .collect();
    assert_figure1_shape("pareto-walk", &trace, 1 << 15);
}

#[test]
fn graph500_shape() {
    let g = Graph500Trace::generate(&Graph500Config {
        scale: 14,
        edge_factor: 16,
        seed: 3,
        max_accesses: (WARMUP + MEASURE) as usize,
    });
    let trace: Vec<VirtPage> = g.iter().collect();
    let phys = (g.touched_pages() * 99 / 100).max(512);
    // graph500 has strong spatial locality in xadj/adj but a random-probe
    // parent array under memory pressure: IOs must blow up with h while
    // TLB misses shrink. At this toy scale RAM holds very few huge-page
    // units beyond h=32, so the TLB-reduction claim is checked mid-sweep
    // (in the paper's full-scale figure the decline continues further).
    let lo = classic_costs(&trace, 1, phys);
    let mid = classic_costs(&trace, 32, phys);
    let hi = classic_costs(&trace, 256, phys);
    assert!(lo.tlb_misses > lo.ios, "graph500 h=1 should be TLB-bound");
    assert!(hi.ios > lo.ios * 20, "graph500 IO amplification");
    assert!(
        mid.ios > lo.ios,
        "graph500 IO growth is monotone into the sweep"
    );
    assert!(mid.tlb_misses * 3 < lo.tlb_misses, "graph500 TLB reduction");
}

#[test]
fn io_monotone_in_h_on_bimodal() {
    // The full sweep: IOs should be (weakly) increasing in h for the
    // bimodal workload, which has no mid-sweep crossovers.
    let trace: Vec<VirtPage> = Bimodal::scaled(4, 1 << 17)
        .take((WARMUP + MEASURE) as usize)
        .collect();
    let mut prev = 0u64;
    for shift in 0..=8 {
        let c = classic_costs(&trace, 1 << shift, 1 << 15);
        assert!(
            c.ios >= prev,
            "IOs dipped at h=2^{shift}: {} < {prev}",
            c.ios
        );
        prev = c.ios;
    }
}
