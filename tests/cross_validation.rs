//! Cross-crate consistency checks: independent implementations of the same
//! quantity must agree exactly.

use atp::memmgmt::{MemoryManager, PagingOnlyMm, VirtualOnlyMm};
use atp::replacement::PolicyKind;
use atp::trace::ReuseProfile;
use atp::types::VirtPage;
use atp::workloads::{Gups, ParetoWalk, Stencil2d, Zipfian};

/// The Mattson reuse-distance profile predicts `Y`'s (LRU) IO count exactly,
/// at every capacity — two completely different code paths.
#[test]
fn mrc_matches_paging_only_manager() {
    let traces: Vec<Vec<VirtPage>> = vec![
        Zipfian::new(1, 4096, 1.0).take(30_000).collect(),
        ParetoWalk::new(2, 4096, 0.01).take(30_000).collect(),
        Gups::new(3, 2048, 64).take(30_000).collect(),
    ];
    for trace in &traces {
        let prof = ReuseProfile::compute(trace, 4096);
        for cap in [16u64, 64, 256, 1024, 4000] {
            let mut y = PagingOnlyMm::new(cap, PolicyKind::Lru, 0);
            for &p in trace {
                y.access(p);
            }
            assert_eq!(
                y.costs().ios,
                prof.lru_misses(cap as usize),
                "capacity {cap}"
            );
        }
    }
}

/// The same holds at huge-page granularity: the profile of the r(σ) stream
/// predicts X's TLB misses.
#[test]
fn mrc_matches_virtual_only_manager() {
    let trace: Vec<VirtPage> = Zipfian::new(5, 1 << 14, 0.9).take(40_000).collect();
    for hmax in [4u64, 16] {
        let huge: Vec<VirtPage> = trace.iter().map(|p| VirtPage(p.0 / hmax)).collect();
        let prof = ReuseProfile::compute(&huge, 1 << 12);
        for entries in [32u64, 128, 512] {
            let mut x = VirtualOnlyMm::new(hmax, entries, PolicyKind::Lru, 0);
            for &p in &trace {
                x.access(p);
            }
            assert_eq!(
                x.costs().tlb_misses,
                prof.lru_misses(entries as usize),
                "hmax {hmax} entries {entries}"
            );
        }
    }
}

/// GUPS is TLB-hostile (near-zero locality); the stencil is TLB-friendly.
/// Decoupled coverage should barely help GUPS' table but nearly erase the
/// stencil's TLB misses — the workload-dependence the paper's intro frames.
#[test]
fn hpc_workloads_bracket_tlb_behaviour() {
    use atp::core::{IcebergAlloc, IcebergParams};
    use atp::memmgmt::decoupled::DecoupledConfig;
    use atp::memmgmt::DecoupledMm;

    let params = IcebergParams::derive(1 << 14);
    let mk = |seed| {
        DecoupledMm::new(
            IcebergAlloc::new(&params, seed),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: 64,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed,
            },
        )
    };
    let n = 60_000;

    let mut gups_mm = mk(1);
    for p in Gups::new(9, 4096, 64).take(n) {
        gups_mm.access(p);
    }
    let gups_rate = gups_mm.costs().tlb_miss_rate();

    let mut stencil_mm = mk(2);
    for p in Stencil2d::new(256, 256, 16).take(n) {
        stencil_mm.access(p);
    }
    let stencil_rate = stencil_mm.costs().tlb_miss_rate();

    assert!(
        stencil_rate * 20.0 < gups_rate,
        "stencil {stencil_rate} should be ≪ gups {gups_rate}"
    );
}

/// Replicated paging-failure measurement across seeds: the Theorem-3 claim
/// is not a lucky seed.
#[test]
fn theorem3_zero_failures_across_seeds() {
    use atp::core::{IcebergAlloc, IcebergParams, RamAllocator};
    use atp::sim::replicate;
    use atp::types::VirtPage as V;

    let params = IcebergParams::derive(1 << 14);
    let seeds: Vec<u64> = (0..16).collect();
    let summary = replicate(&seeds, 0, |seed| {
        let mut alloc = IcebergAlloc::new(&params, seed);
        let mut failures = 0u64;
        // Sliding window churn at the full resident bound.
        let m = params.max_resident;
        for v in 0..m * 4 {
            if v >= m {
                alloc.free(V(v - m));
            }
            if alloc.place(V(v)).is_err() {
                failures += 1;
            }
        }
        failures as f64
    });
    assert_eq!(summary.max, 0.0, "failures observed: {summary}");
}
