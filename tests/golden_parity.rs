//! Golden-parity tests for the translation pipeline refactor.
//!
//! Every memory manager must produce **bit-identical** [`Costs`] on fixed
//! seeds and fixed traces across refactors of the access path. The golden
//! constants below were captured from the pre-pipeline (seed) manager
//! implementations; any drift in probe order, fill policy, eviction
//! accounting, or RNG consumption shows up as a failure here.
//!
//! To re-capture after an *intentional* accounting change, run
//! `cargo test --release --test golden_parity -- --ignored --nocapture`
//! and paste the printed table over `GOLDEN`.

use atp::core::{IcebergAlloc, IcebergParams};
use atp::memmgmt::classic::{ClassicConfig, ClassicMm};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{
    DecoupledMm, HybridMm, MemoryManager, PagingOnlyMm, SparseConfig, SparseDecoupledMm, ThpConfig,
    ThpMm, VirtualOnlyMm,
};
use atp::replacement::PolicyKind;
use atp::types::{Costs, VirtPage};
use atp::workloads::{Graph500Config, Graph500Trace, Sequential, Zipfian};

const N: usize = 60_000;
const PHYS: u64 = 1 << 12;
const TLB: u64 = 128;

fn traces() -> Vec<(&'static str, Vec<VirtPage>)> {
    vec![
        ("zipf", Zipfian::new(42, 1 << 14, 1.1).take(N).collect()),
        ("graph500", {
            Graph500Trace::generate(&Graph500Config {
                scale: 12,
                edge_factor: 8,
                seed: 7,
                max_accesses: N,
            })
            .iter()
            .collect()
        }),
        ("sequential", Sequential::new(1 << 13).take(N).collect()),
    ]
}

fn managers() -> Vec<Box<dyn MemoryManager>> {
    let params = IcebergParams::derive(PHYS);
    vec![
        Box::new(ClassicMm::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 11,
        })),
        Box::new(VirtualOnlyMm::new(8, TLB, PolicyKind::Lru, 11)),
        Box::new(PagingOnlyMm::new(PHYS, PolicyKind::Lru, 11)),
        Box::new(DecoupledMm::new(
            IcebergAlloc::new(&params, 11),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 11,
            },
        )),
        Box::new(HybridMm::new(
            IcebergAlloc::new(&params, 13),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 13,
            },
            4,
        )),
        Box::new(SparseDecoupledMm::new(
            IcebergAlloc::new(&params, 17),
            SparseConfig {
                tlb_value_bits: 64,
                coverage: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 17,
            },
        )),
        Box::new(ThpMm::new(ThpConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            policy: PolicyKind::Lru,
            seed: 19,
        })),
    ]
}

fn run_cell(mgr: &mut dyn MemoryManager, trace: &[VirtPage]) -> Costs {
    for &p in trace {
        mgr.access(p);
    }
    mgr.costs()
}

/// (manager name, trace name, ios, tlb_misses, decode_misses,
/// paging_failures, accesses, tlb_hits) — captured from the seed managers.
type GoldenRow = (&'static str, &'static str, u64, u64, u64, u64, u64, u64);
const GOLDEN: &[GoldenRow] = &[
    ("classic(h=8)", "zipf", 58944, 14912, 0, 0, 60000, 45088),
    ("classic(h=8)", "graph500", 88, 11, 0, 0, 60000, 59989),
    (
        "classic(h=8)",
        "sequential",
        60000,
        7500,
        0,
        0,
        60000,
        52500,
    ),
    ("X(hmax=8)", "zipf", 0, 14912, 0, 0, 60000, 45088),
    ("X(hmax=8)", "graph500", 0, 11, 0, 0, 60000, 59989),
    ("X(hmax=8)", "sequential", 0, 7500, 0, 0, 60000, 52500),
    ("Y(m=4096)", "zipf", 8741, 0, 0, 0, 60000, 60000),
    ("Y(m=4096)", "graph500", 85, 0, 0, 0, 60000, 60000),
    ("Y(m=4096)", "sequential", 60000, 0, 0, 0, 60000, 60000),
    (
        "Z(hmax=8, bits=5, m=1419)",
        "zipf",
        13368,
        14912,
        0,
        0,
        60000,
        45088,
    ),
    (
        "Z(hmax=8, bits=5, m=1419)",
        "graph500",
        85,
        11,
        0,
        0,
        60000,
        59989,
    ),
    (
        "Z(hmax=8, bits=5, m=1419)",
        "sequential",
        60000,
        7500,
        0,
        0,
        60000,
        52500,
    ),
    (
        "hybrid(chunk=4, inner=Z(hmax=8, bits=5, m=1419))",
        "zipf",
        24408,
        7314,
        0,
        0,
        60000,
        52686,
    ),
    (
        "hybrid(chunk=4, inner=Z(hmax=8, bits=5, m=1419))",
        "graph500",
        88,
        3,
        0,
        0,
        60000,
        59997,
    ),
    (
        "hybrid(chunk=4, inner=Z(hmax=8, bits=5, m=1419))",
        "sequential",
        60000,
        1875,
        0,
        0,
        60000,
        58125,
    ),
    (
        "Z-sparse(cov=64, K=5, m=1419)",
        "zipf",
        13368,
        3680,
        28915,
        0,
        60000,
        56320,
    ),
    (
        "Z-sparse(cov=64, K=5, m=1419)",
        "graph500",
        85,
        2,
        36201,
        0,
        60000,
        59998,
    ),
    (
        "Z-sparse(cov=64, K=5, m=1419)",
        "sequential",
        60000,
        128,
        0,
        0,
        60000,
        59872,
    ),
    ("thp(h=8)", "zipf", 8741, 18305, 0, 0, 60000, 41695),
    ("thp(h=8)", "graph500", 85, 84, 0, 0, 60000, 59916),
    ("thp(h=8)", "sequential", 60000, 60000, 0, 0, 60000, 0),
];

#[test]
fn costs_match_pre_refactor_golden() {
    assert!(
        !GOLDEN.is_empty(),
        "golden table not captured yet — run the ignored capture test"
    );
    let traces = traces();
    let mut idx = 0;
    for (mgr_slot, _) in managers().iter().enumerate() {
        for (trace_name, trace) in &traces {
            // Fresh manager per cell: managers() rebuilds all state.
            let mut mgr = managers().remove(mgr_slot);
            let costs = run_cell(mgr.as_mut(), trace);
            let (g_name, g_trace, ios, tlb_misses, decode_misses, failures, accesses, tlb_hits) =
                GOLDEN[idx];
            assert_eq!(mgr.name(), g_name, "manager name drifted at row {idx}");
            assert_eq!(*trace_name, g_trace, "trace order drifted at row {idx}");
            let expect = Costs {
                ios,
                tlb_misses,
                decode_misses,
                paging_failures: failures,
                accesses,
                tlb_hits,
            };
            assert_eq!(
                costs, expect,
                "{g_name} on {g_trace}: costs drifted from pre-refactor golden"
            );
            idx += 1;
        }
    }
    assert_eq!(idx, GOLDEN.len(), "golden table has stale extra rows");
}

/// Prints the golden table from the current implementations.
#[test]
#[ignore = "capture helper: prints the GOLDEN constant from current code"]
fn print_golden() {
    let traces = traces();
    for mgr_slot in 0..managers().len() {
        for (trace_name, trace) in &traces {
            let mut mgr = managers().remove(mgr_slot);
            let c = run_cell(mgr.as_mut(), trace);
            println!(
                "    (\"{}\", \"{}\", {}, {}, {}, {}, {}, {}),",
                mgr.name(),
                trace_name,
                c.ios,
                c.tlb_misses,
                c.decode_misses,
                c.paging_failures,
                c.accesses,
                c.tlb_hits
            );
        }
    }
}
