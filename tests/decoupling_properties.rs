//! Property-based tests of the decoupling invariants (Section 3's contract)
//! under arbitrary request sequences.

use atp::core::{
    DecouplingScheme, FullyAssociativeAlloc, IcebergAlloc, OneChoiceAlloc, RamAllocator,
};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{DecoupledMm, MemoryManager};
use atp::replacement::PolicyKind;
use atp::types::{CostModel, VirtPage};
use proptest::prelude::*;

fn decoupled_cfg(resident: u64, seed: u64) -> DecoupledConfig {
    DecoupledConfig {
        tlb_value_bits: 64,
        tlb_entries: 16,
        tlb_policy: PolicyKind::Lru,
        resident_pages: resident,
        ram_policy: PolicyKind::Lru,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scheme's eq. (4) invariant and φ-injectivity survive arbitrary
    /// access sequences, including ones dense enough to force failures.
    #[test]
    fn scheme_invariants_hold(trace in prop::collection::vec(0u64..512, 1..400), seed in 0u64..50) {
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(16, 4, 3, seed),
            decoupled_cfg(100, seed),
        );
        for &p in &trace {
            z.access(VirtPage(p));
        }
        z.scheme().check_invariants();
    }

    /// Cost identity: accesses = hits + misses; total cost decomposes; the
    /// per-access IO count never exceeds 1 (no amplification, ever).
    #[test]
    fn cost_identities(trace in prop::collection::vec(0u64..2048, 1..500)) {
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(64, 6, 4, 3),
            decoupled_cfg(500, 3),
        );
        for &p in &trace {
            let r = z.access(VirtPage(p));
            prop_assert!(r.ios <= 1, "decoupling must never amplify a fault");
        }
        let c = z.costs();
        prop_assert_eq!(c.accesses as usize, trace.len());
        prop_assert_eq!(c.tlb_hits + c.tlb_misses, c.accesses);
        let m = CostModel::new(0.5);
        let expect = c.ios as f64 + 0.5 * (c.tlb_misses + c.decode_misses) as f64;
        prop_assert!((c.total(m) - expect).abs() < 1e-9);
    }

    /// Replay determinism: identical seeds and traces give identical costs.
    #[test]
    fn deterministic_replay(trace in prop::collection::vec(0u64..1024, 1..300), seed in 0u64..20) {
        let run = |s: u64| {
            let mut z = DecoupledMm::new(
                IcebergAlloc::with_geometry(32, 4, 3, s),
                decoupled_cfg(200, s),
            );
            for &p in &trace {
                z.access(VirtPage(p));
            }
            z.costs()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// φ stability through the manager: once a page is resident, repeated
    /// accesses never change its frame until it is evicted.
    #[test]
    fn frames_are_stable(trace in prop::collection::vec(0u64..256, 1..300)) {
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(32, 4, 3, 7),
            decoupled_cfg(150, 7),
        );
        let mut last_frame: std::collections::HashMap<u64, _> = Default::default();
        for &p in &trace {
            let before = z.scheme().frame_of(VirtPage(p));
            z.access(VirtPage(p));
            let after = z.scheme().frame_of(VirtPage(p));
            if let (Some(b), Some(a)) = (before, after) {
                prop_assert_eq!(b, a, "frame moved while resident");
            }
            if let Some(f) = after {
                last_frame.insert(p, f);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three allocators satisfy injectivity + decode correctness under
    /// the same random churn (driven through the scheme layer).
    #[test]
    fn all_allocators_uphold_contract(
        ops in prop::collection::vec((0u64..512, prop::bool::ANY), 1..500),
        seed in 0u64..20,
    ) {
        fn drive<A: RamAllocator>(mut s: DecouplingScheme<A>, ops: &[(u64, bool)]) {
            let mut active: std::collections::HashSet<u64> = Default::default();
            for &(v, insert) in ops {
                if insert && !active.contains(&v) {
                    let _ = s.ram_insert(VirtPage(v));
                    active.insert(v);
                } else if !insert && active.contains(&v) {
                    s.ram_evict(VirtPage(v));
                    active.remove(&v);
                }
            }
            s.check_invariants();
        }
        drive(DecouplingScheme::new(IcebergAlloc::with_geometry(16, 4, 3, seed), 64), &ops);
        drive(DecouplingScheme::new(OneChoiceAlloc::with_geometry(16, 8, seed), 64), &ops);
        drive(DecouplingScheme::new(FullyAssociativeAlloc::new(256), 64), &ops);
    }
}
