//! Randomized tests of the decoupling invariants (Section 3's contract)
//! under arbitrary request sequences, on the `atp-check` harness:
//! generated traces shrink to minimal counterexamples and every failure
//! prints an `ATP_CHECK_SEED` replay command.

use atp::core::{
    DecouplingScheme, FullyAssociativeAlloc, IcebergAlloc, OneChoiceAlloc, RamAllocator,
};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{DecoupledMm, MemoryManager};
use atp::replacement::PolicyKind;
use atp::types::{CostModel, VirtPage};
use atp_check::{bools, check, ensure, ensure_eq, u64s, vecs};

fn decoupled_cfg(resident: u64, seed: u64) -> DecoupledConfig {
    DecoupledConfig {
        tlb_value_bits: 64,
        tlb_entries: 16,
        tlb_policy: PolicyKind::Lru,
        resident_pages: resident,
        ram_policy: PolicyKind::Lru,
        seed,
    }
}

#[test]
fn scheme_invariants_hold() {
    // The scheme's eq. (4) invariant and φ-injectivity survive arbitrary
    // access sequences, including ones dense enough to force failures.
    let gen = (u64s(0..=49), vecs(u64s(0..=511), 1..=400));
    check("scheme_invariants_hold", &gen, |(seed, trace)| {
        // check_invariants panics on violation; convert to Err so the
        // harness can shrink the offending trace.
        let outcome = std::panic::catch_unwind(|| {
            let mut z = DecoupledMm::new(
                IcebergAlloc::with_geometry(16, 4, 3, *seed),
                decoupled_cfg(100, *seed),
            );
            for &p in trace.iter() {
                z.access(VirtPage(p));
            }
            z.scheme().check_invariants();
        });
        ensure!(outcome.is_ok(), "scheme invariant violated (seed {seed})");
        Ok(())
    });
}

#[test]
fn cost_identities() {
    // Cost identity: accesses = hits + misses; total cost decomposes; the
    // per-access IO count never exceeds 1 (no amplification, ever).
    let gen = vecs(u64s(0..=2047), 1..=500);
    check("cost_identities", &gen, |trace| {
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(64, 6, 4, 3),
            decoupled_cfg(500, 3),
        );
        for &p in trace.iter() {
            let r = z.access(VirtPage(p));
            ensure!(r.ios <= 1, "decoupling amplified a fault on page {p}");
        }
        let c = z.costs();
        ensure_eq!(c.accesses as usize, trace.len(), "access count");
        ensure_eq!(c.tlb_hits + c.tlb_misses, c.accesses, "hit/miss identity");
        let m = CostModel::new(0.5);
        let expect = c.ios as f64 + 0.5 * (c.tlb_misses + c.decode_misses) as f64;
        ensure!(
            (c.total(m) - expect).abs() < 1e-9,
            "cost decomposition broke: {} vs {expect}",
            c.total(m)
        );
        Ok(())
    });
}

#[test]
fn deterministic_replay() {
    // Replay determinism: identical seeds and traces give identical costs.
    let gen = (u64s(0..=19), vecs(u64s(0..=1023), 1..=300));
    check("deterministic_replay", &gen, |(seed, trace)| {
        let run = |s: u64| {
            let mut z = DecoupledMm::new(
                IcebergAlloc::with_geometry(32, 4, 3, s),
                decoupled_cfg(200, s),
            );
            for &p in trace.iter() {
                z.access(VirtPage(p));
            }
            z.costs()
        };
        ensure_eq!(run(*seed), run(*seed), "replay diverged for seed {seed}");
        Ok(())
    });
}

#[test]
fn frames_are_stable() {
    // φ stability through the manager: once a page is resident, repeated
    // accesses never change its frame until it is evicted.
    let gen = vecs(u64s(0..=255), 1..=300);
    check("frames_are_stable", &gen, |trace| {
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(32, 4, 3, 7),
            decoupled_cfg(150, 7),
        );
        for &p in trace.iter() {
            let before = z.scheme().frame_of(VirtPage(p));
            z.access(VirtPage(p));
            let after = z.scheme().frame_of(VirtPage(p));
            if let (Some(b), Some(a)) = (before, after) {
                ensure_eq!(b, a, "frame of page {p} moved while resident");
            }
        }
        Ok(())
    });
}

#[test]
fn all_allocators_uphold_contract() {
    // All three allocators satisfy injectivity + decode correctness under
    // the same random churn (driven through the scheme layer).
    fn drive<A: RamAllocator>(mut s: DecouplingScheme<A>, ops: &[(u64, bool)]) {
        let mut active: std::collections::HashSet<u64> = Default::default();
        for &(v, insert) in ops {
            if insert && !active.contains(&v) {
                let _ = s.ram_insert(VirtPage(v));
                active.insert(v);
            } else if !insert && active.contains(&v) {
                s.ram_evict(VirtPage(v));
                active.remove(&v);
            }
        }
        s.check_invariants();
    }

    let gen = (u64s(0..=19), vecs((u64s(0..=511), bools()), 1..=500));
    check("all_allocators_uphold_contract", &gen, |(seed, ops)| {
        // check_invariants panics on violation; convert to Err so the
        // harness can shrink the offending op script.
        for (name, run) in [
            ("IcebergAlloc", 0usize),
            ("OneChoiceAlloc", 1),
            ("FullyAssociativeAlloc", 2),
        ] {
            let outcome = std::panic::catch_unwind(|| match run {
                0 => drive(
                    DecouplingScheme::new(IcebergAlloc::with_geometry(16, 4, 3, *seed), 64),
                    ops,
                ),
                1 => drive(
                    DecouplingScheme::new(OneChoiceAlloc::with_geometry(16, 8, *seed), 64),
                    ops,
                ),
                _ => drive(
                    DecouplingScheme::new(FullyAssociativeAlloc::new(256), 64),
                    ops,
                ),
            });
            ensure!(outcome.is_ok(), "{name} broke its contract (seed {seed})");
        }
        Ok(())
    });
}
