//! Randomized tests of the decoupling invariants (Section 3's contract)
//! under arbitrary request sequences, driven by the in-tree deterministic
//! counter RNG (no external test deps).

use atp::core::{
    DecouplingScheme, FullyAssociativeAlloc, IcebergAlloc, OneChoiceAlloc, RamAllocator,
};
use atp::hash::CounterRng;
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{DecoupledMm, MemoryManager};
use atp::replacement::PolicyKind;
use atp::types::{CostModel, VirtPage};

fn decoupled_cfg(resident: u64, seed: u64) -> DecoupledConfig {
    DecoupledConfig {
        tlb_value_bits: 64,
        tlb_entries: 16,
        tlb_policy: PolicyKind::Lru,
        resident_pages: resident,
        ram_policy: PolicyKind::Lru,
        seed,
    }
}

fn random_trace(rng: &mut CounterRng, universe: u64, max_len: u64) -> Vec<u64> {
    let len = rng.next_below(max_len) + 1;
    (0..len).map(|_| rng.next_below(universe)).collect()
}

#[test]
fn scheme_invariants_hold() {
    // The scheme's eq. (4) invariant and φ-injectivity survive arbitrary
    // access sequences, including ones dense enough to force failures.
    let mut meta = CounterRng::new(0xDEC0, 1);
    for _ in 0..64 {
        let trace = random_trace(&mut meta, 512, 400);
        let seed = meta.next_below(50);
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(16, 4, 3, seed),
            decoupled_cfg(100, seed),
        );
        for &p in &trace {
            z.access(VirtPage(p));
        }
        z.scheme().check_invariants();
    }
}

#[test]
fn cost_identities() {
    // Cost identity: accesses = hits + misses; total cost decomposes; the
    // per-access IO count never exceeds 1 (no amplification, ever).
    let mut meta = CounterRng::new(0xDEC0, 2);
    for _ in 0..64 {
        let trace = random_trace(&mut meta, 2048, 500);
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(64, 6, 4, 3),
            decoupled_cfg(500, 3),
        );
        for &p in &trace {
            let r = z.access(VirtPage(p));
            assert!(r.ios <= 1, "decoupling must never amplify a fault");
        }
        let c = z.costs();
        assert_eq!(c.accesses as usize, trace.len());
        assert_eq!(c.tlb_hits + c.tlb_misses, c.accesses);
        let m = CostModel::new(0.5);
        let expect = c.ios as f64 + 0.5 * (c.tlb_misses + c.decode_misses) as f64;
        assert!((c.total(m) - expect).abs() < 1e-9);
    }
}

#[test]
fn deterministic_replay() {
    // Replay determinism: identical seeds and traces give identical costs.
    let mut meta = CounterRng::new(0xDEC0, 3);
    for _ in 0..32 {
        let trace = random_trace(&mut meta, 1024, 300);
        let seed = meta.next_below(20);
        let run = |s: u64| {
            let mut z = DecoupledMm::new(
                IcebergAlloc::with_geometry(32, 4, 3, s),
                decoupled_cfg(200, s),
            );
            for &p in &trace {
                z.access(VirtPage(p));
            }
            z.costs()
        };
        assert_eq!(run(seed), run(seed));
    }
}

#[test]
fn frames_are_stable() {
    // φ stability through the manager: once a page is resident, repeated
    // accesses never change its frame until it is evicted.
    let mut meta = CounterRng::new(0xDEC0, 4);
    for _ in 0..64 {
        let trace = random_trace(&mut meta, 256, 300);
        let mut z = DecoupledMm::new(
            IcebergAlloc::with_geometry(32, 4, 3, 7),
            decoupled_cfg(150, 7),
        );
        for &p in &trace {
            let before = z.scheme().frame_of(VirtPage(p));
            z.access(VirtPage(p));
            let after = z.scheme().frame_of(VirtPage(p));
            if let (Some(b), Some(a)) = (before, after) {
                assert_eq!(b, a, "frame moved while resident");
            }
        }
    }
}

#[test]
fn all_allocators_uphold_contract() {
    // All three allocators satisfy injectivity + decode correctness under
    // the same random churn (driven through the scheme layer).
    fn drive<A: RamAllocator>(mut s: DecouplingScheme<A>, ops: &[(u64, bool)]) {
        let mut active: std::collections::HashSet<u64> = Default::default();
        for &(v, insert) in ops {
            if insert && !active.contains(&v) {
                let _ = s.ram_insert(VirtPage(v));
                active.insert(v);
            } else if !insert && active.contains(&v) {
                s.ram_evict(VirtPage(v));
                active.remove(&v);
            }
        }
        s.check_invariants();
    }

    let mut meta = CounterRng::new(0xDEC0, 5);
    for _ in 0..32 {
        let n_ops = meta.next_below(500) as usize + 1;
        let ops: Vec<(u64, bool)> = (0..n_ops)
            .map(|_| (meta.next_below(512), meta.next_below(2) == 0))
            .collect();
        let seed = meta.next_below(20);
        drive(
            DecouplingScheme::new(IcebergAlloc::with_geometry(16, 4, 3, seed), 64),
            &ops,
        );
        drive(
            DecouplingScheme::new(OneChoiceAlloc::with_geometry(16, 8, seed), 64),
            &ops,
        );
        drive(
            DecouplingScheme::new(FullyAssociativeAlloc::new(256), 64),
            &ops,
        );
    }
}
