//! Golden tests pinning the observability export formats byte-for-byte.
//!
//! Exports are consumed by scripts and CI artifact checks outside this
//! repository, so their bytes are a public interface: a hand-traced event
//! sequence pins each format exactly, and a real pipeline run on a fixed
//! seed pins determinism (two identical runs must export identical bytes).
//! If an *intentional* schema change breaks a golden, update the expected
//! string here and bump the schema version in `atp::obs`.

use atp::memmgmt::classic::{ClassicConfig, ClassicStages};
use atp::memmgmt::{
    AccessReport, EvictionEvent, MemoryManager, Pipeline, Recorder, SimObserver, TlbEvent,
};
use atp::obs::json::parse;
use atp::obs::{run_registry, EventLog, ExportFormat, RunObserver, Shared, Windowed};
use atp::replacement::PolicyKind;
use atp::types::{CostModel, VirtPage};
use atp::workloads::Zipfian;

fn report(tlb_miss: bool, decode_miss: bool, ios: u64) -> AccessReport {
    AccessReport {
        tlb_miss,
        ios,
        decode_miss,
        paging_failure: false,
    }
}

/// A tiny hand-traceable event sequence: two accesses (one faulting), an
/// eviction, and a batch boundary.
fn tiny_log() -> EventLog {
    let mut log = EventLog::new(8);
    log.on_tlb_event(TlbEvent::Miss);
    log.on_tlb_event(TlbEvent::Fill);
    log.on_access(VirtPage(5), report(true, false, 2));
    log.on_tlb_event(TlbEvent::Hit);
    log.on_access(VirtPage(5), report(false, false, 0));
    log.on_eviction(EvictionEvent { unit: 9, pages: 64 });
    log.on_batch_boundary(2);
    log
}

#[test]
fn jsonl_golden() {
    assert_eq!(
        tiny_log().to_jsonl(),
        "{\"schema\":\"atp-events-v1\",\"clock\":2,\"recorded\":6,\"dropped\":0}\n\
         {\"clock\":0,\"event\":\"tlb_miss\"}\n\
         {\"clock\":0,\"event\":\"tlb_fill\"}\n\
         {\"clock\":0,\"event\":\"fault\",\"page\":5,\"ios\":2}\n\
         {\"clock\":1,\"event\":\"tlb_hit\"}\n\
         {\"clock\":2,\"event\":\"eviction\",\"unit\":9,\"pages\":64}\n\
         {\"clock\":2,\"event\":\"batch_boundary\",\"len\":2}\n"
    );
}

#[test]
fn chrome_trace_golden() {
    assert_eq!(
        tiny_log().to_chrome_trace(),
        "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"atp-trace-events-v1\",\
         \"clock\":2,\"recorded\":6,\"dropped\":0},\"traceEvents\":[\n\
         {\"name\":\"tlb_miss\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"t\"},\n\
         {\"name\":\"tlb_fill\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"t\"},\n\
         {\"name\":\"fault\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"t\",\
         \"args\":{\"page\":5,\"ios\":2}},\n\
         {\"name\":\"tlb_hit\",\"ph\":\"i\",\"ts\":1,\"pid\":0,\"tid\":0,\"s\":\"t\"},\n\
         {\"name\":\"eviction\",\"ph\":\"i\",\"ts\":2,\"pid\":0,\"tid\":0,\"s\":\"t\",\
         \"args\":{\"unit\":9,\"pages\":64}},\n\
         {\"name\":\"batch_boundary\",\"ph\":\"i\",\"ts\":2,\"pid\":0,\"tid\":0,\"s\":\"t\",\
         \"args\":{\"len\":2}}\n\
         ]}\n"
    );
}

#[test]
fn window_csv_golden() {
    let mut w = Windowed::new(2, 0.5);
    w.on_access(VirtPage(1), report(true, false, 2));
    w.on_access(VirtPage(2), report(false, false, 0));
    w.on_eviction(EvictionEvent { unit: 3, pages: 8 });
    w.on_access(VirtPage(3), report(true, true, 0));
    assert_eq!(
        w.to_csv(),
        "window,start,accesses,tlb_misses,tlb_miss_rate,decode_misses,\
         ios,faults,fault_amplification,evictions,cost\n\
         0,0,2,1,0.500000,0,2,1,2.0000,0,2.5000\n\
         1,2,1,1,1.000000,1,0,0,0.0000,1,1.0000\n"
    );
}

/// Runs the classic pipeline on a fixed-seed zipf trace with the full
/// observer stack attached and returns every export artifact.
fn observed_run() -> (String, String, String, [String; 3]) {
    let obs = Shared::new(
        RunObserver::new(Recorder::new())
            .with_events(1 << 12)
            .with_window(1 << 10, 0.01),
    );
    let mut pipeline = Pipeline::with_observer(
        ClassicStages::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: 1 << 12,
            tlb_entries: 128,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 11,
        }),
        obs.clone(),
    );
    for p in Zipfian::new(42, 1 << 14, 1.1).take(20_000) {
        pipeline.access(p);
    }
    let costs = pipeline.costs();
    obs.with(|o| {
        let reg = run_registry(
            "classic",
            "zipf",
            &costs,
            CostModel::new(0.01),
            Some(&o.recorder),
        );
        (
            o.events.as_ref().unwrap().to_jsonl(),
            o.events.as_ref().unwrap().to_chrome_trace(),
            o.windowed.as_ref().unwrap().to_csv(),
            [
                reg.render(ExportFormat::Json),
                reg.render(ExportFormat::Csv),
                reg.render(ExportFormat::Prometheus),
            ],
        )
    })
}

#[test]
fn same_seed_runs_export_identical_bytes() {
    let (jsonl_a, chrome_a, csv_a, metrics_a) = observed_run();
    let (jsonl_b, chrome_b, csv_b, metrics_b) = observed_run();
    assert_eq!(jsonl_a, jsonl_b, "JSONL must be byte-deterministic");
    assert_eq!(
        chrome_a, chrome_b,
        "Chrome trace must be byte-deterministic"
    );
    assert_eq!(csv_a, csv_b, "window CSV must be byte-deterministic");
    assert_eq!(metrics_a, metrics_b, "metrics must be byte-deterministic");
}

#[test]
fn real_run_chrome_trace_is_structurally_valid() {
    let (_, chrome, _, _) = observed_run();
    let doc = parse(&chrome).expect("Chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array present");
    assert!(!events.is_empty(), "a 20k-access run emits events");
    for e in events {
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("i"));
        assert!(e.get("ts").and_then(|t| t.as_f64()).is_some());
        assert!(e.get("name").and_then(|n| n.as_str()).is_some());
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
    }
    // Clocks are non-decreasing: the ring keeps the most recent tail.
    let ts: Vec<f64> = events
        .iter()
        .map(|e| e.get("ts").unwrap().as_f64().unwrap())
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn real_run_jsonl_lines_all_parse() {
    let (jsonl, _, csv, _) = observed_run();
    let mut lines = jsonl.lines();
    let meta = parse(lines.next().expect("meta header")).unwrap();
    assert_eq!(
        meta.get("schema").and_then(|s| s.as_str()),
        Some("atp-events-v1")
    );
    assert_eq!(meta.get("clock").and_then(|c| c.as_f64()), Some(20_000.0));
    for line in lines {
        let ev = parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(ev.get("event").and_then(|n| n.as_str()).is_some());
    }
    // The window CSV covers every access: 1k-sized windows over 20k
    // accesses, with the access counts summing back to the total.
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), 20_000 / (1 << 10) + 1);
    let total: u64 = rows
        .iter()
        .map(|r| r.split(',').nth(2).unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 20_000);
}
