//! Cross-crate properties: Belady dominance over every online policy, and
//! trace-codec round-trips over real workload output.

use atp::replacement::{make_policy, opt::opt_misses, CacheSim, PolicyKind};
use atp::trace::{decode_trace, encode_trace, TraceStats};
use atp::types::VirtPage;
use atp::workloads::{Bimodal, ParetoWalk, PhasedWorkingSet, Zipfian};
use atp_check::{check, check_config, ensure, ensure_eq, u64s, usizes, vecs, Config};

fn online_misses(trace: &[u64], cap: usize, kind: PolicyKind) -> u64 {
    let mut sim = CacheSim::new(cap, make_policy(kind, cap, 7));
    let mut misses = 0;
    for &k in trace {
        misses += u64::from(!sim.access(k).is_hit());
    }
    misses
}

/// OPT is a lower bound for every online policy on every trace — the
/// bedrock of the paper's Lemma-1 reductions. Randomized over traces and
/// capacities by the `atp-check` harness: a violation shrinks to a
/// minimal trace and prints an `ATP_CHECK_SEED` replay command.
#[test]
fn opt_lower_bounds_all_policies() {
    let gen = (vecs(u64s(0..=63), 1..=600), usizes(1..=31));
    let cfg = Config::for_property("opt_lower_bounds_all_policies").with_cases(48);
    check_config(
        "opt_lower_bounds_all_policies",
        &gen,
        &cfg,
        |(trace, cap)| {
            let opt = opt_misses(trace, *cap).misses;
            for kind in PolicyKind::ALL {
                let m = online_misses(trace, *cap, kind);
                ensure!(opt <= m, "OPT({opt}) beat by {kind} ({m}) at cap {cap}");
            }
            Ok(())
        },
    );
}

/// The trace codec is lossless on arbitrary page-id sequences.
#[test]
fn codec_roundtrip() {
    let gen = vecs(u64s(0..=1 << 48), 0..=500);
    check("codec_roundtrip", &gen, |ids| {
        let pages: Vec<VirtPage> = ids.iter().map(|&p| VirtPage(p)).collect();
        let decoded = decode_trace(&encode_trace(&pages));
        match decoded {
            Ok(d) => ensure_eq!(d, pages, "codec round-trip"),
            Err(e) => return Err(format!("decode failed: {e}")),
        }
        Ok(())
    });
}

#[test]
fn codec_roundtrips_real_workloads() {
    let traces: Vec<Vec<VirtPage>> = vec![
        Bimodal::scaled(1, 1 << 14).take(10_000).collect(),
        ParetoWalk::new(2, 1 << 14, 0.01).take(10_000).collect(),
        Zipfian::new(3, 1 << 14, 1.2).take(10_000).collect(),
        PhasedWorkingSet::new(4, 1 << 14, 128, 500)
            .take(10_000)
            .collect(),
    ];
    for t in traces {
        let rt = decode_trace(&encode_trace(&t)).expect("decode");
        assert_eq!(rt, t);
        let stats = TraceStats::compute(&t);
        assert_eq!(stats.length as usize, t.len());
        assert!(stats.unique_pages > 0);
    }
}

#[test]
fn lru_inclusion_property() {
    // The classic stack property: an LRU cache of size c+1 hits whenever an
    // LRU cache of size c hits. (This is what makes LRU a "stack algorithm"
    // and underlies resource-augmentation analyses à la Sleator–Tarjan.)
    let trace: Vec<u64> = Zipfian::new(5, 512, 1.1)
        .take(20_000)
        .map(|p| p.0)
        .collect();
    let mut prev = u64::MAX;
    for cap in [4usize, 8, 16, 32, 64] {
        let m = online_misses(&trace, cap, PolicyKind::Lru);
        assert!(m <= prev, "LRU misses increased with capacity");
        prev = m;
    }
}

#[test]
fn fifo_is_not_a_stack_algorithm() {
    // Belady's anomaly exists for FIFO: find a capacity pair where more
    // cache means more misses on the canonical anomaly trace.
    let trace: Vec<u64> = vec![1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
    let m3 = online_misses(&trace, 3, PolicyKind::Fifo);
    let m4 = online_misses(&trace, 4, PolicyKind::Fifo);
    assert_eq!(m3, 9);
    assert_eq!(m4, 10, "Belady's anomaly should reproduce");
}
