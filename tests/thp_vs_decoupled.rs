//! THP vs huge-page decoupling under fragmentation — the system-level
//! payoff of the paper's contribution, end to end.
//!
//! Both managers chase the same goal (huge-page TLB coverage at base-page
//! flexibility); THP needs physical contiguity and fragments, decoupling
//! does not. We also verify the "reduced RAM utilization" diagnosis with
//! the [`atp::trace::HugeUtilization`] metric on the Figure-1a workload.

use atp::core::{IcebergAlloc, IcebergParams};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::thp::{ThpConfig, ThpMm};
use atp::memmgmt::{DecoupledMm, MemoryManager};
use atp::replacement::PolicyKind;
use atp::trace::HugeUtilization;
use atp::types::VirtPage;
use atp::workloads::{Bimodal, PhasedWorkingSet, Sequential};

#[test]
fn decoupled_coverage_survives_fragmentation_that_defeats_thp() {
    let h = 8u64;
    let phys = 1u64 << 13;

    // Fragmenting prelude: scattered single pages, then a sequential region
    // that both managers would like to cover with huge pages.
    let prelude: Vec<VirtPage> = PhasedWorkingSet::new(7, 1 << 20, 1 << 10, 16)
        .take(6_000)
        .collect();
    let region: Vec<VirtPage> = Sequential::new(64 * h)
        .map(|p| VirtPage(p.0 + (1 << 28)))
        .take((64 * h) as usize * 4)
        .collect();

    // THP: fragmentation blocks promotions, so the region keeps paying
    // base-granularity TLB misses.
    let mut thp = ThpMm::new(ThpConfig {
        huge_pages: h,
        phys_pages: phys,
        tlb_entries: 96,
        policy: PolicyKind::Lru,
        seed: 3,
    });
    for &p in prelude.iter().chain(region.iter()) {
        thp.access(p);
    }
    let thp_stats = thp.thp_stats();
    assert!(
        thp_stats.promotion_failures > thp_stats.promotions,
        "prelude should fragment memory: {thp_stats:?}"
    );

    // Decoupled: same prelude, same region; coverage needs no contiguity.
    let params = IcebergParams::derive(phys);
    let mut z = DecoupledMm::new(
        IcebergAlloc::new(&params, 3),
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries: 96,
            tlb_policy: PolicyKind::Lru,
            resident_pages: params.max_resident,
            ram_policy: PolicyKind::Lru,
            seed: 3,
        },
    );
    for &p in prelude.iter().chain(region.iter()) {
        z.access(p);
    }

    // Compare TLB misses over the region replay alone.
    thp.reset_costs();
    z.reset_costs();
    for &p in &region {
        thp.access(p);
        z.access(p);
    }
    assert!(
        z.costs().tlb_misses * 3 < thp.costs().tlb_misses,
        "decoupled {} should beat fragmented THP {} on region TLB misses",
        z.costs().tlb_misses,
        thp.costs().tlb_misses
    );
    assert_eq!(z.costs().paging_failures, 0);
}

#[test]
fn bimodal_cold_region_has_pathological_huge_utilization() {
    // Figure 1a's diagnosis, measured: the cold accesses touch one page per
    // huge page, so physical huge pages waste ~(1 - 1/h) of their RAM.
    let trace: Vec<VirtPage> = Bimodal::new(1, 1 << 22, 1 << 10, 0.5)
        .take(60_000)
        .collect();
    let hot_only: Vec<VirtPage> = trace
        .iter()
        .copied()
        .filter(|p| {
            let w = Bimodal::new(1, 1 << 22, 1 << 10, 0.5);
            let base = w.hot_base();
            p.0 >= base && p.0 < base + (1 << 10)
        })
        .collect();
    let cold_only: Vec<VirtPage> = trace
        .iter()
        .copied()
        .filter(|p| {
            let w = Bimodal::new(1, 1 << 22, 1 << 10, 0.5);
            let base = w.hot_base();
            p.0 < base || p.0 >= base + (1 << 10)
        })
        .collect();

    let hot_util = HugeUtilization::compute(&hot_only, 64);
    let cold_util = HugeUtilization::compute(&cold_only, 64);
    assert!(
        hot_util.mean_fraction > 0.95,
        "hot region is dense: {}",
        hot_util.mean_fraction
    );
    assert!(
        cold_util.mean_fraction < 0.2,
        "cold space is sparse: {}",
        cold_util.mean_fraction
    );
    assert!(cold_util.singleton_fraction > 0.5);
}
