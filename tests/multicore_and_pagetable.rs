//! Integration tests for the extension substrates: multicore TLB
//! shootdowns and page-table walk accounting.

use atp::pagetable::{HashPageTable, PageTable, RadixPageTable};
use atp::replacement::PolicyKind;
use atp::sim::{run_multicore, MulticoreConfig};
use atp::types::{PhysPage, VirtPage};
use atp::workloads::{UniformRandom, Zipfian};

fn cfg(cores: usize) -> MulticoreConfig {
    MulticoreConfig {
        cores,
        huge_pages: 4,
        phys_pages: 512,
        tlb_entries: 32,
        policy: PolicyKind::Lru,
        seed: 3,
    }
}

#[test]
fn shootdown_conservation() {
    let traces: Vec<Vec<VirtPage>> = (0..4)
        .map(|i| UniformRandom::new(i, 4096).take(8_000).collect())
        .collect();
    let r = run_multicore(&cfg(4), &traces);
    // Each eviction broadcast can invalidate at most one entry per core.
    assert!(r.shootdown_invalidations <= r.shootdown_events * 4);
    // Every shootdown event corresponds to a RAM eviction, and evictions
    // are bounded by total IOs/h.
    let total = r.total_costs();
    assert!(r.shootdown_events <= total.ios / 4);
    // TLB accounting is exact per core.
    for c in &r.per_core {
        assert_eq!(c.costs.tlb_hits + c.costs.tlb_misses, c.costs.accesses);
    }
}

#[test]
fn shared_hot_set_causes_cross_core_invalidations() {
    // All cores hammer the same small hot set plus private cold spill:
    // evictions of shared entries invalidate other cores' TLBs.
    let traces: Vec<Vec<VirtPage>> = (0..4)
        .map(|i| Zipfian::new(i, 4096, 1.0).take(8_000).collect())
        .collect();
    let r = run_multicore(&cfg(4), &traces);
    assert!(
        r.shootdown_invalidations > 0,
        "shared working sets must produce cross-core shootdowns"
    );
}

#[test]
fn partitioned_private_tlbs_lose_to_a_shared_one() {
    // The §1 trend: when threads split a fixed TLB budget into private
    // slices, shared hot pages must be cached once *per core*. Compare a
    // single core with a 32-entry TLB against 4 cores with 8 entries each
    // (equal aggregate capacity) on a partitioned Zipf stream. RAM is
    // sized to the full universe so no evictions/shootdowns occur and the
    // comparison is deterministic.
    let mk = |cores: usize, tlb: u64| MulticoreConfig {
        cores,
        huge_pages: 4,
        phys_pages: 8192, // 2048 units ≥ universe: no evictions
        tlb_entries: tlb,
        policy: PolicyKind::Lru,
        seed: 3,
    };
    let whole: Vec<VirtPage> = Zipfian::new(9, 2048, 1.0).take(16_000).collect();
    let single = run_multicore(&mk(1, 32), std::slice::from_ref(&whole));
    let quarters: Vec<Vec<VirtPage>> = whole.chunks(4_000).map(|c| c.to_vec()).collect();
    let multi = run_multicore(&mk(4, 8), &quarters);
    assert_eq!(multi.shootdown_events, 0, "setup must be eviction-free");
    assert!(
        multi.total_costs().tlb_misses > single.total_costs().tlb_misses,
        "private slices {} should miss more than the shared TLB {}",
        multi.total_costs().tlb_misses,
        single.total_costs().tlb_misses
    );
}

#[test]
fn radix_and_hash_tables_agree_on_contents() {
    let mut radix = RadixPageTable::new();
    let mut hash = HashPageTable::new(1, 1024);
    let pages: Vec<VirtPage> = UniformRandom::new(7, 1 << 20).take(2_000).collect();
    for (i, &v) in pages.iter().enumerate() {
        radix.map(v, PhysPage(i as u64));
        hash.map(v, PhysPage(i as u64));
    }
    for &v in &pages {
        assert_eq!(
            radix.translate(v).0,
            hash.translate(v).0,
            "mismatch at {v:?}"
        );
    }
    assert_eq!(radix.mapped(), hash.mapped());
}

#[test]
fn radix_walk_cost_is_constant_hash_cost_is_load_dependent() {
    let mut radix = RadixPageTable::new();
    let mut hash = HashPageTable::new(2, 64);
    for v in 0..48u64 {
        radix.map(VirtPage(v * 1000), PhysPage(v));
        hash.map(VirtPage(v * 1000), PhysPage(v));
    }
    // Radix resident walks are exactly 4 touches; hash walks average a
    // small probe count but vary.
    let mut hash_total = 0;
    for v in 0..48u64 {
        assert_eq!(radix.translate(VirtPage(v * 1000)).1.touches, 4);
        hash_total += hash.translate(VirtPage(v * 1000)).1.touches;
    }
    let avg = hash_total as f64 / 48.0;
    assert!((1.0..4.0).contains(&avg), "hash probes avg {avg}");
}

#[test]
fn huge_leaves_reduce_radix_walk_cost_under_real_trace() {
    // Map a region with base pages vs 2MB-equivalent leaves and compare
    // total walk touches over a Zipfian trace — the hardware argument for
    // huge pages, reproduced on the substrate.
    let span = 1u64 << 14; // 16k pages = 32 huge leaves of 512
    let mut flat = RadixPageTable::new();
    for v in 0..span {
        flat.map(VirtPage(v), PhysPage(v));
    }
    let mut huge = RadixPageTable::new();
    for i in 0..span / 512 {
        huge.map_huge(VirtPage(i * 512), 1, PhysPage(i * 512));
    }
    let trace: Vec<VirtPage> = Zipfian::new(11, span, 1.1).take(5_000).collect();
    let flat_cost: u64 = trace.iter().map(|&v| flat.translate(v).1.touches).sum();
    let huge_cost: u64 = trace.iter().map(|&v| huge.translate(v).1.touches).sum();
    assert_eq!(flat_cost, 5_000 * 4);
    assert_eq!(huge_cost, 5_000 * 3);
    // And the table itself is far smaller.
    assert!(huge.table_pages() < flat.table_pages() / 4);
}
