//! # atp — Paging and the Address-Translation Problem
//!
//! A trace-driven simulation library reproducing **"Paging and the
//! Address-Translation Problem"** (Bender et al., SPAA 2021): the
//! address-translation cost model, huge-page decoupling via
//! low-associativity paging and Iceberg\[2\] hashing, compact TLB encodings,
//! and the Simulation Theorem combining a TLB-optimal and an IO-optimal
//! policy into one algorithm with the best of both.
//!
//! ## Quick start
//!
//! ```
//! use atp::memmgmt::{ClassicMm, DecoupledMm, MemoryManager};
//! use atp::memmgmt::classic::ClassicConfig;
//! use atp::memmgmt::decoupled::DecoupledConfig;
//! use atp::core::{IcebergAlloc, IcebergParams};
//! use atp::replacement::PolicyKind;
//! use atp::types::VirtPage;
//!
//! // Classic physically contiguous huge pages of 8 pages: every fault
//! // moves 8 pages.
//! let mut classic = ClassicMm::new(ClassicConfig::paper(8, 1 << 14));
//!
//! // Huge-page decoupling over an Iceberg[2] allocator: same TLB coverage,
//! // page-granular IOs.
//! let params = IcebergParams::derive(1 << 14);
//! let mut decoupled = DecoupledMm::new(
//!     IcebergAlloc::new(&params, 42),
//!     DecoupledConfig {
//!         tlb_value_bits: 64,
//!         tlb_entries: 1536,
//!         tlb_policy: PolicyKind::Lru,
//!         resident_pages: params.max_resident,
//!         ram_policy: PolicyKind::Lru,
//!         seed: 42,
//!     },
//! );
//!
//! for p in 0..1024u64 {
//!     classic.access(VirtPage(p));
//!     decoupled.access(VirtPage(p));
//! }
//! // Decoupling faults once per page; classic faults 8 pages at a time.
//! assert_eq!(decoupled.costs().ios, 1024);
//! assert_eq!(classic.costs().ios, 1024);
//! // ... but on sparse access patterns classic pays 8× the IOs; see the
//! // `huge_page_tradeoff` example.
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`types`] | page ids, parameters, the ε/1 cost model |
//! | [`hash`] | seeded deterministic hashing & counter RNG |
//! | [`ballsbins`] | one-choice / Greedy\[d\] / Iceberg\[d\] games |
//! | [`replacement`] | LRU, FIFO, CLOCK, …, Belady OPT |
//! | [`pagetable`] | radix & hashed page tables with walk costs |
//! | [`tlb`] | fully/set-associative and split TLB models |
//! | [`core`] | **the contribution**: allocators, encodings, scheme |
//! | [`memmgmt`] | classic, X, Y, Z, and hybrid managers |
//! | [`workloads`] | Figure-1 workloads + extras |
//! | [`trace`] | binary trace format |
//! | [`sim`] | drivers, parallel sweeps, multicore extension |
//! | [`obs`] | event tracing, metrics registry, windowed exports |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atp_ballsbins as ballsbins;
pub use atp_core as core;
pub use atp_hash as hash;
pub use atp_memmgmt as memmgmt;
pub use atp_obs as obs;
pub use atp_pagetable as pagetable;
pub use atp_replacement as replacement;
pub use atp_sim as sim;
pub use atp_tlb as tlb;
pub use atp_trace as trace;
pub use atp_types as types;
pub use atp_workloads as workloads;
