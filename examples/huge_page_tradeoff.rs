//! The Figure-1 trade-off, scaled to a laptop.
//!
//! Sweeps the physical huge-page size h ∈ {1, 2, …, 1024} on all three of
//! the paper's workloads (at reduced scale; ratios preserved) and prints
//! the IO and TLB-miss series of Figure 1a/1b/1c, plus the decoupled
//! scheme's single point for comparison — demonstrating the paper's claim
//! that "there is no good choice for the huge page size", while decoupling
//! gets both.
//!
//! ```sh
//! cargo run --release --example huge_page_tradeoff
//! ```

use atp::core::{IcebergAlloc, IcebergParams};
use atp::memmgmt::classic::{ClassicConfig, ClassicMm};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::DecoupledMm;
use atp::replacement::PolicyKind;
use atp::sim::{run, sweep};
use atp::types::VirtPage;
use atp::workloads::{Bimodal, Graph500Config, Graph500Trace, ParetoWalk};

const TLB_ENTRIES: u64 = 256;
const WARMUP: u64 = 400_000;
const MEASURE: u64 = 400_000;

struct Setup {
    name: &'static str,
    trace: Vec<VirtPage>,
    phys_pages: u64,
}

fn setups() -> Vec<Setup> {
    // Figure 1a: bimodal, VA:cache = 4:1 (paper: 64 GB : 16 GB).
    let bimodal = Setup {
        name: "bimodal (Fig 1a)",
        trace: Bimodal::scaled(1, 1 << 18)
            .take((WARMUP + MEASURE) as usize)
            .collect(),
        phys_pages: 1 << 16,
    };
    // Figure 1b: Pareto walk, VA:cache = 2:1 (paper: 64 GB : 32 GB).
    let walk = Setup {
        name: "pareto walk (Fig 1b)",
        trace: ParetoWalk::new(2, 1 << 17, 0.01)
            .take((WARMUP + MEASURE) as usize)
            .collect(),
        phys_pages: 1 << 16,
    };
    // Figure 1c: graph500 BFS, cache slightly below the touched set.
    let g = Graph500Trace::generate(&Graph500Config {
        scale: 15,
        edge_factor: 16,
        seed: 3,
        max_accesses: (WARMUP + MEASURE) as usize,
    });
    let phys = (g.touched_pages() * 99 / 100).max(1024);
    let walk3 = Setup {
        name: "graph500 BFS (Fig 1c)",
        trace: g.iter().collect(),
        phys_pages: phys,
    };
    vec![bimodal, walk, walk3]
}

fn main() {
    for setup in setups() {
        println!("\n== {} ==  (P = {} pages)", setup.name, setup.phys_pages);
        println!("{:>8} {:>12} {:>12}", "h", "IOs", "TLB misses");

        let hs: Vec<u64> = (0..=10).map(|i| 1u64 << i).collect();
        let rows = sweep(&hs, 0, |&h| {
            let mut m = ClassicMm::new(ClassicConfig {
                huge_pages: h,
                phys_pages: setup.phys_pages,
                tlb_entries: TLB_ENTRIES,
                tlb_policy: PolicyKind::Lru,
                ram_policy: PolicyKind::Lru,
                seed: 9,
            });
            let s = run(&mut m, setup.trace.iter().copied(), WARMUP, MEASURE);
            (h, s.costs.ios, s.costs.tlb_misses)
        });
        for (h, ios, tlb) in rows {
            println!("{h:>8} {ios:>12} {tlb:>12}");
        }

        // The decoupled point: huge-page TLB coverage, page-granular IO.
        let params = IcebergParams::derive(setup.phys_pages);
        let mut z = DecoupledMm::new(
            IcebergAlloc::new(&params, 11),
            DecoupledConfig {
                tlb_value_bits: 64,
                tlb_entries: TLB_ENTRIES,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 11,
            },
        );
        let hmax = z.coverage();
        let s = run(&mut z, setup.trace.iter().copied(), WARMUP, MEASURE);
        println!(
            "{:>8} {:>12} {:>12}   <- decoupled (hmax={hmax}, δ_eff={:.2}, failures={})",
            "Z", s.costs.ios, s.costs.tlb_misses, params.delta_eff, s.costs.paging_failures
        );
    }
}
