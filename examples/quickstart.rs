//! Quickstart: the address-translation cost model in five minutes.
//!
//! Runs one skewed workload against four memory managers and prints their
//! cost decomposition `C = C_IO + ε·(TLB misses + decoding misses)`:
//!
//! * classic paging (no huge pages): few IOs, many TLB misses;
//! * classic huge pages (h = 64): few TLB misses, amplified IOs;
//! * X / Y: the single-objective optima of Theorem 4;
//! * Z: huge-page decoupling — the best of both.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atp::core::{IcebergAlloc, IcebergParams};
use atp::memmgmt::classic::ClassicConfig;
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::{ClassicMm, DecoupledMm, PagingOnlyMm, VirtualOnlyMm};
use atp::replacement::PolicyKind;
use atp::sim::run;
use atp::types::{CostModel, Costs};
use atp::workloads::Zipfian;

const PHYS_PAGES: u64 = 1 << 16; // 256 MB of 4 kB pages
const VIRT_PAGES: u64 = 1 << 18; // 1 GB of 4 kB pages
const TLB_ENTRIES: u64 = 256;
const WARMUP: u64 = 300_000;
const MEASURE: u64 = 300_000;

fn row(name: &str, c: Costs, model: CostModel) {
    println!(
        "{name:<28} {:>10} {:>12} {:>10} {:>12.1}",
        c.ios,
        c.tlb_misses,
        c.paging_failures,
        c.total(model)
    );
}

fn main() {
    let model = CostModel::new(0.01);
    let trace = || Zipfian::new(7, VIRT_PAGES, 0.9);

    println!("workload: zipf(0.9) over {VIRT_PAGES} pages, {PHYS_PAGES} physical, ℓ={TLB_ENTRIES}");
    println!(
        "{:<28} {:>10} {:>12} {:>10} {:>12}",
        "manager", "IOs", "TLB misses", "failures", "total cost"
    );

    // Classic, no huge pages.
    let mut m = ClassicMm::new(ClassicConfig {
        huge_pages: 1,
        phys_pages: PHYS_PAGES,
        tlb_entries: TLB_ENTRIES,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 1,
    });
    let s = run(&mut m, trace(), WARMUP, MEASURE);
    row("classic h=1", s.costs, model);

    // Classic physical huge pages.
    let mut m = ClassicMm::new(ClassicConfig {
        huge_pages: 64,
        phys_pages: PHYS_PAGES,
        tlb_entries: TLB_ENTRIES,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 1,
    });
    let s = run(&mut m, trace(), WARMUP, MEASURE);
    row("classic h=64", s.costs, model);

    // Theorem 4 ingredients and the combined Z.
    let params = IcebergParams::derive(PHYS_PAGES);
    let alloc = IcebergAlloc::new(&params, 42);
    let mut z = DecoupledMm::new(
        alloc,
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries: TLB_ENTRIES,
            tlb_policy: PolicyKind::Lru,
            resident_pages: params.max_resident,
            ram_policy: PolicyKind::Lru,
            seed: 42,
        },
    );
    let hmax = z.coverage();
    let mut x = VirtualOnlyMm::new(hmax, TLB_ENTRIES, PolicyKind::Lru, 42);
    let mut y = PagingOnlyMm::new(params.max_resident, PolicyKind::Lru, 42);

    let sx = run(&mut x, trace(), WARMUP, MEASURE);
    let sy = run(&mut y, trace(), WARMUP, MEASURE);
    let sz = run(&mut z, trace(), WARMUP, MEASURE);
    row(&format!("X (TLB-only, hmax={hmax})"), sx.costs, model);
    row("Y (IO-only)", sy.costs, model);
    row(&format!("Z (decoupled, hmax={hmax})"), sz.costs, model);

    let bound = sx.costs.tlb_cost(model) + sy.costs.io_cost();
    println!(
        "\nTheorem 4 check: C(Z) = {:.1}  ≤  C_TLB(X) + C_IO(Y) = {:.1}   ({} paging failures)",
        sz.costs.total(model),
        bound,
        sz.costs.paging_failures
    );
    println!(
        "Z matches huge-page TLB coverage ({}x) at page-granular IO cost.",
        hmax
    );
}
