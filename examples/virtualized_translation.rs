//! Grounding ε: page-walk structure and virtualization (§1 trends).
//!
//! The paper's cost model takes ε as given. This example derives it: a
//! native 4-level radix walk touches 4 table pages; a virtualized
//! (guest-over-host) walk touches up to 24 — "which actually squares the
//! cost of a TLB miss in the worst case". Combined with device latencies,
//! that fixes the ε band the other experiments sweep, and shows how much
//! decoupled huge-page coverage is worth in each regime.
//!
//! ```sh
//! cargo run --release --example virtualized_translation
//! ```

use atp::pagetable::{NestedTranslation, PageTable, RadixPageTable};
use atp::sim::LatencyModel;
use atp::types::{PhysPage, VirtPage};

fn main() {
    // Build a guest identity mapping and a host mapping behind it.
    let mut guest = RadixPageTable::new();
    let mut host = RadixPageTable::new();
    for v in 0..512u64 {
        guest.map(VirtPage(v), PhysPage(v + 10_000));
        host.map(VirtPage(v + 10_000), PhysPage(v + 20_000));
    }
    host.map(VirtPage(0), PhysPage(0));

    let (_, native) = guest.translate(VirtPage(100));
    let nested = NestedTranslation::new(guest, host);
    let (hpa, twod) = nested.translate(VirtPage(100));
    println!("native radix walk:      {} touches", native.touches);
    println!(
        "virtualized (2D) walk:  {} touches  → host frame {:?}",
        twod.touches,
        hpa.expect("mapped")
    );

    // With host huge leaves (the EPT huge-page optimization):
    let mut guest2 = RadixPageTable::new();
    for v in 0..512u64 {
        guest2.map(VirtPage(v), PhysPage(v + 10_000));
    }
    let mut host2 = RadixPageTable::new();
    host2.map_huge(VirtPage(0), 2, PhysPage(0));
    let nested2 = NestedTranslation::new(guest2, host2);
    let (_, opt) = nested2.translate(VirtPage(100));
    println!("2D walk, 1G host leaves: {} touches", opt.touches);

    println!("\nDerived ε = walk latency / IO latency:");
    for (name, m) in [
        ("NVMe, native walk", LatencyModel::nvme_native()),
        ("NVMe, virtualized walk", LatencyModel::nvme_virtualized()),
        ("disk, native walk", LatencyModel::disk_native()),
    ] {
        println!("  {name:<24} ε = {:.5}", m.epsilon());
    }
    println!(
        "\nFast storage + virtualization pushes ε toward 10⁻¹ — the regime where the\n\
         paper's decoupled huge pages matter most (see the crossover bench at ε = 0.1)."
    );
}
