//! The balls-and-bins separation behind Theorem 3.
//!
//! Runs the dynamic game under sliding-window churn for the three placement
//! rules and prints max-load overheads (max − λ): one-choice needs
//! `O(√(λ log n))` headroom (watch it grow with λ), while Iceberg[2] is
//! *provably* `(1+o(1))λ + log log n + O(1)` — here with front-cap slack
//! γ = 0.1 its overhead stays ≈ γλ + log log n. Greedy[2] looks excellent
//! empirically too, but its best known bound is `O(λ) + log log n` (the
//! paper's footnote 3: nobody knows whether the Θ(λ) dependence is real),
//! and a guarantee is what a paging failure budget of 1/poly(P) demands.
//!
//! ```sh
//! cargo run --release --example balls_and_bins
//! ```

use atp::ballsbins::adversary::{drive, SlidingWindowAdversary};
use atp::ballsbins::{Game, LoadSnapshot, Rule};
use atp::sim::sweep;

fn main() {
    let n = 1u64 << 12; // bins
    println!("n = {n} bins, sliding-window churn, 8n operations\n");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>12}",
        "λ", "rule", "max", "p99", "max − λ"
    );

    for &lambda in &[4u64, 8, 16, 32] {
        let m = (n * lambda) as usize;
        let rules = [
            Rule::OneChoice,
            Rule::Greedy { d: 2 },
            Rule::Iceberg {
                front_cap: (lambda + lambda / 10 + 1) as u32,
            },
        ];
        let rows = sweep(&rules, 0, |&rule| {
            let mut game = Game::new(0xA11CE, n, rule);
            let mut adv = SlidingWindowAdversary::new(m);
            drive(&mut game, 8 * n * lambda, || adv.next_op());
            (rule, LoadSnapshot::of(&game))
        });
        for (rule, snap) in rows {
            println!(
                "{:>8} {:>12} {:>10} {:>10} {:>12.1}",
                lambda,
                rule.name(),
                snap.max,
                snap.p99,
                snap.overhead
            );
        }
        println!();
    }

    println!("One-choice overhead grows like √(λ log n); Iceberg[2]'s stays ≈ γλ + log log n");
    println!("(provably!); Greedy[2] is strong empirically but lacks a (1+o(1))λ guarantee.");
    println!("Small guaranteed overhead ⇒ small bins ⇒ few bits per TLB slot code.");
}
