//! Transparent huge pages meet fragmentation (§1 cost #3, §7 THP/Ingens).
//!
//! Runs the THP-style manager through phases of churn and measures the
//! promotion success rate and the largest contiguous free run as memory
//! fragments — the operational problem ("the difficult, open problem of
//! efficiently maintaining physical contiguity") that huge-page decoupling
//! dissolves by construction: the decoupled scheme needs no contiguity at
//! all, so its "promotion rate" is always 100%.
//!
//! ```sh
//! cargo run --release --example thp_fragmentation
//! ```

use atp::memmgmt::thp::{ThpConfig, ThpMm};
use atp::memmgmt::MemoryManager;
use atp::replacement::PolicyKind;
use atp::types::VirtPage;
use atp::workloads::{PhasedWorkingSet, Sequential};

fn main() {
    let h = 64u64;
    let phys = 1u64 << 14; // 16k frames = 256 huge groups

    println!("h = {h}, P = {phys} frames ({} huge groups)", phys / h);
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12}",
        "churn pages", "promotions", "failures", "success rate", "max contig"
    );

    // Each row: a fresh system that suffers increasing scattered churn
    // (single pages from random runs, occupying random frames) before a
    // sequential streaming phase tries to build 32 huge pages.
    for churn_pages in [0u64, 256, 1024, 2048, 4096, 8192, 12288] {
        let mut m = ThpMm::new(ThpConfig {
            huge_pages: h,
            phys_pages: phys,
            tlb_entries: 256,
            policy: PolicyKind::Lru,
            seed: 42,
        });
        let churn = PhasedWorkingSet::new(churn_pages, 1 << 22, 1 << 12, 16);
        for p in churn.take(churn_pages as usize) {
            m.access(p);
        }
        let contig_before = m.max_contiguous_free();
        m.reset_costs();
        for p in Sequential::new(32 * h).map(|p| VirtPage(p.0 + (1 << 30))) {
            m.access(p);
            if m.costs().accesses >= 32 * h {
                break;
            }
        }
        let s = m.thp_stats();
        let rate = s.promotions as f64 / (s.promotions + s.promotion_failures).max(1) as f64;
        println!(
            "{:>12} {:>12} {:>12} {:>13.0}% {:>12}",
            churn_pages,
            s.promotions,
            s.promotion_failures,
            rate * 100.0,
            contig_before
        );
    }
    println!(
        "Huge-page decoupling sidesteps all of this: no contiguity, no migration,\n\
         no promotion failures — the TLB entry encodes scattered frames directly."
    );
}
