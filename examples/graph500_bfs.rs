//! End-to-end graph500 scenario (the Figure-1c pipeline).
//!
//! Generates an R-MAT graph, records the BFS page trace, reports trace
//! statistics, and compares classic h=1, classic h=64, and the decoupled
//! scheme under memory pressure (cache slightly below the touched set,
//! like the paper's 520 MB / 525 MB setup).
//!
//! ```sh
//! cargo run --release --example graph500_bfs
//! ```

use atp::core::IcebergAlloc;
use atp::memmgmt::classic::{ClassicConfig, ClassicMm};
use atp::memmgmt::decoupled::DecoupledConfig;
use atp::memmgmt::DecoupledMm;
use atp::replacement::PolicyKind;
use atp::sim::run;
use atp::trace::TraceStats;
use atp::types::CostModel;
use atp::workloads::{Graph500Config, Graph500Trace};

fn main() {
    let cfg = Graph500Config {
        scale: 15,
        edge_factor: 16,
        seed: 2,
        max_accesses: 2_000_000,
    };
    println!(
        "generating R-MAT graph: 2^{} vertices × {} edges/vertex …",
        cfg.scale, cfg.edge_factor
    );
    let g = Graph500Trace::generate(&cfg);
    let trace: Vec<_> = g.iter().collect();
    let stats = TraceStats::compute(&trace);
    println!(
        "graph: {} vertices, {} directed edges; footprint {} pages",
        g.vertices(),
        g.edges(),
        g.footprint_pages()
    );
    println!(
        "trace: {} accesses, {} touched pages, reuse {:.1}x, adjacent rate {:.2}",
        stats.length, stats.unique_pages, stats.mean_reuse, stats.adjacent_rate
    );

    // Cache slightly below the touched set (paper: 520 MB vs 525 MB).
    let phys = (g.touched_pages() * 99 / 100).max(1024);
    let tlb_entries = 128;
    let warmup = trace.len() as u64 / 2;
    let measure = trace.len() as u64 - warmup;
    let model = CostModel::new(0.01);

    println!("\ncache: {phys} pages, TLB: {tlb_entries} entries");
    println!(
        "{:<24} {:>10} {:>12} {:>12}",
        "manager", "IOs", "TLB misses", "total cost"
    );
    for h in [1u64, 64] {
        let mut m = ClassicMm::new(ClassicConfig {
            huge_pages: h,
            phys_pages: phys,
            tlb_entries,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 5,
        });
        let s = run(&mut m, trace.iter().copied(), warmup, measure);
        println!(
            "{:<24} {:>10} {:>12} {:>12.1}",
            s.name,
            s.costs.ios,
            s.costs.tlb_misses,
            s.costs.total(model)
        );
    }

    // Decoupled scheme. The asymptotic parameter derivation is far too
    // conservative at toy scale (δ_eff ≈ 0.6), so we hand-pick a geometry
    // with δ ≈ 0.15: bins of 20 front + 8 back slots covering ~P frames.
    // Any residual paging failures are handled by Z at 1 + ε each.
    let bin_total = 28u64;
    let bins = (phys / bin_total).max(1);
    let resident = bins * bin_total * 85 / 100;
    let mut z = DecoupledMm::new(
        IcebergAlloc::with_geometry(bins, 20, 8, 5),
        DecoupledConfig {
            tlb_value_bits: 64,
            tlb_entries,
            tlb_policy: PolicyKind::Lru,
            resident_pages: resident,
            ram_policy: PolicyKind::Lru,
            seed: 5,
        },
    );
    let s = run(&mut z, trace.iter().copied(), warmup, measure);
    println!(
        "{:<24} {:>10} {:>12} {:>12.1}   ({} failures, δ=0.15)",
        s.name,
        s.costs.ios,
        s.costs.tlb_misses,
        s.costs.total(model),
        s.costs.paging_failures
    );
}
