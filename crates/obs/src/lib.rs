//! Observability for the simulation stack.
//!
//! The paper's headline artifacts are *trajectories* — how cost, TLB
//! reach, and IO amplification evolve across sweeps and trace phases —
//! so end-of-run totals are not enough. This crate provides the
//! machine-readable layer on top of the memmgmt pipeline's
//! [`SimObserver`](atp_memmgmt::SimObserver) seam:
//!
//! * [`EventLog`] — logical-clock-stamped structured events (TLB
//!   hit/miss/fill/shootdown, eviction, decode miss, fault, batch
//!   boundary) in a bounded ring buffer, exported as JSONL or Chrome
//!   trace-event JSON (Perfetto-loadable);
//! * [`MetricsRegistry`] — named counters / gauges / log₂ histograms
//!   rendered as JSON, CSV, or Prometheus text exposition format;
//! * [`Windowed`] — per-window miss rate, ε-cost, IO and
//!   fault-amplification rows (CSV) for Figure-1-style phase plots;
//! * [`SyncRecorder`] — a `Mutex`-backed recorder whose clones can be
//!   handed to `run_multicore` / `atp_sim::sweep` worker threads;
//! * [`Shared`] / [`RunObserver`] — composition so one run can capture
//!   counters, events, and windows at once;
//! * [`json`] — the hand-rolled JSON writer/parser behind all of the
//!   above (no serde: the workspace is dependency-free by construction).
//!
//! Everything is stamped with logical clocks and seeded state only, so
//! same-seed runs export **byte-identical** artifacts — pinned by golden
//! tests and relied on by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod stack;
pub mod sync;
pub mod window;

pub use event::{Event, EventKind, EventLog};
pub use export::{costs_into, recorder_into, run_registry};
pub use json::Json;
pub use metrics::{ExportFormat, Histogram, Metric, MetricValue, MetricsRegistry};
pub use stack::{RunObserver, Shared};
pub use sync::SyncRecorder;
pub use window::{WindowRow, Windowed};
