//! A thread-safe recorder for concurrent drivers.
//!
//! [`SharedRecorder`](atp_memmgmt::SharedRecorder) is `Rc`-based and
//! single-threaded; `run_multicore` and `atp_sim::sweep` need an observer
//! whose clones can be handed to worker threads. [`SyncRecorder`] wraps a
//! [`Recorder`] in `Arc<Mutex<…>>`: clone one handle per worker, read the
//! aggregate after the join. Lock traffic only exists when observation is
//! requested — unobserved runs keep the zero-cost `NoopObserver` path.

use atp_memmgmt::{AccessReport, EvictionEvent, Recorder, SimObserver, TlbEvent};
use atp_types::VirtPage;
use std::sync::{Arc, Mutex};

/// A `Send + Sync` recorder handle; all clones feed one shared [`Recorder`].
#[derive(Clone, Debug, Default)]
pub struct SyncRecorder(Arc<Mutex<Recorder>>);

impl SyncRecorder {
    /// A fresh recorder with reuse-distance tracking enabled.
    pub fn new() -> Self {
        SyncRecorder::from_recorder(Recorder::new())
    }

    /// A fresh recorder without the reuse-distance map — constant memory
    /// regardless of trace footprint; use for sweeps and multicore runs
    /// where only the stage counters matter.
    pub fn without_reuse_tracking() -> Self {
        SyncRecorder::from_recorder(Recorder::without_reuse_tracking())
    }

    /// Wraps an existing recorder.
    pub fn from_recorder(r: Recorder) -> Self {
        SyncRecorder(Arc::new(Mutex::new(r)))
    }

    /// Runs `f` on the inner recorder.
    pub fn with<R>(&self, f: impl FnOnce(&Recorder) -> R) -> R {
        // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
        f(&self.0.lock().expect("sync recorder poisoned"))
    }

    /// Clones out the inner recorder's current state.
    pub fn snapshot(&self) -> Recorder {
        // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
        self.0.lock().expect("sync recorder poisoned").clone()
    }
}

impl SimObserver for SyncRecorder {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        self.0
            .lock()
            // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
            .expect("sync recorder poisoned")
            .on_access(v, report);
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        self.0
            .lock()
            // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
            .expect("sync recorder poisoned")
            .on_tlb_event(event);
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.0
            .lock()
            // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
            .expect("sync recorder poisoned")
            .on_eviction(event);
    }

    fn on_decode_miss(&mut self, v: VirtPage) {
        self.0
            .lock()
            // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
            .expect("sync recorder poisoned")
            .on_decode_miss(v);
    }

    fn on_batch_boundary(&mut self, len: usize) {
        self.0
            .lock()
            // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
            .expect("sync recorder poisoned")
            .on_batch_boundary(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_tally_across_threads() {
        let rec = SyncRecorder::without_reuse_tracking();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut handle = rec.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        handle.on_tlb_event(TlbEvent::Miss);
                        handle.on_access(
                            VirtPage(t * 1000 + i),
                            AccessReport {
                                tlb_miss: true,
                                ios: 1,
                                decode_miss: false,
                                paging_failure: false,
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(rec.with(|r| r.accesses()), 400);
        assert_eq!(rec.with(|r| r.counters().tlb_misses), 400);
        assert_eq!(rec.with(|r| r.counters().ios), 400);
    }
}
