//! A registry of named metrics rendered to JSON, CSV, and Prometheus text
//! exposition format.
//!
//! Metrics are appended in a deterministic order (insertion order, never
//! sorted by hash) and rendered with logical values only, so a registry
//! built from a fixed-seed run exports byte-identical text. Three kinds:
//!
//! * **counter** — a monotonically accumulated `u64` (IOs, misses…);
//! * **gauge** — a point-in-time `f64` (miss rate, ε-cost, acc/s…);
//! * **histogram** — log₂-bucketed `u64` samples (reuse distances,
//!   per-access IO counts), the same shape [`atp_memmgmt::Recorder`] uses.

use crate::json::{fmt_f64, quote};

/// Number of log₂ buckets (covers values up to 2⁶³).
pub const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed histogram: bucket `i` counts samples in `[2^i, 2^{i+1})`
/// (bucket 0 also holds zeros).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let bucket = (63 - (v | 1).leading_zeros()) as usize;
        self.buckets[bucket.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Imports pre-bucketed counts (e.g. a recorder's reuse histogram).
    /// The per-sample sum is unrecoverable from buckets, so it is estimated
    /// at bucket midpoints (`1.5 × 2^i`) — exported as-is and documented as
    /// an estimate.
    pub fn from_log2_buckets(buckets: &[u64]) -> Self {
        let mut h = Histogram::new();
        for (i, &c) in buckets.iter().take(HIST_BUCKETS).enumerate() {
            h.buckets[i] = c;
            h.count += c;
            let mid = (1u64 << i) + (1u64 << i) / 2;
            h.sum = h.sum.saturating_add(mid.saturating_mul(c));
        }
        h
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (exact when built via [`Histogram::observe`],
    /// midpoint-estimated when imported from buckets).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Index of the last non-empty bucket plus one (0 if empty).
    fn occupied(&self) -> usize {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Log₂ histogram.
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One named metric with labels.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*` — used verbatim in all three
    /// export formats).
    pub name: String,
    /// One-line description (Prometheus `# HELP`).
    pub help: String,
    /// Label pairs, in insertion order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// Output format selector for [`MetricsRegistry::render`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportFormat {
    /// Machine-readable JSON (`atp-metrics-v1`).
    Json,
    /// Flat CSV (`name,kind,labels,field,value`).
    Csv,
    /// Prometheus text exposition format.
    Prometheus,
}

impl ExportFormat {
    /// Parses `json` / `csv` / `prom` (or `prometheus`).
    pub fn parse(s: &str) -> Option<ExportFormat> {
        match s {
            "json" => Some(ExportFormat::Json),
            "csv" => Some(ExportFormat::Csv),
            "prom" | "prometheus" => Some(ExportFormat::Prometheus),
            _ => None,
        }
    }
}

/// An append-only, deterministically ordered collection of metrics plus
/// free-form `meta` key/value context (run parameters, schema tags…).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    meta: Vec<(String, String)>,
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a meta key/value (exported under `"meta"` in JSON and as
    /// `# meta` comments in Prometheus).
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Appends a counter.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, labels, MetricValue::Counter(value));
    }

    /// Appends a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, labels, MetricValue::Gauge(value));
    }

    /// Appends a histogram.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: Histogram) {
        self.push(name, help, labels, MetricValue::Histogram(h));
    }

    fn push(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: MetricValue) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// The metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// The meta pairs, in insertion order.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Renders in the chosen format.
    pub fn render(&self, format: ExportFormat) -> String {
        match format {
            ExportFormat::Json => self.to_json(),
            ExportFormat::Csv => self.to_csv(),
            ExportFormat::Prometheus => self.to_prometheus(),
        }
    }

    /// JSON rendering (`atp-metrics-v1`): one metric object per line so the
    /// output greps and diffs cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n\"schema\": \"atp-metrics-v1\",\n\"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", quote(k), quote(v)));
        }
        out.push_str("},\n\"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "{{\"name\": {}, \"kind\": \"{}\", \"labels\": {{",
                quote(&m.name),
                m.value.kind()
            ));
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", quote(k), quote(v)));
            }
            out.push_str("}, ");
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&format!("\"value\": {v}")),
                MetricValue::Gauge(v) => out.push_str(&format!("\"value\": {}", fmt_f64(*v))),
                MetricValue::Histogram(h) => {
                    out.push_str("\"buckets\": [");
                    for (j, &c) in h.buckets[..h.occupied()].iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&c.to_string());
                    }
                    out.push_str(&format!("], \"count\": {}, \"sum\": {}", h.count, h.sum));
                }
            }
            out.push('}');
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n}\n");
        out
    }

    /// CSV rendering: `name,kind,labels,field,value`, labels as `k=v`
    /// joined with `;`. Counters and gauges emit one `value` row;
    /// histograms emit one row per non-empty bucket plus `count` and `sum`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,labels,field,value\n");
        for m in &self.metrics {
            let labels = m
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(";");
            let labels = csv_field(&labels);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{},counter,{labels},value,{v}\n", m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{},gauge,{labels},value,{}\n",
                        m.name,
                        fmt_f64(*v)
                    ));
                }
                MetricValue::Histogram(h) => {
                    for (i, &c) in h.buckets[..h.occupied()].iter().enumerate() {
                        if c > 0 {
                            out.push_str(&format!(
                                "{},histogram,{labels},bucket_2^{i},{c}\n",
                                m.name
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{},histogram,{labels},count,{}\n",
                        m.name, h.count
                    ));
                    out.push_str(&format!("{},histogram,{labels},sum,{}\n", m.name, h.sum));
                }
            }
        }
        out
    }

    /// Prometheus text exposition rendering. Histograms emit cumulative
    /// `_bucket{le=…}` series with power-of-two upper bounds, `_sum`, and
    /// `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.meta {
            out.push_str(&format!("# meta {k}={v}\n"));
        }
        let mut seen: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen.contains(&m.name.as_str()) {
                seen.push(&m.name);
                if !m.help.is_empty() {
                    out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                }
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.name, prom_labels(&m.labels, None)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        prom_labels(&m.labels, None),
                        prom_f64(*v)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets[..h.occupied()].iter().enumerate() {
                        cum += c;
                        if c > 0 || i + 1 == h.occupied() {
                            let le = prom_f64(2f64.powi(i as i32 + 1));
                            out.push_str(&format!(
                                "{}_bucket{} {cum}\n",
                                m.name,
                                prom_labels(&m.labels, Some(&le))
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        prom_labels(&m.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        prom_labels(&m.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        prom_labels(&m.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Quotes a CSV field if it contains separators or quotes.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats an f64 for Prometheus (which accepts Go-syntax floats; our
/// deterministic Rust `Display` output is a subset of that).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `{k="v",…}` with Prometheus label escaping; `le` appended last.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let v = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        out.push_str(&format!("{k}=\"{v}\""));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_meta("manager", "classic h=64");
        r.counter("atp_ios", "total IOs", &[("workload", "zipf")], 123);
        r.gauge(
            "atp_miss_rate",
            "TLB miss rate",
            &[("workload", "zipf")],
            0.25,
        );
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(5);
        h.observe(100);
        r.histogram("atp_reuse", "reuse distances", &[], h);
        r
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 0
        h.observe(2); // bucket 1
        h.observe(3); // bucket 1
        h.observe(4); // bucket 2
        assert_eq!(&h.buckets()[..3], &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10);
    }

    #[test]
    fn import_from_buckets_estimates_sum() {
        let h = Histogram::from_log2_buckets(&[2, 0, 1]);
        assert_eq!(h.count(), 3);
        // 2 samples at midpoint 1 (bucket 0: 1+0) + 1 at midpoint 6.
        assert_eq!(h.sum(), 8);
    }

    #[test]
    fn json_parses_and_has_all_metrics() {
        let doc = parse(&sample().to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("atp-metrics-v1"));
        assert_eq!(
            doc.get("meta").unwrap().get("manager").unwrap().as_str(),
            Some("classic h=64")
        );
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].get("value").unwrap().as_f64(), Some(123.0));
        assert_eq!(
            metrics[0]
                .get("labels")
                .unwrap()
                .get("workload")
                .unwrap()
                .as_str(),
            Some("zipf")
        );
        assert_eq!(metrics[2].get("count").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,kind,labels,field,value");
        assert!(lines.contains(&"atp_ios,counter,workload=zipf,value,123"));
        assert!(lines.contains(&"atp_miss_rate,gauge,workload=zipf,value,0.25"));
        assert!(lines.contains(&"atp_reuse,histogram,,count,4"));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("atp_reuse,histogram,,bucket_2^0,")));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE atp_ios counter"));
        assert!(text.contains("atp_ios{workload=\"zipf\"} 123"));
        assert!(text.contains("# TYPE atp_reuse histogram"));
        assert!(text.contains("atp_reuse_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("atp_reuse_count 4"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("atp_reuse_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        for f in [
            ExportFormat::Json,
            ExportFormat::Csv,
            ExportFormat::Prometheus,
        ] {
            assert_eq!(sample().render(f), sample().render(f));
        }
    }

    #[test]
    fn format_parses() {
        assert_eq!(ExportFormat::parse("json"), Some(ExportFormat::Json));
        assert_eq!(ExportFormat::parse("csv"), Some(ExportFormat::Csv));
        assert_eq!(ExportFormat::parse("prom"), Some(ExportFormat::Prometheus));
        assert_eq!(
            ExportFormat::parse("prometheus"),
            Some(ExportFormat::Prometheus)
        );
        assert_eq!(ExportFormat::parse("xml"), None);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = MetricsRegistry::new();
        r.counter("m", "", &[("k", "a\"b\\c")], 1);
        assert!(r.to_prometheus().contains("m{k=\"a\\\"b\\\\c\"} 1"));
        parse(&r.to_json()).expect("escaped JSON still parses");
    }
}
