//! Hand-rolled JSON writing helpers and a minimal parser.
//!
//! The workspace has no serde (unresolvable offline — PR 1 precedent), so
//! every exporter in this crate builds its output with [`escape_into`] /
//! [`fmt_f64`] and every structural test validates it with [`parse`]. The
//! writer side is deliberately tiny: exports are format-specific enough
//! that a `String`-building function per format beats a generic value
//! tree. The parser is a strict recursive-descent JSON reader used by
//! golden tests and by the bench baseline loader; it keeps object keys in
//! document order so round-trip checks can compare deterministically.

/// Escapes `s` as JSON string *contents* (no surrounding quotes) into `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Escapes `s` as a quoted JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number token. Rust's shortest-round-trip
/// `Display` is deterministic, so same-seed runs emit identical bytes.
/// Non-finite values (which JSON cannot represent) render as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the fraction for integral floats ("3"); keep
        // that — it is still a valid JSON number.
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object keys keep document order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth bound: hostile inputs cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // exports; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // atp-lint: allow(unwrap-policy, reason = "the scanner only accepts ASCII bytes on this path, so the span is valid UTF-8")
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quotes() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\"}", "tru", "1 2", "{\"a\":}", "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let s = format!(
            "{{{}: {}, \"n\": {}}}",
            quote("weird \"key\"\t"),
            quote("v\\"),
            fmt_f64(0.25)
        );
        let v = parse(&s).unwrap();
        assert_eq!(v.get("weird \"key\"\t").unwrap().as_str(), Some("v\\"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn depth_bound_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
