//! Windowed time series: per-window miss rates, ε-cost, IO counts, and
//! fault amplification, so Figure-1-style *phase* plots fall out of a
//! single run instead of end-of-run totals.
//!
//! [`Windowed`] is a [`SimObserver`] that slices the access stream into
//! fixed-size windows of `N` accesses and accumulates one [`WindowRow`]
//! per slice. Export with [`Windowed::to_csv`]; all values derive from
//! logical counts only, so fixed-seed runs emit byte-identical CSV.

use atp_memmgmt::{AccessReport, EvictionEvent, SimObserver};
use atp_types::VirtPage;

/// Aggregates for one window of accesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowRow {
    /// Zero-based window index.
    pub index: u64,
    /// Logical clock (completed accesses) at window start.
    pub start: u64,
    /// Accesses in this window (equals the window size except possibly for
    /// the final partial window).
    pub accesses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Decoding misses.
    pub decode_misses: u64,
    /// IOs performed.
    pub ios: u64,
    /// Accesses that performed ≥ 1 IO.
    pub faults: u64,
    /// Residency evictions.
    pub evictions: u64,
}

impl WindowRow {
    /// TLB miss rate within the window (0 for an empty window).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / self.accesses as f64
        }
    }

    /// IOs per fault (the huge-page amplification signal; 0 if no faults).
    pub fn amplification(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.ios as f64 / self.faults as f64
        }
    }

    /// Model cost of the window: `ios + ε·(tlb_misses + decode_misses)`.
    pub fn cost(&self, epsilon: f64) -> f64 {
        self.ios as f64 + epsilon * (self.tlb_misses + self.decode_misses) as f64
    }
}

/// The windowed time-series observer.
#[derive(Clone, Debug)]
pub struct Windowed {
    window: u64,
    epsilon: f64,
    rows: Vec<WindowRow>,
    cur: WindowRow,
    clock: u64,
}

impl Windowed {
    /// Creates an observer slicing every `window` accesses; `epsilon` is
    /// used for the per-window ε-cost column.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: u64, epsilon: f64) -> Self {
        assert!(window > 0, "window size must be positive");
        Windowed {
            window,
            epsilon,
            rows: Vec::new(),
            cur: WindowRow::default(),
            clock: 0,
        }
    }

    /// The window size in accesses.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Completed windows (excludes the in-progress one).
    pub fn rows(&self) -> &[WindowRow] {
        &self.rows
    }

    /// The in-progress window, if it has seen any accesses.
    pub fn partial(&self) -> Option<WindowRow> {
        (self.cur.accesses > 0).then_some(self.cur)
    }

    /// Completed rows plus the trailing partial window (if non-empty).
    pub fn all_rows(&self) -> Vec<WindowRow> {
        let mut out = self.rows.clone();
        out.extend(self.partial());
        out
    }

    /// CSV export: header plus one row per window (including a trailing
    /// partial window). Rates are fixed to six decimals so the bytes are
    /// stable and diffable.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "window,start,accesses,tlb_misses,tlb_miss_rate,decode_misses,\
             ios,faults,fault_amplification,evictions,cost\n",
        );
        for r in self.all_rows() {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{},{},{},{:.4},{},{:.4}\n",
                r.index,
                r.start,
                r.accesses,
                r.tlb_misses,
                r.miss_rate(),
                r.decode_misses,
                r.ios,
                r.faults,
                r.amplification(),
                r.evictions,
                r.cost(self.epsilon)
            ));
        }
        out
    }
}

impl SimObserver for Windowed {
    fn on_access(&mut self, _v: VirtPage, report: AccessReport) {
        self.cur.accesses += 1;
        if report.tlb_miss {
            self.cur.tlb_misses += 1;
        }
        if report.decode_miss {
            self.cur.decode_misses += 1;
        }
        if report.ios > 0 {
            self.cur.faults += 1;
            self.cur.ios += report.ios;
        }
        self.clock += 1;
        if self.cur.accesses == self.window {
            let done = self.cur;
            self.rows.push(done);
            self.cur = WindowRow {
                index: done.index + 1,
                start: self.clock,
                ..WindowRow::default()
            };
        }
    }

    fn on_eviction(&mut self, _event: EvictionEvent) {
        self.cur.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tlb_miss: bool, ios: u64) -> AccessReport {
        AccessReport {
            tlb_miss,
            ios,
            decode_miss: false,
            paging_failure: false,
        }
    }

    #[test]
    fn windows_close_at_the_boundary() {
        let mut w = Windowed::new(4, 0.01);
        for i in 0..10u64 {
            w.on_access(VirtPage(i), report(i % 2 == 0, u64::from(i == 3)));
        }
        assert_eq!(w.rows().len(), 2, "two full windows of 4");
        assert_eq!(w.partial().unwrap().accesses, 2, "trailing partial of 2");
        let r0 = w.rows()[0];
        assert_eq!((r0.index, r0.start, r0.accesses), (0, 0, 4));
        assert_eq!(r0.tlb_misses, 2);
        assert_eq!((r0.faults, r0.ios), (1, 1));
        let r1 = w.rows()[1];
        assert_eq!((r1.index, r1.start), (1, 4));
    }

    #[test]
    fn rates_and_cost() {
        let r = WindowRow {
            accesses: 8,
            tlb_misses: 2,
            decode_misses: 1,
            ios: 6,
            faults: 2,
            ..WindowRow::default()
        };
        assert_eq!(r.miss_rate(), 0.25);
        assert_eq!(r.amplification(), 3.0);
        assert_eq!(r.cost(0.5), 6.0 + 0.5 * 3.0);
        assert_eq!(WindowRow::default().miss_rate(), 0.0);
        assert_eq!(WindowRow::default().amplification(), 0.0);
    }

    #[test]
    fn csv_includes_partial_window() {
        let mut w = Windowed::new(2, 0.01);
        for i in 0..3u64 {
            w.on_access(VirtPage(i), report(true, 0));
        }
        w.on_eviction(EvictionEvent { unit: 1, pages: 2 });
        let csv = w.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + full + partial");
        assert!(lines[0].starts_with("window,start,accesses"));
        assert!(lines[1].starts_with("0,0,2,2,1.000000,"));
        assert!(lines[2].starts_with("1,2,1,1,1.000000,"));
        assert!(lines[2].contains(",1,"), "eviction lands in current window");
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_rejected() {
        Windowed::new(0, 0.01);
    }
}
