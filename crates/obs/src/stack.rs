//! Observer composition for runs that want several captures at once.
//!
//! [`Shared<T>`] is the generic version of the memmgmt crate's
//! `SharedRecorder`: clone one handle into the pipeline (which owns its
//! observer) and keep another to read results after the run. [`RunObserver`]
//! bundles the three capture layers a CLI run can request — counters
//! ([`Recorder`]), structured events ([`EventLog`]), and windowed time
//! series ([`Windowed`]) — behind one `SimObserver`, with the unused layers
//! as `None`.

use crate::event::EventLog;
use crate::window::Windowed;
use atp_memmgmt::{AccessReport, EvictionEvent, Recorder, SimObserver, TlbEvent};
use atp_types::VirtPage;
use std::cell::RefCell;
use std::rc::Rc;

/// A cloneable single-threaded handle to any observer.
#[derive(Debug, Default)]
pub struct Shared<T>(Rc<RefCell<T>>);

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Rc::clone(&self.0))
    }
}

impl<T> Shared<T> {
    /// Wraps `inner`.
    pub fn new(inner: T) -> Self {
        Shared(Rc::new(RefCell::new(inner)))
    }

    /// Runs `f` on the inner observer.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs `f` on the inner observer, mutably.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<T: SimObserver> SimObserver for Shared<T> {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        self.0.borrow_mut().on_access(v, report);
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        self.0.borrow_mut().on_tlb_event(event);
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.0.borrow_mut().on_eviction(event);
    }

    fn on_decode_miss(&mut self, v: VirtPage) {
        self.0.borrow_mut().on_decode_miss(v);
    }

    fn on_batch_boundary(&mut self, len: usize) {
        self.0.borrow_mut().on_batch_boundary(len);
    }
}

/// All capture layers one run can request. The recorder is always present
/// (it is cheap and every export wants its counters); events and windows
/// are attached on demand.
#[derive(Clone, Debug)]
pub struct RunObserver {
    /// Per-stage counters and histograms.
    pub recorder: Recorder,
    /// Structured event ring, if `--trace-events` was requested.
    pub events: Option<EventLog>,
    /// Windowed time series, if `--window` was requested.
    pub windowed: Option<Windowed>,
}

impl RunObserver {
    /// A recorder-only observer.
    pub fn new(recorder: Recorder) -> Self {
        RunObserver {
            recorder,
            events: None,
            windowed: None,
        }
    }

    /// Attaches an event ring of `capacity` events.
    pub fn with_events(mut self, capacity: usize) -> Self {
        self.events = Some(EventLog::new(capacity));
        self
    }

    /// Attaches a windowed time series.
    pub fn with_window(mut self, window: u64, epsilon: f64) -> Self {
        self.windowed = Some(Windowed::new(window, epsilon));
        self
    }
}

impl SimObserver for RunObserver {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        self.recorder.on_access(v, report);
        if let Some(e) = &mut self.events {
            e.on_access(v, report);
        }
        if let Some(w) = &mut self.windowed {
            w.on_access(v, report);
        }
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        self.recorder.on_tlb_event(event);
        if let Some(e) = &mut self.events {
            e.on_tlb_event(event);
        }
        if let Some(w) = &mut self.windowed {
            w.on_tlb_event(event);
        }
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.recorder.on_eviction(event);
        if let Some(e) = &mut self.events {
            e.on_eviction(event);
        }
        if let Some(w) = &mut self.windowed {
            w.on_eviction(event);
        }
    }

    fn on_decode_miss(&mut self, v: VirtPage) {
        self.recorder.on_decode_miss(v);
        if let Some(e) = &mut self.events {
            e.on_decode_miss(v);
        }
        if let Some(w) = &mut self.windowed {
            w.on_decode_miss(v);
        }
    }

    fn on_batch_boundary(&mut self, len: usize) {
        self.recorder.on_batch_boundary(len);
        if let Some(e) = &mut self.events {
            e.on_batch_boundary(len);
        }
        if let Some(w) = &mut self.windowed {
            w.on_batch_boundary(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss_report() -> AccessReport {
        AccessReport {
            tlb_miss: true,
            ios: 1,
            decode_miss: false,
            paging_failure: false,
        }
    }

    #[test]
    fn shared_handle_reads_after_moves() {
        let shared = Shared::new(EventLog::new(8));
        let mut handle = shared.clone();
        handle.on_tlb_event(TlbEvent::Miss);
        handle.on_access(VirtPage(1), miss_report());
        assert_eq!(shared.with(|e| e.len()), 2);
        assert_eq!(shared.with(|e| e.clock()), 1);
    }

    #[test]
    fn run_observer_feeds_every_layer() {
        let mut obs = RunObserver::new(Recorder::without_reuse_tracking())
            .with_events(16)
            .with_window(2, 0.01);
        for i in 0..4u64 {
            obs.on_tlb_event(TlbEvent::Miss);
            obs.on_access(VirtPage(i), miss_report());
        }
        obs.on_batch_boundary(4);
        assert_eq!(obs.recorder.counters().tlb_misses, 4);
        assert_eq!(
            obs.events.as_ref().unwrap().recorded(),
            9,
            "4 misses + 4 faults + batch"
        );
        assert_eq!(obs.windowed.as_ref().unwrap().rows().len(), 2);
    }

    #[test]
    fn layers_default_off() {
        let obs = RunObserver::new(Recorder::new());
        assert!(obs.events.is_none());
        assert!(obs.windowed.is_none());
    }
}
