//! One metrics schema for every producer.
//!
//! [`run_registry`] converts a finished run — the [`Costs`] tally plus an
//! optional [`Recorder`] — into a [`MetricsRegistry`] under stable
//! `atp_*` metric names, so the CLI, the sweep driver, the multicore
//! extension, and the bench harness all export the same vocabulary and a
//! single downstream consumer (CI artifact checks, figure scripts) can
//! read any of them.

use crate::metrics::{Histogram, MetricsRegistry};
use atp_memmgmt::{latency_classes, LatencyClass, Recorder};
use atp_types::{CostModel, Costs};

/// Stable label names for a latency class.
fn class_label(class: LatencyClass) -> &'static str {
    match class {
        LatencyClass::Free => "free",
        LatencyClass::Epsilon => "epsilon",
        LatencyClass::OneIo => "one_io",
        LatencyClass::AmplifiedIo => "amplified_io",
    }
}

/// Appends the core cost metrics for one run to `reg` under `labels`.
pub fn costs_into(
    reg: &mut MetricsRegistry,
    labels: &[(&str, &str)],
    costs: &Costs,
    model: CostModel,
) {
    reg.counter("atp_accesses", "requests serviced", labels, costs.accesses);
    reg.counter("atp_ios", "page fetches from storage", labels, costs.ios);
    reg.counter("atp_tlb_hits", "TLB probe hits", labels, costs.tlb_hits);
    reg.counter(
        "atp_tlb_misses",
        "TLB probe misses",
        labels,
        costs.tlb_misses,
    );
    reg.counter(
        "atp_decode_misses",
        "decoding misses",
        labels,
        costs.decode_misses,
    );
    reg.counter(
        "atp_paging_failures",
        "requests hitting the failure set F",
        labels,
        costs.paging_failures,
    );
    reg.gauge(
        "atp_tlb_miss_rate",
        "TLB misses per access",
        labels,
        costs.tlb_miss_rate(),
    );
    reg.gauge(
        "atp_cost_total",
        "model cost C = C_IO + C_TLB + C_D",
        labels,
        costs.total(model),
    );
    reg.gauge("atp_cost_io", "C_IO component", labels, costs.io_cost());
    reg.gauge(
        "atp_cost_tlb",
        "C_TLB component",
        labels,
        costs.tlb_cost(model),
    );
    reg.gauge(
        "atp_cost_decode",
        "C_D component",
        labels,
        costs.decode_cost(model),
    );
}

/// Appends the recorder's stage counters and histograms to `reg`.
pub fn recorder_into(reg: &mut MetricsRegistry, labels: &[(&str, &str)], rec: &Recorder) {
    let c = rec.counters();
    reg.counter(
        "atp_stage_tlb_fills",
        "translations installed",
        labels,
        c.tlb_fills,
    );
    reg.counter(
        "atp_stage_tlb_shootdowns",
        "translations invalidated by residency loss",
        labels,
        c.tlb_shootdowns,
    );
    reg.counter(
        "atp_stage_residency_hits",
        "accesses serviced without IO",
        labels,
        c.residency_hits,
    );
    reg.counter(
        "atp_stage_faults",
        "accesses that performed IO",
        labels,
        c.faults,
    );
    reg.counter(
        "atp_stage_evictions",
        "residency evictions",
        labels,
        c.evictions,
    );
    reg.counter(
        "atp_stage_evicted_pages",
        "base pages dropped by evictions",
        labels,
        c.evicted_pages,
    );
    reg.counter(
        "atp_stage_batches",
        "batch boundaries seen",
        labels,
        c.batches,
    );
    for class in latency_classes() {
        let mut with_class: Vec<(&str, &str)> = labels.to_vec();
        with_class.push(("class", class_label(class)));
        reg.counter(
            "atp_latency_class",
            "accesses per latency class (free/epsilon/one_io/amplified_io)",
            &with_class,
            rec.latency_class(class),
        );
    }
    reg.counter(
        "atp_reuse_cold",
        "first-ever page touches",
        labels,
        rec.cold_accesses(),
    );
    if rec.tracks_reuse() {
        reg.histogram(
            "atp_reuse_distance",
            "log2-bucketed reuse distances (sum is midpoint-estimated)",
            labels,
            Histogram::from_log2_buckets(rec.reuse_histogram()),
        );
    }
}

/// Builds the full registry for one run: meta context, cost metrics, and —
/// when a recorder was attached — stage counters and histograms.
pub fn run_registry(
    manager: &str,
    workload: &str,
    costs: &Costs,
    model: CostModel,
    recorder: Option<&Recorder>,
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.set_meta("manager", manager);
    reg.set_meta("workload", workload);
    reg.set_meta("epsilon", &format!("{}", model.epsilon));
    let labels = [("manager", manager), ("workload", workload)];
    costs_into(&mut reg, &labels, costs, model);
    if let Some(rec) = recorder {
        recorder_into(&mut reg, &labels, rec);
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use atp_memmgmt::{AccessReport, SimObserver, TlbEvent};
    use atp_types::VirtPage;

    fn sample_costs() -> Costs {
        Costs {
            ios: 10,
            tlb_misses: 5,
            decode_misses: 1,
            paging_failures: 0,
            accesses: 100,
            tlb_hits: 95,
        }
    }

    #[test]
    fn registry_covers_costs_and_recorder() {
        let mut rec = Recorder::new();
        rec.on_tlb_event(TlbEvent::Fill);
        rec.on_access(
            VirtPage(1),
            AccessReport {
                tlb_miss: true,
                ios: 2,
                decode_miss: false,
                paging_failure: false,
            },
        );
        rec.on_access(
            VirtPage(1),
            AccessReport {
                tlb_miss: false,
                ios: 0,
                decode_miss: false,
                paging_failure: false,
            },
        );
        let reg = run_registry(
            "classic h=64",
            "zipf",
            &sample_costs(),
            CostModel::new(0.01),
            Some(&rec),
        );
        let doc = parse(&reg.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("meta").unwrap().get("workload").unwrap().as_str(),
            Some("zipf")
        );
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        let find = |name: &str| {
            metrics
                .iter()
                .find(|m| m.get("name").unwrap().as_str() == Some(name))
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(find("atp_ios").get("value").unwrap().as_f64(), Some(10.0));
        assert_eq!(
            find("atp_tlb_miss_rate").get("value").unwrap().as_f64(),
            Some(0.05)
        );
        assert_eq!(
            find("atp_stage_tlb_fills").get("value").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            find("atp_reuse_distance").get("count").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            find("atp_latency_class")
                .get("labels")
                .unwrap()
                .get("class")
                .unwrap()
                .as_str(),
            Some("free")
        );
    }

    #[test]
    fn reuse_histogram_skipped_without_tracking() {
        let rec = Recorder::without_reuse_tracking();
        let reg = run_registry("m", "w", &sample_costs(), CostModel::new(0.01), Some(&rec));
        assert!(!reg.to_json().contains("atp_reuse_distance"));
        assert!(reg.to_json().contains("atp_reuse_cold"));
    }

    #[test]
    fn costs_only_registry_renders_everywhere() {
        let reg = run_registry("m", "w", &sample_costs(), CostModel::new(0.5), None);
        parse(&reg.to_json()).unwrap();
        assert!(reg.to_csv().contains("atp_cost_total,gauge,"));
        assert!(reg.to_prometheus().contains("atp_cost_total{"));
        // cost = 10 + 0.5*(5+1)
        assert!(reg
            .to_csv()
            .contains("atp_cost_total,gauge,manager=m;workload=w,value,13"));
    }
}
