//! Structured event tracing.
//!
//! [`EventLog`] is a [`SimObserver`] that captures every pipeline event —
//! TLB hit/miss/fill/shootdown, eviction, decode miss, fault, batch
//! boundary — as a logical-clock-stamped [`Event`] in a bounded ring
//! buffer. The clock is the number of *completed* accesses, so all events
//! raised while servicing access `i` carry clock `i`; no wall time is ever
//! recorded and same-seed runs export byte-identical traces.
//!
//! Two exporters: [`EventLog::to_jsonl`] (one JSON object per line, meta
//! header first) and [`EventLog::to_chrome_trace`] (Chrome trace-event
//! JSON, loadable in `chrome://tracing` and Perfetto).

use crate::json::quote;
use atp_memmgmt::{AccessReport, EvictionEvent, SimObserver, TlbEvent};
use atp_types::VirtPage;
use std::collections::VecDeque;

/// One structured pipeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// TLB probe hit.
    TlbHit,
    /// TLB probe miss.
    TlbMiss,
    /// Translation installed after a miss.
    TlbFill,
    /// Translation invalidated by residency loss.
    TlbShootdown,
    /// Residency eviction of a replacement unit.
    Eviction {
        /// Raw key of the evicted unit.
        unit: u64,
        /// Base pages dropped.
        pages: u64,
    },
    /// Decode miss on a resident page.
    DecodeMiss {
        /// The undecodable page.
        page: u64,
    },
    /// An access that performed at least one IO.
    Fault {
        /// The faulting page.
        page: u64,
        /// IOs performed (> 1 under huge-page amplification).
        ios: u64,
    },
    /// A streaming driver finished a chunk.
    BatchBoundary {
        /// Accesses in the chunk.
        len: u64,
    },
}

impl EventKind {
    /// Stable, machine-readable event name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TlbHit => "tlb_hit",
            EventKind::TlbMiss => "tlb_miss",
            EventKind::TlbFill => "tlb_fill",
            EventKind::TlbShootdown => "tlb_shootdown",
            EventKind::Eviction { .. } => "eviction",
            EventKind::DecodeMiss { .. } => "decode_miss",
            EventKind::Fault { .. } => "fault",
            EventKind::BatchBoundary { .. } => "batch_boundary",
        }
    }

    /// Writes the kind-specific payload fields (`,"k":v` pairs) to `out`.
    fn payload_into(&self, out: &mut String) {
        match *self {
            EventKind::Eviction { unit, pages } => {
                out.push_str(&format!(",\"unit\":{unit},\"pages\":{pages}"));
            }
            EventKind::DecodeMiss { page } => out.push_str(&format!(",\"page\":{page}")),
            EventKind::Fault { page, ios } => {
                out.push_str(&format!(",\"page\":{page},\"ios\":{ios}"));
            }
            EventKind::BatchBoundary { len } => out.push_str(&format!(",\"len\":{len}")),
            _ => {}
        }
    }
}

/// A logical-clock-stamped [`EventKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Completed accesses when the event was raised (all events of access
    /// `i` carry clock `i`).
    pub clock: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded structured-event capture.
///
/// Keeps the *most recent* `capacity` events; older ones are dropped and
/// counted in [`EventLog::dropped`], so long runs degrade to a tail window
/// instead of growing without bound.
#[derive(Clone, Debug)]
pub struct EventLog {
    buf: VecDeque<Event>,
    capacity: usize,
    clock: u64,
    recorded: u64,
    dropped: u64,
}

impl EventLog {
    /// Default ring capacity (events, not accesses).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a log keeping the most recent `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog {
            buf: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            clock: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, kind: EventKind) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            clock: self.clock,
            kind,
        });
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events dropped by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Completed accesses observed (the logical clock).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Exports as JSON Lines: a meta header object, then one object per
    /// event. Deterministic (logical clocks only).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 * (self.buf.len() + 1));
        out.push_str(&format!(
            "{{\"schema\":\"atp-events-v1\",\"clock\":{},\"recorded\":{},\"dropped\":{}}}\n",
            self.clock, self.recorded, self.dropped
        ));
        for e in &self.buf {
            out.push_str(&format!(
                "{{\"clock\":{},\"event\":{}",
                e.clock,
                quote(e.kind.name())
            ));
            e.kind.payload_into(&mut out);
            out.push_str("}\n");
        }
        out
    }

    /// Exports as Chrome trace-event JSON (the `traceEvents` object form):
    /// each event becomes a thread-scoped instant (`"ph":"i"`) whose `ts`
    /// is the logical clock in microseconds. Loadable in `chrome://tracing`
    /// and Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(96 * (self.buf.len() + 1));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        out.push_str(&format!(
            "\"schema\":\"atp-trace-events-v1\",\"clock\":{},\"recorded\":{},\"dropped\":{}",
            self.clock, self.recorded, self.dropped
        ));
        out.push_str("},\"traceEvents\":[");
        for (i, e) in self.buf.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"name\":{},\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"t\"",
                quote(e.kind.name()),
                e.clock
            ));
            let mut args = String::new();
            e.kind.payload_into(&mut args);
            if !args.is_empty() {
                // payload_into writes `,"k":v,...`; re-wrap as an args map.
                out.push_str(",\"args\":{");
                out.push_str(&args[1..]);
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(Self::DEFAULT_CAPACITY)
    }
}

impl SimObserver for EventLog {
    fn on_access(&mut self, v: VirtPage, report: AccessReport) {
        if report.ios > 0 {
            self.push(EventKind::Fault {
                page: v.0,
                ios: report.ios,
            });
        }
        self.clock += 1;
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        self.push(match event {
            TlbEvent::Hit => EventKind::TlbHit,
            TlbEvent::Miss => EventKind::TlbMiss,
            TlbEvent::Fill => EventKind::TlbFill,
            TlbEvent::Shootdown => EventKind::TlbShootdown,
        });
    }

    fn on_eviction(&mut self, event: EvictionEvent) {
        self.push(EventKind::Eviction {
            unit: event.unit,
            pages: event.pages,
        });
    }

    fn on_decode_miss(&mut self, v: VirtPage) {
        self.push(EventKind::DecodeMiss { page: v.0 });
    }

    fn on_batch_boundary(&mut self, len: usize) {
        self.push(EventKind::BatchBoundary { len: len as u64 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn fault(ios: u64) -> AccessReport {
        AccessReport {
            tlb_miss: true,
            ios,
            decode_miss: false,
            paging_failure: false,
        }
    }

    #[test]
    fn events_carry_the_access_clock() {
        let mut log = EventLog::new(16);
        log.on_tlb_event(TlbEvent::Miss);
        log.on_access(VirtPage(7), fault(1));
        log.on_tlb_event(TlbEvent::Hit);
        log.on_access(VirtPage(7), fault(0));
        let events: Vec<Event> = log.events().copied().collect();
        assert_eq!(events[0].clock, 0, "first access's miss at clock 0");
        assert_eq!(events[1].kind.name(), "fault");
        assert_eq!(events[1].clock, 0);
        assert_eq!(events[2].clock, 1, "second access's hit at clock 1");
        assert_eq!(log.clock(), 2);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut log = EventLog::new(3);
        for _ in 0..5 {
            log.on_tlb_event(TlbEvent::Hit);
            log.on_access(VirtPage(0), fault(0));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.events().next().unwrap().clock, 2, "oldest two dropped");
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let mut log = EventLog::new(16);
        log.on_tlb_event(TlbEvent::Miss);
        log.on_eviction(EvictionEvent { unit: 9, pages: 64 });
        log.on_decode_miss(VirtPage(3));
        log.on_access(VirtPage(5), fault(2));
        log.on_batch_boundary(4);
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "meta + 5 events");
        for line in &lines {
            parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
        }
        let meta = parse(lines[0]).unwrap();
        assert_eq!(meta.get("schema").unwrap().as_str(), Some("atp-events-v1"));
        let ev = parse(lines[2]).unwrap();
        assert_eq!(ev.get("event").unwrap().as_str(), Some("eviction"));
        assert_eq!(ev.get("pages").unwrap().as_f64(), Some(64.0));
    }

    #[test]
    fn chrome_trace_is_valid_and_structured() {
        let mut log = EventLog::new(16);
        log.on_tlb_event(TlbEvent::Miss);
        log.on_access(VirtPage(5), fault(3));
        log.on_tlb_event(TlbEvent::Hit);
        log.on_access(VirtPage(5), fault(0));
        let doc = parse(&log.to_chrome_trace()).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("i"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("name").unwrap().as_str().is_some());
        }
        let fault_args = events[1].get("args").unwrap();
        assert_eq!(fault_args.get("ios").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }
}
