//! Randomized property tests for the dynamic balls-and-bins game, driven
//! by the in-tree deterministic counter RNG (no external test deps).

use atp_ballsbins::{Game, Rule, Slot, Tier};
use atp_hash::CounterRng;
use std::collections::HashMap;

fn rule_from(rng: &mut CounterRng) -> Rule {
    match rng.next_below(3) {
        0 => Rule::OneChoice,
        1 => Rule::Greedy {
            d: rng.next_below(3) as u32 + 2,
        },
        _ => Rule::Iceberg {
            front_cap: rng.next_below(7) as u32 + 1,
        },
    }
}

#[test]
fn invariants_under_arbitrary_ops() {
    // Load conservation: sum of bin loads == live ball count, front caps
    // are never exceeded, and slots are stable while balls live.
    let mut meta = CounterRng::new(0xB1B5, 1);
    for _ in 0..64 {
        let rule = rule_from(&mut meta);
        let bins = meta.next_below(63) + 1;
        let seed = meta.next_u64();
        let n_ops = meta.next_below(399) as usize + 1;
        let mut game = Game::new(seed, bins, rule);
        let mut live: HashMap<u64, Slot> = HashMap::new();
        for _ in 0..n_ops {
            let ball = meta.next_below(128);
            let insert = meta.next_below(2) == 0;
            if insert && !live.contains_key(&ball) {
                let slot = game.insert(ball);
                assert!(slot.bin < bins);
                if let Rule::Iceberg { front_cap } = rule {
                    if slot.tier == Tier::Front {
                        assert!(game.front_load(slot.bin) <= front_cap);
                    }
                }
                live.insert(ball, slot);
            } else if !insert && live.contains_key(&ball) {
                let expected = live.remove(&ball).unwrap();
                assert_eq!(game.remove(ball), Some(expected));
            }
            // Conservation.
            let total: u32 = (0..bins).map(|b| game.load(b)).sum();
            assert_eq!(total as usize, live.len());
            // Stability of every live ball.
            for (&b, &s) in &live {
                assert_eq!(game.slot_of(b), Some(s));
            }
        }
    }
}

#[test]
fn histogram_consistency() {
    // The histogram always sums to the bin count and weights to the ball
    // count.
    let mut meta = CounterRng::new(0xB1B5, 2);
    for _ in 0..64 {
        let rule = rule_from(&mut meta);
        let bins = meta.next_below(31) + 1;
        let seed = meta.next_u64();
        let balls = meta.next_below(200);
        let mut game = Game::new(seed, bins, rule);
        for b in 0..balls {
            game.insert(b);
        }
        let hist = game.load_histogram();
        assert_eq!(hist.iter().sum::<u64>(), bins);
        let weighted: u64 = hist.iter().enumerate().map(|(l, &c)| l as u64 * c).sum();
        assert_eq!(weighted, balls);
    }
}

#[test]
fn placement_predicts_insert() {
    // placement() is a pure prediction of insert(): calling it twice, then
    // inserting, yields the same slot.
    let mut meta = CounterRng::new(0xB1B5, 3);
    for _ in 0..64 {
        let rule = rule_from(&mut meta);
        let bins = meta.next_below(31) + 1;
        let seed = meta.next_u64();
        let n_balls = meta.next_below(99) as usize + 1;
        let mut game = Game::new(seed, bins, rule);
        for _ in 0..n_balls {
            let b = meta.next_below(1000);
            if game.contains(b) {
                continue;
            }
            let p1 = game.placement(b);
            let p2 = game.placement(b);
            assert_eq!(p1, p2);
            assert_eq!(game.insert(b), p1);
        }
    }
}
