//! Property tests for the dynamic balls-and-bins game, on the `atp-check`
//! harness: generated inputs shrink to minimal counterexamples and every
//! failure prints an `ATP_CHECK_SEED` replay command.

use atp_ballsbins::{Game, Rule, Slot, Tier};
use atp_check::{bools, check, ensure, ensure_eq, from_fn, u64s, vecs, CounterRng, Gen};
use std::collections::HashMap;

/// Generates a placement rule; shrinks toward `OneChoice` and minimal
/// parameters.
fn rules() -> impl Gen<Value = Rule> {
    from_fn(
        |rng: &mut CounterRng| match rng.next_below(3) {
            0 => Rule::OneChoice,
            1 => Rule::Greedy {
                d: rng.next_below(3) as u32 + 2,
            },
            _ => Rule::Iceberg {
                front_cap: rng.next_below(7) as u32 + 1,
            },
        },
        |r: &Rule| match *r {
            Rule::OneChoice => vec![],
            Rule::Greedy { d } if d > 2 => vec![Rule::OneChoice, Rule::Greedy { d: 2 }],
            Rule::Greedy { .. } => vec![Rule::OneChoice],
            Rule::Iceberg { front_cap } if front_cap > 1 => {
                vec![Rule::OneChoice, Rule::Iceberg { front_cap: 1 }]
            }
            Rule::Iceberg { .. } => vec![Rule::OneChoice],
        },
    )
}

#[test]
fn invariants_under_arbitrary_ops() {
    // Load conservation: sum of bin loads == live ball count, front caps
    // are never exceeded, and slots are stable while balls live.
    let gen = (
        u64s(0..=u64::MAX),
        u64s(1..=63),
        rules(),
        vecs((u64s(0..=127), bools()), 1..=400),
    );
    check(
        "invariants_under_arbitrary_ops",
        &gen,
        |(seed, bins, rule, ops)| {
            let mut game = Game::new(*seed, *bins, *rule);
            let mut live: HashMap<u64, Slot> = HashMap::new();
            for &(ball, insert) in ops.iter() {
                if insert && !live.contains_key(&ball) {
                    let slot = game.insert(ball);
                    ensure!(slot.bin < *bins, "slot bin {} out of range", slot.bin);
                    if let Rule::Iceberg { front_cap } = rule {
                        if slot.tier == Tier::Front {
                            ensure!(
                                game.front_load(slot.bin) <= *front_cap,
                                "front cap exceeded at bin {}",
                                slot.bin
                            );
                        }
                    }
                    live.insert(ball, slot);
                } else if !insert && live.contains_key(&ball) {
                    let expected = live.remove(&ball).expect("present");
                    ensure_eq!(game.remove(ball), Some(expected), "remove({ball})");
                }
                // Conservation.
                let total: u32 = (0..*bins).map(|b| game.load(b)).sum();
                ensure_eq!(total as usize, live.len(), "load conservation");
                // Stability of every live ball.
                for (&b, &s) in &live {
                    ensure_eq!(game.slot_of(b), Some(s), "slot of live ball {b} moved");
                }
            }
            Ok(())
        },
    );
}

#[test]
fn histogram_consistency() {
    // The histogram always sums to the bin count and weights to the ball
    // count.
    let gen = (u64s(0..=u64::MAX), u64s(1..=31), rules(), u64s(0..=200));
    check(
        "histogram_consistency",
        &gen,
        |(seed, bins, rule, balls)| {
            let mut game = Game::new(*seed, *bins, *rule);
            for b in 0..*balls {
                game.insert(b);
            }
            let hist = game.load_histogram();
            ensure_eq!(hist.iter().sum::<u64>(), *bins, "histogram bin total");
            let weighted: u64 = hist.iter().enumerate().map(|(l, &c)| l as u64 * c).sum();
            ensure_eq!(weighted, *balls, "histogram weighted total");
            Ok(())
        },
    );
}

#[test]
fn placement_predicts_insert() {
    // placement() is a pure prediction of insert(): calling it twice, then
    // inserting, yields the same slot.
    let gen = (
        u64s(0..=u64::MAX),
        u64s(1..=31),
        rules(),
        vecs(u64s(0..=999), 1..=100),
    );
    check(
        "placement_predicts_insert",
        &gen,
        |(seed, bins, rule, balls)| {
            let mut game = Game::new(*seed, *bins, *rule);
            for &b in balls.iter() {
                if game.contains(b) {
                    continue;
                }
                let p1 = game.placement(b);
                let p2 = game.placement(b);
                ensure_eq!(p1, p2, "placement({b}) not idempotent");
                ensure_eq!(game.insert(b), p1, "insert({b}) disagrees with placement");
            }
            Ok(())
        },
    );
}
