//! Property tests for the dynamic balls-and-bins game.

use atp_ballsbins::{Game, Rule, Tier};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_rule() -> impl Strategy<Value = Rule> {
    prop_oneof![
        Just(Rule::OneChoice),
        (2u32..5).prop_map(|d| Rule::Greedy { d }),
        (1u32..8).prop_map(|front_cap| Rule::Iceberg { front_cap }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Load conservation: sum of bin loads == live ball count, front caps
    /// are never exceeded, and slots are stable while balls live.
    #[test]
    fn invariants_under_arbitrary_ops(
        rule in arb_rule(),
        bins in 1u64..64,
        seed in any::<u64>(),
        ops in prop::collection::vec((0u64..128, prop::bool::ANY), 1..400),
    ) {
        let mut game = Game::new(seed, bins, rule);
        let mut live: HashMap<u64, atp_ballsbins::Slot> = HashMap::new();
        for (ball, insert) in ops {
            if insert && !live.contains_key(&ball) {
                let slot = game.insert(ball);
                prop_assert!(slot.bin < bins);
                if let Rule::Iceberg { front_cap } = rule {
                    if slot.tier == Tier::Front {
                        prop_assert!(game.front_load(slot.bin) <= front_cap);
                    }
                }
                live.insert(ball, slot);
            } else if !insert && live.contains_key(&ball) {
                let expected = live.remove(&ball).unwrap();
                prop_assert_eq!(game.remove(ball), Some(expected));
            }
            // Conservation.
            let total: u32 = (0..bins).map(|b| game.load(b)).sum();
            prop_assert_eq!(total as usize, live.len());
            // Stability of every live ball.
            for (&b, &s) in &live {
                prop_assert_eq!(game.slot_of(b), Some(s));
            }
        }
    }

    /// The histogram always sums to the bin count and weights to the ball
    /// count.
    #[test]
    fn histogram_consistency(
        rule in arb_rule(),
        bins in 1u64..32,
        seed in any::<u64>(),
        balls in 0u64..200,
    ) {
        let mut game = Game::new(seed, bins, rule);
        for b in 0..balls {
            game.insert(b);
        }
        let hist = game.load_histogram();
        prop_assert_eq!(hist.iter().sum::<u64>(), bins);
        let weighted: u64 = hist.iter().enumerate().map(|(l, &c)| l as u64 * c).sum();
        prop_assert_eq!(weighted, balls);
    }

    /// placement() is a pure prediction of insert(): calling it twice, then
    /// inserting, yields the same slot.
    #[test]
    fn placement_predicts_insert(
        rule in arb_rule(),
        bins in 1u64..32,
        seed in any::<u64>(),
        balls in prop::collection::vec(0u64..1000, 1..100),
    ) {
        let mut game = Game::new(seed, bins, rule);
        for b in balls {
            if game.contains(b) {
                continue;
            }
            let p1 = game.placement(b);
            let p2 = game.placement(b);
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(game.insert(b), p1);
        }
    }
}
