//! The dynamic balls-and-bins game state.

use crate::rule::Rule;
use crate::stats::GameStats;
use atp_hash::{FxHashMap, PageHasher};
use atp_types::VirtPage;

/// Which tier of a bin a ball occupies (only Iceberg distinguishes tiers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Placed via `h₁` into the front of its bin.
    Front,
    /// Placed via Greedy\[2\] (`h₂`/`h₃`) into the back of a bin.
    Back,
}

/// Where a ball landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Bin index in `[0, n)`.
    pub bin: u64,
    /// Front or back tier.
    pub tier: Tier,
    /// Which hash function produced the bin (0-based).
    pub hash_index: u32,
}

/// A dynamic balls-and-bins game: `n` bins, one placement rule, seeded hashes.
///
/// Balls are arbitrary `u64` ids. The game is *stable*: a present ball's slot
/// never changes. Re-inserting an id after deletion re-hashes to the same
/// choices (the hash family is a pure function of the id), but the chosen bin
/// may differ because loads have changed — exactly as in the paper's model.
///
/// ```
/// use atp_ballsbins::{Game, Rule};
///
/// let mut game = Game::new(7, 1024, Rule::Iceberg { front_cap: 6 });
/// for ball in 0..4096 {
///     game.insert(ball);
/// }
/// // λ = 4: Theorem 2 keeps the max load near λ + log log n.
/// assert!(game.max_load() <= 6 + 4);
/// game.remove(0);
/// assert_eq!(game.len(), 4095);
/// ```
#[derive(Clone, Debug)]
pub struct Game {
    rule: Rule,
    hasher: PageHasher,
    front_load: Vec<u32>,
    back_load: Vec<u32>,
    balls: FxHashMap<u64, Slot>,
    stats: GameStats,
    /// Fault injection for the `atp-check` shrinker meta-test: break
    /// Greedy\[d\] ties toward the *last* choice instead of the first.
    greedy_tie_break_last: bool,
}

impl Game {
    /// Creates a game with `bins` bins under `rule`, seeding the hash family.
    ///
    /// # Panics
    /// Panics if `bins == 0`, or if the rule is `Greedy{d}` with `d < 2`.
    pub fn new(seed: u64, bins: u64, rule: Rule) -> Self {
        assert!(bins > 0, "bins must be nonzero");
        if let Rule::Greedy { d } = rule {
            assert!(d >= 2, "Greedy[d] requires d >= 2");
        }
        Self {
            rule,
            hasher: PageHasher::new(seed, bins, rule.hash_count()),
            front_load: vec![0; bins as usize],
            back_load: vec![0; bins as usize],
            balls: FxHashMap::default(),
            stats: GameStats::default(),
            greedy_tie_break_last: false,
        }
    }

    /// Test-only fault injection: when enabled, Greedy\[d\] breaks load
    /// ties toward the **last** choice, violating the documented
    /// ties-toward-first rule. Exists so the `atp-check` harness can
    /// demonstrate that its differential oracle catches the bug and its
    /// shrinker minimizes the trigger; never enable it outside tests.
    #[doc(hidden)]
    pub fn inject_greedy_tie_break_bug(&mut self, enabled: bool) {
        self.greedy_tie_break_last = enabled;
    }

    /// Number of bins `n`.
    #[inline]
    pub fn bins(&self) -> u64 {
        self.front_load.len() as u64
    }

    /// Number of balls currently present.
    #[inline]
    pub fn len(&self) -> usize {
        self.balls.len()
    }

    /// Whether no balls are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.balls.is_empty()
    }

    /// The placement rule in use.
    #[inline]
    pub fn rule(&self) -> Rule {
        self.rule
    }

    /// Total load (front + back) of bin `b`.
    #[inline]
    pub fn load(&self, b: u64) -> u32 {
        self.front_load[b as usize] + self.back_load[b as usize]
    }

    /// Front-tier load of bin `b`.
    #[inline]
    pub fn front_load(&self, b: u64) -> u32 {
        self.front_load[b as usize]
    }

    /// Back-tier load of bin `b`.
    #[inline]
    pub fn back_load(&self, b: u64) -> u32 {
        self.back_load[b as usize]
    }

    /// Current maximum total load across bins.
    pub fn max_load(&self) -> u32 {
        (0..self.bins()).map(|b| self.load(b)).max().unwrap_or(0)
    }

    /// Current maximum back-tier load (the Greedy\[2\] contribution in
    /// Iceberg; equals `max_load` for non-Iceberg rules... except OneChoice
    /// and Greedy store everything in the back tier).
    pub fn max_back_load(&self) -> u32 {
        self.back_load.iter().copied().max().unwrap_or(0)
    }

    /// The slot of a present ball.
    #[inline]
    pub fn slot_of(&self, ball: u64) -> Option<Slot> {
        self.balls.get(&ball).copied()
    }

    /// Whether `ball` is present.
    #[inline]
    pub fn contains(&self, ball: u64) -> bool {
        self.balls.contains_key(&ball)
    }

    /// Cumulative statistics.
    #[inline]
    pub fn stats(&self) -> &GameStats {
        &self.stats
    }

    /// Where `ball` *would* be placed right now, without inserting it.
    ///
    /// This is the entire placement rule; [`Game::insert`] applies it.
    pub fn placement(&self, ball: u64) -> Slot {
        let v = VirtPage(ball);
        match self.rule {
            Rule::OneChoice => Slot {
                bin: self.hasher.bin(v, 0),
                tier: Tier::Back,
                hash_index: 0,
            },
            Rule::Greedy { d } => {
                let mut best_bin = self.hasher.bin(v, 0);
                let mut best_idx = 0u32;
                let mut best_load = self.load(best_bin);
                for i in 1..d {
                    let b = self.hasher.bin(v, i);
                    let l = self.load(b);
                    if l < best_load || (self.greedy_tie_break_last && l == best_load) {
                        best_bin = b;
                        best_idx = i;
                        best_load = l;
                    }
                }
                Slot {
                    bin: best_bin,
                    tier: Tier::Back,
                    hash_index: best_idx,
                }
            }
            Rule::Iceberg { front_cap } => {
                let b1 = self.hasher.bin(v, 0);
                if self.front_load[b1 as usize] < front_cap {
                    return Slot {
                        bin: b1,
                        tier: Tier::Front,
                        hash_index: 0,
                    };
                }
                // Overflow: Greedy[2] on h2, h3, comparing back loads only
                // (footnote 4: the two tiers ignore each other).
                let b2 = self.hasher.bin(v, 1);
                let b3 = self.hasher.bin(v, 2);
                if self.back_load[b2 as usize] <= self.back_load[b3 as usize] {
                    Slot {
                        bin: b2,
                        tier: Tier::Back,
                        hash_index: 1,
                    }
                } else {
                    Slot {
                        bin: b3,
                        tier: Tier::Back,
                        hash_index: 2,
                    }
                }
            }
        }
    }

    /// Inserts `ball`, returning its slot.
    ///
    /// # Panics
    /// Panics if `ball` is already present (the adversary may delete and
    /// re-insert, but never double-insert).
    pub fn insert(&mut self, ball: u64) -> Slot {
        assert!(
            !self.balls.contains_key(&ball),
            "ball {ball} double-inserted"
        );
        let slot = self.placement(ball);
        match slot.tier {
            Tier::Front => self.front_load[slot.bin as usize] += 1,
            Tier::Back => self.back_load[slot.bin as usize] += 1,
        }
        self.balls.insert(ball, slot);
        self.stats.inserts += 1;
        let load = self.load(slot.bin);
        if load > self.stats.max_load_ever {
            self.stats.max_load_ever = load;
        }
        slot
    }

    /// Removes `ball` if present, returning the slot it occupied.
    pub fn remove(&mut self, ball: u64) -> Option<Slot> {
        let slot = self.balls.remove(&ball)?;
        match slot.tier {
            Tier::Front => self.front_load[slot.bin as usize] -= 1,
            Tier::Back => self.back_load[slot.bin as usize] -= 1,
        }
        self.stats.deletes += 1;
        Some(slot)
    }

    /// Load histogram: `hist[l]` = number of bins with total load `l`.
    pub fn load_histogram(&self) -> Vec<u64> {
        let max = self.max_load() as usize;
        let mut hist = vec![0u64; max + 1];
        for b in 0..self.bins() {
            hist[self.load(b) as usize] += 1;
        }
        hist
    }

    /// Average load `λ = balls / bins`.
    pub fn average_load(&self) -> f64 {
        self.len() as f64 / self.bins() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = Game::new(1, 16, Rule::OneChoice);
        let s = g.insert(42);
        assert!(g.contains(42));
        assert_eq!(g.slot_of(42), Some(s));
        assert_eq!(g.load(s.bin), 1);
        assert_eq!(g.remove(42), Some(s));
        assert!(!g.contains(42));
        assert_eq!(g.load(s.bin), 0);
        assert_eq!(g.remove(42), None);
    }

    #[test]
    #[should_panic(expected = "double-inserted")]
    fn double_insert_panics() {
        let mut g = Game::new(1, 16, Rule::OneChoice);
        g.insert(1);
        g.insert(1);
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn greedy_one_rejected() {
        Game::new(1, 16, Rule::Greedy { d: 1 });
    }

    #[test]
    fn one_choice_is_deterministic_per_id() {
        let mut g = Game::new(7, 64, Rule::OneChoice);
        let s1 = g.insert(99);
        g.remove(99);
        let s2 = g.insert(99);
        assert_eq!(s1.bin, s2.bin, "one-choice must re-hash identically");
    }

    #[test]
    fn greedy_picks_less_loaded() {
        let mut g = Game::new(3, 8, Rule::Greedy { d: 2 });
        // Insert many balls; on every placement the chosen bin must not be
        // more loaded than the alternative at decision time. We verify via
        // the invariant: chosen load (pre-insert) <= other choice's load.
        for ball in 0..200u64 {
            let pre = g.placement(ball);
            let choices: Vec<u64> = (0..2).map(|i| g.hasher.bin(VirtPage(ball), i)).collect();
            let chosen_load = g.load(pre.bin);
            for &c in &choices {
                assert!(chosen_load <= g.load(c));
            }
            g.insert(ball);
        }
    }

    #[test]
    fn iceberg_respects_front_cap() {
        let cap = 3;
        let mut g = Game::new(5, 4, Rule::Iceberg { front_cap: cap });
        for ball in 0..400u64 {
            g.insert(ball);
        }
        for b in 0..g.bins() {
            assert!(g.front_load(b) <= cap, "front load exceeded cap");
        }
        // With 400 balls in 4 bins and cap 3, most balls must be in back tiers.
        let back_total: u32 = (0..g.bins()).map(|b| g.back_load(b)).sum();
        assert!(back_total >= 400 - 4 * cap);
    }

    #[test]
    fn iceberg_prefers_front_until_cap() {
        let mut g = Game::new(5, 1024, Rule::Iceberg { front_cap: 8 });
        // With many bins and few balls, everything lands in the front tier.
        for ball in 0..100u64 {
            let s = g.insert(ball);
            assert_eq!(s.tier, Tier::Front);
            assert_eq!(s.hash_index, 0);
        }
    }

    #[test]
    fn loads_are_conserved() {
        let mut g = Game::new(11, 32, Rule::Iceberg { front_cap: 4 });
        for ball in 0..500u64 {
            g.insert(ball);
        }
        for ball in (0..500u64).step_by(2) {
            g.remove(ball);
        }
        let total: u32 = (0..g.bins()).map(|b| g.load(b)).sum();
        assert_eq!(total as usize, g.len());
        assert_eq!(g.len(), 250);
    }

    #[test]
    fn histogram_sums_to_bins() {
        let mut g = Game::new(2, 50, Rule::Greedy { d: 2 });
        for ball in 0..300u64 {
            g.insert(ball);
        }
        let hist = g.load_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 50);
        // Weighted sum equals ball count.
        let weighted: u64 = hist.iter().enumerate().map(|(l, &c)| l as u64 * c).sum();
        assert_eq!(weighted, 300);
    }

    #[test]
    fn stability_under_churn() {
        // A present ball's slot must never change while other balls come and go.
        let mut g = Game::new(13, 16, Rule::Iceberg { front_cap: 4 });
        g.insert(1000);
        let pinned = g.slot_of(1000).unwrap();
        for ball in 0..200u64 {
            g.insert(ball);
            if ball % 3 == 0 {
                g.remove(ball / 3);
            }
            assert_eq!(g.slot_of(1000), Some(pinned));
        }
    }

    #[test]
    fn max_load_tracks_peak() {
        let mut g = Game::new(1, 4, Rule::OneChoice);
        for ball in 0..64u64 {
            g.insert(ball);
        }
        let peak = g.stats().max_load_ever;
        assert_eq!(peak, g.max_load(), "peak equals current before any delete");
        for ball in 0..64u64 {
            g.remove(ball);
        }
        assert_eq!(g.stats().max_load_ever, peak, "peak survives deletions");
        assert_eq!(g.max_load(), 0);
    }

    #[test]
    fn greedy_beats_one_choice_on_max_load() {
        // Classic power-of-two-choices separation, m = n balls.
        let n = 4096u64;
        let mut one = Game::new(42, n, Rule::OneChoice);
        let mut two = Game::new(42, n, Rule::Greedy { d: 2 });
        for ball in 0..n {
            one.insert(ball);
            two.insert(ball);
        }
        assert!(
            two.max_load() < one.max_load(),
            "greedy {} !< one-choice {}",
            two.max_load(),
            one.max_load()
        );
    }
}
