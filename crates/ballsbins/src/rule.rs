//! Placement rules.

/// A balls-and-bins placement rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `k = 1`: the ball goes to its single hashed bin.
    OneChoice,
    /// Greedy\[d\]: `d ≥ 2` hashed choices, the least-loaded bin wins
    /// (ties broken toward the first choice).
    Greedy {
        /// Number of choices `d ≥ 2`.
        d: u32,
    },
    /// Iceberg\[2\]: `h₁` front bin with a load cap, overflow via Greedy\[2\]
    /// on `h₂, h₃` over back loads only.
    Iceberg {
        /// Front-bin load cap, the `(1+o(1))λ` threshold of Theorem 2.
        front_cap: u32,
    },
}

impl Rule {
    /// Number of hash functions the rule consumes.
    pub const fn hash_count(self) -> u32 {
        match self {
            Rule::OneChoice => 1,
            Rule::Greedy { d } => d,
            Rule::Iceberg { .. } => 3,
        }
    }

    /// Short human-readable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Rule::OneChoice => "one-choice",
            Rule::Greedy { .. } => "greedy",
            Rule::Iceberg { .. } => "iceberg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_counts() {
        assert_eq!(Rule::OneChoice.hash_count(), 1);
        assert_eq!(Rule::Greedy { d: 2 }.hash_count(), 2);
        assert_eq!(Rule::Greedy { d: 5 }.hash_count(), 5);
        assert_eq!(Rule::Iceberg { front_cap: 10 }.hash_count(), 3);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Rule::OneChoice.name(), "one-choice");
        assert_eq!(Rule::Greedy { d: 2 }.name(), "greedy");
        assert_eq!(Rule::Iceberg { front_cap: 1 }.name(), "iceberg");
    }
}
