//! Oblivious adversaries: request sequences for the dynamic game.
//!
//! The paper's adversary specifies an arbitrary sequence of insertions and
//! deletions with at most `m` balls present, and is *oblivious* — the
//! sequence is fixed before the game's random bits are drawn. Each adversary
//! here is seeded independently of the game, so obliviousness holds by
//! construction.

use crate::game::Game;
use atp_hash::CounterRng;
use std::collections::VecDeque;

/// One operation in an adversarial sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert the ball with this id.
    Insert(u64),
    /// Delete the ball with this id (guaranteed present).
    Delete(u64),
}

/// Steady-state churn: fill to `m` balls, then forever delete a uniformly
/// random present ball and insert a fresh id.
///
/// This is the harshest natural oblivious pattern for *stable* placement
/// rules: bins that got unlucky stay unlucky because balls never move.
#[derive(Clone, Debug)]
pub struct ChurnAdversary {
    rng: CounterRng,
    present: Vec<u64>,
    next_id: u64,
    m: usize,
}

impl ChurnAdversary {
    /// Creates a churn adversary maintaining `m` balls.
    pub fn new(seed: u64, m: usize) -> Self {
        Self {
            rng: CounterRng::new(seed, 0xC4A2),
            present: Vec::with_capacity(m),
            next_id: 0,
            m,
        }
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.present.len() < self.m {
            let id = self.next_id;
            self.next_id += 1;
            self.present.push(id);
            Op::Insert(id)
        } else {
            let victim_idx = self.rng.next_below(self.present.len() as u64) as usize;
            let victim = self.present.swap_remove(victim_idx);
            Op::Delete(victim)
        }
    }

    /// Number of balls the adversary believes are present.
    pub fn live(&self) -> usize {
        self.present.len()
    }
}

/// Sliding-window (FIFO) churn: after filling to `m` balls, every insertion
/// is preceded by deleting the *oldest* ball. Models an LRU-like active set
/// drifting through the address space — the RAM-replacement pattern most
/// relevant to the paper's application.
#[derive(Clone, Debug)]
pub struct SlidingWindowAdversary {
    window: VecDeque<u64>,
    next_id: u64,
    m: usize,
}

impl SlidingWindowAdversary {
    /// Creates a sliding-window adversary with window size `m`.
    pub fn new(m: usize) -> Self {
        Self {
            window: VecDeque::with_capacity(m),
            next_id: 0,
            m,
        }
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.window.len() < self.m {
            let id = self.next_id;
            self.next_id += 1;
            self.window.push_back(id);
            Op::Insert(id)
        } else {
            // atp-lint: allow(unwrap-policy, reason = "invariant: the window is refilled before each pop, so it cannot be empty here")
            let victim = self.window.pop_front().expect("window nonempty");
            Op::Delete(victim)
        }
    }
}

/// Re-insertion churn: like [`ChurnAdversary`] but draws new ids from a
/// bounded universe, so deleted ids return later. Exercises the fact that
/// re-inserted balls re-hash to the same choices but may land differently.
#[derive(Clone, Debug)]
pub struct ReinsertAdversary {
    rng: CounterRng,
    present: Vec<u64>,
    absent: Vec<u64>,
    m: usize,
}

impl ReinsertAdversary {
    /// Creates the adversary over a universe of `universe` ids, maintaining
    /// `m <= universe` balls.
    ///
    /// # Panics
    /// Panics if `m > universe`.
    pub fn new(seed: u64, universe: u64, m: usize) -> Self {
        assert!(m as u64 <= universe, "m must be <= universe");
        Self {
            rng: CounterRng::new(seed, 0x8E1A),
            present: Vec::with_capacity(m),
            absent: (0..universe).collect(),
            m,
        }
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.present.len() < self.m {
            let idx = self.rng.next_below(self.absent.len() as u64) as usize;
            let id = self.absent.swap_remove(idx);
            self.present.push(id);
            Op::Insert(id)
        } else {
            let idx = self.rng.next_below(self.present.len() as u64) as usize;
            let id = self.present.swap_remove(idx);
            self.absent.push(id);
            Op::Delete(id)
        }
    }
}

/// Applies `ops` operations from an adversary closure to a game.
pub fn drive(game: &mut Game, ops: u64, mut next: impl FnMut() -> Op) {
    for _ in 0..ops {
        match next() {
            Op::Insert(id) => {
                game.insert(id);
            }
            Op::Delete(id) => {
                // atp-lint: allow(unwrap-policy, reason = "invariant: the adversary only removes ids it previously inserted")
                game.remove(id).expect("adversary deleted an absent ball");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;

    #[test]
    fn churn_maintains_m_balls() {
        let mut adv = ChurnAdversary::new(1, 100);
        let mut game = Game::new(2, 10, Rule::OneChoice);
        drive(&mut game, 1000, || adv.next_op());
        // After warmup, population alternates between m-1 and m.
        assert!(game.len() >= 99 && game.len() <= 100, "len={}", game.len());
    }

    #[test]
    fn sliding_window_is_fifo() {
        let mut adv = SlidingWindowAdversary::new(3);
        let ops: Vec<Op> = (0..8).map(|_| adv.next_op()).collect();
        assert_eq!(
            ops,
            vec![
                Op::Insert(0),
                Op::Insert(1),
                Op::Insert(2),
                Op::Delete(0),
                Op::Insert(3),
                Op::Delete(1),
                Op::Insert(4),
                Op::Delete(2),
            ]
        );
    }

    #[test]
    fn reinsert_stays_within_universe() {
        let mut adv = ReinsertAdversary::new(3, 50, 20);
        let mut game = Game::new(4, 8, Rule::Greedy { d: 2 });
        for _ in 0..2000 {
            match adv.next_op() {
                Op::Insert(id) => {
                    assert!(id < 50);
                    game.insert(id);
                }
                Op::Delete(id) => {
                    game.remove(id).expect("present");
                }
            }
        }
        assert!(game.len() <= 20);
    }

    #[test]
    #[should_panic(expected = "m must be <= universe")]
    fn reinsert_rejects_oversized_m() {
        ReinsertAdversary::new(0, 10, 11);
    }

    #[test]
    fn adversaries_are_oblivious_to_game_seed() {
        // The op sequence must be identical regardless of the game's seed.
        let mut a1 = ChurnAdversary::new(7, 50);
        let mut a2 = ChurnAdversary::new(7, 50);
        for _ in 0..500 {
            assert_eq!(a1.next_op(), a2.next_op());
        }
    }

    #[test]
    fn drive_applies_all_ops() {
        let mut adv = SlidingWindowAdversary::new(10);
        let mut game = Game::new(5, 4, Rule::Iceberg { front_cap: 4 });
        drive(&mut game, 100, || adv.next_op());
        assert_eq!(game.stats().inserts + game.stats().deletes, 100);
        assert_eq!(game.len(), 10);
    }
}
