//! Dynamic balls-and-bins games (Section 4 of the paper).
//!
//! The paper models RAM-allocation schemes as *dynamic* balls-and-bins games:
//! `n` bins, an oblivious adversary issuing an arbitrary sequence of ball
//! insertions and deletions (never more than `m` balls present), and a
//! placement rule that on each insertion picks one of `k` hashed bin choices.
//! The goal is to minimize the maximum bin load.
//!
//! Placement rules implemented here:
//!
//! * [`Rule::OneChoice`] — `k = 1`: ball goes to its single hashed bin.
//!   Max load `λ + O(√(λ log n))` for `λ = ω(log n)` (eq. 5, third case).
//! * [`Rule::Greedy`] — Greedy\[d\]: `d` choices, least-loaded wins.
//!   Max load `O(λ) + log log n + O(1)` (eq. 6) — the `O(λ)` (rather than
//!   `(1+o(1))λ`) term is exactly why the paper needs Iceberg.
//! * [`Rule::Iceberg`] — Iceberg\[2\] ([34], Theorem 2): three hash
//!   functions; a ball first tries its `h₁` bin, which accepts it as long as
//!   its *front* load is below a cap of `(1+o(1))λ`; overflow balls are
//!   placed by Greedy\[2\] on `h₂,h₃` counting only *back* loads. Max load
//!   `(1+o(1))λ + log log n + O(1)` whp — online, stable, dynamic.
//!
//! Front and back loads are tracked separately, per the paper's footnote 4
//! ("insertions performed using h₁ ignore all balls that were inserted using
//! h₂ and h₃, and vice versa").
//!
//! The game is **online** (placements never look ahead) and **stable** (a
//! ball's bin never changes while it is present) — both properties are
//! required for a huge-page decoupling scheme and are asserted by tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod game;
pub mod rule;
pub mod stats;
pub mod tenancy;

pub use game::{Game, Slot, Tier};
pub use rule::Rule;
pub use stats::{GameStats, LoadSnapshot};
pub use tenancy::TenantGame;
