//! Game statistics and load snapshots.

/// Cumulative statistics for a game.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GameStats {
    /// Number of insertions performed.
    pub inserts: u64,
    /// Number of deletions performed.
    pub deletes: u64,
    /// Highest total bin load ever observed (at any insertion).
    pub max_load_ever: u32,
}

/// A point-in-time summary of bin loads, for reporting max-load experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSnapshot {
    /// Number of balls present.
    pub balls: u64,
    /// Number of bins.
    pub bins: u64,
    /// Average load λ = balls / bins.
    pub average: f64,
    /// Maximum total bin load.
    pub max: u32,
    /// 99th-percentile bin load.
    pub p99: u32,
    /// `max − λ`: the overhead above average that the theory bounds.
    pub overhead: f64,
}

impl LoadSnapshot {
    /// Builds a snapshot from a game.
    pub fn of(game: &crate::game::Game) -> Self {
        let hist = game.load_histogram();
        let bins = game.bins();
        let balls = game.len() as u64;
        let average = game.average_load();
        let max = (hist.len() - 1) as u32;

        // p99 from the histogram: smallest load l such that at least 99% of
        // bins have load <= l.
        let threshold = (bins as f64 * 0.99).ceil() as u64;
        let mut cum = 0u64;
        let mut p99 = 0u32;
        for (l, &c) in hist.iter().enumerate() {
            cum += c;
            if cum >= threshold {
                p99 = l as u32;
                break;
            }
        }

        Self {
            balls,
            bins,
            average,
            max,
            p99,
            overhead: max as f64 - average,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Game;
    use crate::rule::Rule;

    #[test]
    fn snapshot_of_empty_game() {
        let g = Game::new(0, 10, Rule::OneChoice);
        let s = LoadSnapshot::of(&g);
        assert_eq!(s.balls, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.average, 0.0);
    }

    #[test]
    fn snapshot_counts_match() {
        let mut g = Game::new(3, 8, Rule::Greedy { d: 2 });
        for b in 0..80u64 {
            g.insert(b);
        }
        let s = LoadSnapshot::of(&g);
        assert_eq!(s.balls, 80);
        assert_eq!(s.bins, 8);
        assert_eq!(s.average, 10.0);
        assert!(s.max >= 10); // max >= average always
        assert!(s.p99 <= s.max);
        assert!((s.overhead - (s.max as f64 - 10.0)).abs() < 1e-9);
    }

    #[test]
    fn p99_is_max_for_uniform_loads() {
        // A perfectly balanced game: p99 == max.
        let mut g = Game::new(1, 1, Rule::OneChoice);
        for b in 0..5u64 {
            g.insert(b);
        }
        let s = LoadSnapshot::of(&g);
        assert_eq!(s.p99, 5);
        assert_eq!(s.max, 5);
    }
}
