//! Per-tenant ball accounting over one shared game.
//!
//! In the multi-tenant regime every tenant throws balls (pages) into the
//! *same* `n` bins — one physical pool — so the load bounds of Section 4
//! apply to the aggregate stream, not to any one tenant. [`TenantGame`]
//! qualifies ball ids by tenant (an injective `asid · span + ball`
//! embedding, like the shared-pool allocator's) and tracks per-tenant
//! ball counts, letting experiments ask how much of the max load a
//! single aggressive tenant is responsible for.

use crate::game::{Game, Slot};
use atp_hash::{FxHashMap, FxHashSet};
use atp_types::Asid;

/// A multi-tenant wrapper over one [`Game`].
#[derive(Debug)]
pub struct TenantGame {
    game: Game,
    /// Ball-id span per tenant; per-tenant ball ids must stay below it.
    span: u64,
    /// Per-tenant live balls (per-tenant ids), for retirement.
    balls: FxHashMap<u32, FxHashSet<u64>>,
}

impl TenantGame {
    /// Wraps `game`, giving each tenant `span` ball ids.
    ///
    /// # Panics
    /// Panics if `span == 0`.
    pub fn new(game: Game, span: u64) -> Self {
        assert!(span > 0, "tenant ball span must be nonzero");
        Self {
            game,
            span,
            balls: FxHashMap::default(),
        }
    }

    /// The injective tenant embedding into the shared ball-id space.
    ///
    /// # Panics
    /// Panics if `ball` is outside the tenant's span.
    #[inline]
    pub fn pool_ball(&self, asid: Asid, ball: u64) -> u64 {
        assert!(
            ball < self.span,
            "ball {ball} outside tenant span {}",
            self.span
        );
        (asid.0 as u64) * self.span + ball
    }

    /// Inserts tenant `asid`'s ball, returning its placement.
    pub fn insert(&mut self, asid: Asid, ball: u64) -> Slot {
        let b = self.pool_ball(asid, ball);
        let slot = self.game.insert(b);
        self.balls.entry(asid.0).or_default().insert(ball);
        slot
    }

    /// Removes tenant `asid`'s ball, returning where it was.
    pub fn remove(&mut self, asid: Asid, ball: u64) -> Option<Slot> {
        let b = self.pool_ball(asid, ball);
        let slot = self.game.remove(b);
        if slot.is_some() {
            if let Some(set) = self.balls.get_mut(&asid.0) {
                set.remove(&ball);
            }
        }
        slot
    }

    /// Removes every ball of `asid` (tenant churn), in ascending ball
    /// order, returning how many were removed.
    pub fn retire(&mut self, asid: Asid) -> u64 {
        let Some(set) = self.balls.remove(&asid.0) else {
            return 0;
        };
        let mut ids: Vec<u64> = set.into_iter().collect();
        ids.sort_unstable();
        let mut removed = 0u64;
        for ball in ids {
            if self
                .game
                .remove((asid.0 as u64) * self.span + ball)
                .is_some()
            {
                removed += 1;
            }
        }
        removed
    }

    /// Live balls of tenant `asid`.
    pub fn tenant_balls(&self, asid: Asid) -> u64 {
        self.balls.get(&asid.0).map_or(0, |s| s.len() as u64)
    }

    /// The shared game (aggregate loads, stats).
    pub fn game(&self) -> &Game {
        &self.game
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;

    fn tg() -> TenantGame {
        TenantGame::new(Game::new(7, 64, Rule::Iceberg { front_cap: 6 }), 1 << 20)
    }

    #[test]
    fn tenants_share_bins() {
        let mut g = tg();
        for b in 0..32u64 {
            g.insert(Asid(1), b);
            g.insert(Asid(2), b);
        }
        assert_eq!(g.game().len(), 64, "both tenants' balls live in one game");
        assert_eq!(g.tenant_balls(Asid(1)), 32);
        assert_eq!(g.tenant_balls(Asid(2)), 32);
    }

    #[test]
    fn same_ball_id_is_distinct_per_tenant() {
        let mut g = tg();
        g.insert(Asid(1), 5);
        g.insert(Asid(2), 5);
        assert!(g.remove(Asid(1), 5).is_some());
        assert_eq!(g.tenant_balls(Asid(2)), 1, "tenant 2's ball survives");
    }

    #[test]
    fn retire_clears_one_tenant() {
        let mut g = tg();
        for b in 0..16u64 {
            g.insert(Asid(1), b);
        }
        g.insert(Asid(2), 0);
        assert_eq!(g.retire(Asid(1)), 16);
        assert_eq!(g.retire(Asid(1)), 0);
        assert_eq!(g.game().len(), 1);
        assert_eq!(g.tenant_balls(Asid(2)), 1);
    }

    #[test]
    #[should_panic(expected = "outside tenant span")]
    fn out_of_span_ball_rejected() {
        let mut g = TenantGame::new(Game::new(7, 8, Rule::OneChoice), 4);
        g.insert(Asid(1), 4);
    }
}
