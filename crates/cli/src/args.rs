//! Minimal, dependency-free argument parsing.
//!
//! The workspace's sanctioned dependency list has no CLI parser, so this is
//! a small `--key value` / `--flag` parser with typed accessors and helpful
//! errors. Positional arguments are collected in order.

use std::collections::HashMap;

/// Parsed arguments: flags, key-value options, and positionals.
#[derive(Clone, Debug, Default)]
pub struct Args {
    opts: HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

/// A parse or validation error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program/subcommand names).
    /// `bool_flags` names options that take no value.
    ///
    /// Repeating an option or flag is an error: silently letting the last
    /// occurrence win hides typos in long command lines (`--seed 1 … --seed
    /// 2` almost always means an editing mistake, not an override).
    pub fn parse(raw: &[String], bool_flags: &[&str]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if bool_flags.contains(&name) {
                    if out.flags.iter().any(|f| f == name) {
                        return Err(ArgError(format!("--{name} given more than once")));
                    }
                    out.flags.push(name.to_string());
                    i += 1;
                } else {
                    let value = raw
                        .get(i + 1)
                        .ok_or_else(|| ArgError(format!("--{name} expects a value")))?;
                    if value.starts_with("--") {
                        return Err(ArgError(format!("--{name} expects a value, got {value}")));
                    }
                    if out.opts.insert(name.to_string(), value.clone()).is_some() {
                        return Err(ArgError(format!("--{name} given more than once")));
                    }
                    i += 2;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Errors on any option or flag whose name is not in `known` — a typo'd
    /// `--warmpup 0` would otherwise parse fine and be silently ignored,
    /// leaving the default in effect. All unknown names are reported at
    /// once, sorted, so one rerun fixes everything.
    pub fn check_known(&self, known: &[&str]) -> Result<(), ArgError> {
        let mut unknown: Vec<&str> = self
            .opts
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
            .filter(|name| !known.contains(name))
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        unknown.sort_unstable();
        let list: Vec<String> = unknown.iter().map(|n| format!("--{n}")).collect();
        Err(ArgError(format!("unknown option(s): {}", list.join(", "))))
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A u64 option with a default.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => parse_u64(s).map_err(|_| ArgError(format!("--{name}: bad integer {s:?}"))),
        }
    }

    /// An f64 option with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("--{name}: bad float {s:?}"))),
        }
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }
}

/// Parses integers with `k`/`m`/`g` suffixes (binary) and `2^n` notation.
#[allow(clippy::result_unit_err)] // callers wrap with contextual ArgError messages
pub fn parse_u64(s: &str) -> Result<u64, ()> {
    let s = s.trim();
    if let Some(exp) = s.strip_prefix("2^") {
        let e: u32 = exp.parse().map_err(|_| ())?;
        return 1u64.checked_shl(e).ok_or(());
    }
    let (num, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1u64 << 20),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    let base: u64 = num.parse().map_err(|_| ())?;
    base.checked_mul(mult).ok_or(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_options_flags_positionals() {
        let a = Args::parse(
            &argv(&["--phys", "2^20", "trace.atpt", "--paper", "--seed", "7"]),
            &["paper"],
        )
        .unwrap();
        assert_eq!(a.get("phys"), Some("2^20"));
        assert!(a.flag("paper"));
        assert_eq!(a.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(a.positional(0), Some("trace.atpt"));
        assert_eq!(a.positional_len(), 1);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["--phys"]), &[]).is_err());
        assert!(Args::parse(&argv(&["--phys", "--seed", "2"]), &[]).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&[]), &[]).unwrap();
        assert_eq!(a.u64_or("phys", 42).unwrap(), 42);
        assert_eq!(a.f64_or("epsilon", 0.01).unwrap(), 0.01);
        assert_eq!(a.get_or("workload", "bimodal"), "bimodal");
        assert!(!a.flag("paper"));
    }

    #[test]
    fn bad_numbers_are_errors() {
        let a = Args::parse(&argv(&["--phys", "xyz"]), &[]).unwrap();
        assert!(a.u64_or("phys", 0).is_err());
        let a = Args::parse(&argv(&["--epsilon", "nanx"]), &[]).unwrap();
        assert!(a.f64_or("epsilon", 0.0).is_err());
    }

    #[test]
    fn duplicate_options_are_rejected() {
        let err = Args::parse(&argv(&["--seed", "1", "--seed", "2"]), &[]).unwrap_err();
        assert!(err.0.contains("--seed"), "message names the option: {err}");
        assert!(err.0.contains("more than once"));
        let err = Args::parse(&argv(&["--paper", "--paper"]), &["paper"]).unwrap_err();
        assert!(err.0.contains("--paper"));
    }

    #[test]
    fn unknown_options_are_rejected_sorted() {
        let a = Args::parse(
            &argv(&["--seed", "1", "--warmpup", "0", "--zeed", "9"]),
            &[],
        )
        .unwrap();
        assert!(a.check_known(&["seed", "warmup"]).is_err());
        let err = a.check_known(&["seed"]).unwrap_err();
        // Both typos reported at once, in sorted order.
        assert_eq!(err.0, "unknown option(s): --warmpup, --zeed");
        a.check_known(&["seed", "warmpup", "zeed"]).unwrap();
    }

    #[test]
    fn check_known_covers_flags_too() {
        let a = Args::parse(&argv(&["--observe"]), &["observe"]).unwrap();
        assert!(a.check_known(&[]).is_err());
        a.check_known(&["observe"]).unwrap();
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_u64("4096"), Ok(4096));
        assert_eq!(parse_u64("4k"), Ok(4096));
        assert_eq!(parse_u64("2M"), Ok(2 << 20));
        assert_eq!(parse_u64("1g"), Ok(1 << 30));
        assert_eq!(parse_u64("2^24"), Ok(1 << 24));
        assert!(parse_u64("2^70").is_err());
        assert!(parse_u64("abc").is_err());
    }
}
