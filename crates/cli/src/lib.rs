//! The `atp` command-line tool.
//!
//! Subcommands (see `atp help`):
//!
//! * `simulate` — run one workload against one memory manager and print the
//!   address-translation cost breakdown; `--metrics`, `--trace-events`, and
//!   `--window` export machine-readable artifacts;
//! * `sweep` — the Figure-1 huge-page-size sweep on any workload, fanned
//!   out over worker threads;
//! * `tenants` — the multi-tenant sweep: N ASID-tagged address spaces ×
//!   activity skew over one shared physical pool, with per-tenant
//!   metrics export;
//! * `multicore` — per-core TLBs over a shared page cache with
//!   TLB-shootdown accounting;
//! * `trace record|stats|mrc` — capture workloads to the binary trace
//!   format, summarize them, and compute LRU miss-ratio curves;
//! * `calibrate` — derive ε from device/walk latency assumptions.
//!
//! All logic lives in this library crate so it is unit-testable; `main` is
//! a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};

/// Entry point: dispatches `argv[1]` as a subcommand. Returns the process
/// exit code.
pub fn run(argv: &[String]) -> i32 {
    let Some(cmd) = argv.first().map(String::as_str) else {
        eprintln!("{}", commands::USAGE);
        return 2;
    };
    let rest = &argv[1..];
    let result = match cmd {
        "simulate" => commands::simulate(rest),
        "sweep" => commands::sweep_cmd(rest),
        "tenants" => commands::tenants_cmd(rest),
        "multicore" => commands::multicore_cmd(rest),
        "trace" => commands::trace_cmd(rest),
        "calibrate" => commands::calibrate(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown subcommand {other:?}; try `atp help`"
        ))),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}
