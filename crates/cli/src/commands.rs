//! Subcommand implementations.

use crate::args::{parse_u64, ArgError, Args};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::classic::{ClassicConfig, ClassicStages};
use atp_memmgmt::decoupled::{DecoupledConfig, DecoupledStages};
use atp_memmgmt::only::{PagingOnlyStages, VirtualOnlyStages};
use atp_memmgmt::sparse::{SparseConfig, SparseStages};
use atp_memmgmt::thp::{ThpConfig, ThpStages};
use atp_memmgmt::{MemoryManager, NoopObserver, Pipeline, Recorder, SimObserver, StageCounters};
use atp_obs::{run_registry, EventLog, ExportFormat, RunObserver, Shared, SyncRecorder};
use atp_replacement::PolicyKind;
use atp_sim::{run_multicore_observed, sweep_with_progress, LatencyModel, MulticoreConfig};
use atp_trace::{read_trace, write_trace, ReuseProfile, TraceStats};
use atp_types::{CostModel, Costs, VirtPage};
use atp_workloads::{
    Bimodal, Graph500Config, Graph500Trace, Gups, ParetoWalk, Sequential, Stencil2d, UniformRandom,
    Zipfian,
};
use std::io::Write;
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
atp — Paging and the Address-Translation Problem (SPAA 2021) simulator

USAGE:
  atp simulate  --workload W --manager M [options]   run one simulation
  atp sweep     --workload W [options]               Figure-1 h-sweep
  atp tenants   [--tenants LIST --skew LIST …]       multi-tenant sweep
  atp multicore --workload W --cores N [options]     shootdown extension
  atp trace     record|stats|mrc …                   trace tools
  atp calibrate [--device nvme|disk] [--virtualized] derive ε
  atp help                                           this text

WORKLOADS (--workload):
  bimodal | walk | graph500 | zipf | uniform | seq | gups | stencil
MANAGERS (--manager):
  classic | decoupled | sparse | thp | x | y
  (sparse: decoupled Z with sparse TLB values; --h sets the coverage in pages/entry)

COMMON OPTIONS (sizes accept k/m/g suffixes and 2^n):
  --phys N        physical pages            [2^16]
  --virt N        virtual pages             [4×phys]
  --tlb N         TLB entries               [1536]
  --h N           huge-page size (classic/thp) [64]
  --accesses N    measured accesses         [1m]
  --warmup N      warmup accesses           [accesses]
  --epsilon F     TLB-miss cost ε           [0.01]
  --policy P      lru|fifo|clock|…          [lru]
  --seed N        RNG seed                  [42]

SIMULATE:
  --batch N       driver chunk size in pages (cost-invariant;
                  batched engines pipeline each chunk)        [4096]

OBSERVABILITY (simulate; --metrics/--format also on sweep and multicore):
  --observe            print per-stage counters + reuse/latency histograms
  --metrics FILE       write run metrics (--format json|csv|prom) [json]
  --trace-events FILE  write Chrome trace-event JSON (load in Perfetto)
  --events-cap N       event ring capacity                        [64k]
  --window N           emit per-window time-series CSV every N accesses
  --window-out FILE    write the window CSV here instead of stdout

SWEEP / MULTICORE:
  --threads N     sweep worker threads (0 = all CPUs)             [0]
  --cores N       multicore: cores (one trace per core)           [4]

TENANTS (ASID-tagged translation over one shared physical pool):
  --tenants LIST  comma-separated tenant counts to sweep    [1,16,256]
  --skew LIST     comma-separated tenant-activity Zipf exponents [1.1]
  --page-skew F   per-tenant page-stream Zipf exponent         [1.01]
  --quantum N     accesses per scheduling slice                  [256]
  --churn F       P(retire tenant at quantum end), 0 disables    [0.0]
  --vspan N       private virtual pages per tenant          [virt]
  --manager M     tagged (shared AsidTlb) | arena (interleaved classic)
  --per-tenant-cap N  per-tenant metric rows kept (top by accesses) [16]
  (--metrics/--format export one aggregate row per sweep point plus
   per-tenant rows labelled asid=…)

TRACE TOOLS:
  atp trace record --workload W --out FILE --accesses N [--phys N …]
  atp trace stats FILE
  atp trace mrc FILE [--capacities 1k,4k,16k,…]
";

/// Options read by [`common`] and [`workload`] — every subcommand that
/// builds a simulation accepts these.
const COMMON_OPTS: &[&str] = &[
    "workload",
    "phys",
    "virt",
    "tlb",
    "h",
    "accesses",
    "warmup",
    "epsilon",
    "policy",
    "seed",
    "zipf-s",
    "graph-scale",
    "edge-factor",
];

/// `check_known` against [`COMMON_OPTS`] plus the subcommand's own options.
fn check_opts(args: &Args, extra: &[&str]) -> Result<(), ArgError> {
    let mut known: Vec<&str> = COMMON_OPTS.to_vec();
    known.extend_from_slice(extra);
    args.check_known(&known)
}

/// Writes an export artifact, wrapping IO errors with the path.
fn write_text(path: &str, contents: &str) -> Result<(), ArgError> {
    std::fs::write(path, contents).map_err(|e| ArgError(format!("write {path}: {e}")))
}

/// Parses `--format` into an [`ExportFormat`] (default JSON).
fn export_format(args: &Args) -> Result<ExportFormat, ArgError> {
    let s = args.get_or("format", "json");
    ExportFormat::parse(s)
        .ok_or_else(|| ArgError(format!("--format: expected json|csv|prom, got {s:?}")))
}

fn policy_of(name: &str) -> Result<PolicyKind, ArgError> {
    PolicyKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| ArgError(format!("unknown policy {name:?}")))
}

/// Builds a workload iterator from args.
fn workload(
    args: &Args,
    virt: u64,
    seed: u64,
) -> Result<Box<dyn Iterator<Item = VirtPage>>, ArgError> {
    Ok(match args.get_or("workload", "bimodal") {
        "bimodal" => Box::new(Bimodal::scaled(seed, virt)),
        "walk" => Box::new(ParetoWalk::new(seed, virt, 0.01)),
        "zipf" => Box::new(Zipfian::new(seed, virt, args.f64_or("zipf-s", 1.0)?)),
        "uniform" => Box::new(UniformRandom::new(seed, virt)),
        "seq" => Box::new(Sequential::new(virt)),
        "gups" => Box::new(Gups::new(seed, virt * 3 / 4, (virt / 64).max(1))),
        "stencil" => {
            // Square grid sized so both arrays fill the virtual space.
            let cells = virt * (4096 / 8) / 2;
            let side = ((cells as f64).sqrt() as u64).max(8);
            Box::new(Stencil2d::new(side, side, 32))
        }
        "graph500" => {
            let scale = args.u64_or("graph-scale", 15)? as u32;
            let g = Graph500Trace::generate(&Graph500Config {
                scale,
                edge_factor: args.u64_or("edge-factor", 16)?,
                seed,
                max_accesses: usize::MAX >> 1,
            });
            let v: Vec<VirtPage> = g.iter().collect();
            Box::new(v.into_iter())
        }
        other => return Err(ArgError(format!("unknown workload {other:?}"))),
    })
}

#[derive(Clone)]
struct Common {
    phys: u64,
    virt: u64,
    tlb: u64,
    h: u64,
    accesses: u64,
    warmup: u64,
    model: CostModel,
    policy: PolicyKind,
    seed: u64,
}

fn common(args: &Args) -> Result<Common, ArgError> {
    let phys = args.u64_or("phys", 1 << 16)?;
    let virt = args.u64_or("virt", phys * 4)?;
    let accesses = args.u64_or("accesses", 1 << 20)?;
    let eps = args.f64_or("epsilon", 0.01)?;
    if !(eps > 0.0 && eps < 1.0) {
        return Err(ArgError(format!("--epsilon must be in (0,1), got {eps}")));
    }
    Ok(Common {
        phys,
        virt,
        tlb: args.u64_or("tlb", 1536)?,
        h: args.u64_or("h", 64)?,
        accesses,
        warmup: args.u64_or("warmup", accesses)?,
        model: CostModel::new(eps),
        policy: policy_of(args.get_or("policy", "lru"))?,
        seed: args.u64_or("seed", 42)?,
    })
}

/// Builds a manager as a pipeline over `obs`. The observer is generic so
/// the default build pays nothing ([`NoopObserver`]) while `--observe`
/// attaches a [`SharedRecorder`] without a separate construction path.
fn build_observed<O: SimObserver + 'static>(
    name: &str,
    c: &Common,
    obs: O,
) -> Result<Box<dyn MemoryManager>, ArgError> {
    Ok(match name {
        "classic" => Box::new(Pipeline::with_observer(
            ClassicStages::new(ClassicConfig {
                huge_pages: c.h,
                phys_pages: c.phys,
                tlb_entries: c.tlb,
                tlb_policy: c.policy,
                ram_policy: c.policy,
                seed: c.seed,
            }),
            obs,
        )),
        "decoupled" => {
            let params = IcebergParams::derive(c.phys);
            Box::new(Pipeline::with_observer(
                DecoupledStages::new(
                    IcebergAlloc::new(&params, c.seed),
                    DecoupledConfig {
                        tlb_value_bits: 64,
                        tlb_entries: c.tlb,
                        tlb_policy: c.policy,
                        resident_pages: params.max_resident,
                        ram_policy: c.policy,
                        seed: c.seed,
                    },
                ),
                obs,
            ))
        }
        "sparse" => {
            let params = IcebergParams::derive(c.phys);
            Box::new(Pipeline::with_observer(
                SparseStages::new(
                    IcebergAlloc::new(&params, c.seed),
                    SparseConfig {
                        tlb_value_bits: 64,
                        coverage: c.h.max(2).next_power_of_two(),
                        tlb_entries: c.tlb,
                        tlb_policy: c.policy,
                        resident_pages: params.max_resident,
                        ram_policy: c.policy,
                        seed: c.seed,
                    },
                ),
                obs,
            ))
        }
        "thp" => Box::new(Pipeline::with_observer(
            ThpStages::new(ThpConfig {
                huge_pages: c.h,
                phys_pages: c.phys - c.phys % c.h,
                tlb_entries: c.tlb,
                policy: c.policy,
                seed: c.seed,
            }),
            obs,
        )),
        "x" => Box::new(Pipeline::with_observer(
            VirtualOnlyStages::new(c.h, c.tlb, c.policy, c.seed),
            obs,
        )),
        "y" => Box::new(Pipeline::with_observer(
            PagingOnlyStages::new(c.phys, c.policy, c.seed),
            obs,
        )),
        other => return Err(ArgError(format!("unknown manager {other:?}"))),
    })
}

fn build_manager(name: &str, c: &Common) -> Result<Box<dyn MemoryManager>, ArgError> {
    build_observed(name, c, NoopObserver)
}

/// `atp simulate`.
pub fn simulate(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &["observe"])?;
    check_opts(
        &args,
        &[
            "manager",
            "batch",
            "observe",
            "metrics",
            "trace-events",
            "events-cap",
            "window",
            "window-out",
            "format",
        ],
    )?;
    let c = common(&args)?;
    let name = args.get_or("manager", "classic");
    let wname = args.get_or("workload", "bimodal");
    let format = export_format(&args)?;
    let batch = args.u64_or("batch", atp_sim::DEFAULT_BATCH as u64)? as usize;
    if batch == 0 {
        return Err(ArgError("--batch must be positive".to_string()));
    }
    let window = args.u64_or("window", 0)?;
    let events_cap = args.u64_or("events-cap", EventLog::DEFAULT_CAPACITY as u64)? as usize;

    // Any export flag attaches the full observer stack; the pipeline stays
    // observer-free (NoopObserver, statically eliminated) otherwise.
    let wants_observer = args.flag("observe")
        || args.get("metrics").is_some()
        || args.get("trace-events").is_some()
        || window > 0;
    let observer = wants_observer.then(|| {
        let mut obs = RunObserver::new(Recorder::new());
        if args.get("trace-events").is_some() {
            obs = obs.with_events(events_cap);
        }
        if window > 0 {
            obs = obs.with_window(window, c.model.epsilon);
        }
        Shared::new(obs)
    });
    let mut mgr = match &observer {
        Some(obs) => build_observed(name, &c, obs.clone())?,
        None => build_manager(name, &c)?,
    };
    let trace = workload(&args, c.virt, c.seed)?;
    // Timing lives here, at the CLI boundary: the sim crate is
    // logical-clock-only so its outputs stay bit-reproducible.
    let wall_start = std::time::Instant::now();
    let stats = atp_sim::run_batched(mgr.as_mut(), trace, c.warmup, c.accesses, batch);
    let wall = wall_start.elapsed();
    let costs = stats.costs;
    println!("manager:        {}", stats.name);
    println!("accesses:       {}", costs.accesses);
    println!("ios:            {}", costs.ios);
    println!(
        "tlb misses:     {} ({:.4} per access)",
        costs.tlb_misses,
        costs.tlb_miss_rate()
    );
    println!("decode misses:  {}", costs.decode_misses);
    println!("paging failures:{}", costs.paging_failures);
    println!(
        "total cost:     {:.2}  (ε = {}; C_IO {:.1} + C_TLB {:.2} + C_D {:.2})",
        costs.total(c.model),
        c.model.epsilon,
        costs.io_cost(),
        costs.tlb_cost(c.model),
        costs.decode_cost(c.model)
    );
    println!("wall time:      {wall:.2?}");
    if let Some(obs) = &observer {
        // The observer sees warmup as well as measurement — useful for the
        // cold-start transient the Costs report excludes.
        if args.flag("observe") {
            println!();
            println!("{}", obs.with(|o| o.recorder.summary()));
        }
        obs.with(|o| -> Result<(), ArgError> {
            if let Some(path) = args.get("metrics") {
                let reg = run_registry(name, wname, &costs, c.model, Some(&o.recorder));
                write_text(path, &reg.render(format))?;
                eprintln!("metrics: {path}");
            }
            if let (Some(path), Some(log)) = (args.get("trace-events"), o.events.as_ref()) {
                write_text(path, &log.to_chrome_trace())?;
                eprintln!(
                    "trace events: {path} ({} recorded, {} dropped)",
                    log.recorded(),
                    log.dropped()
                );
            }
            if let Some(w) = &o.windowed {
                match args.get("window-out") {
                    Some(path) => {
                        write_text(path, &w.to_csv())?;
                        eprintln!("window csv: {path} ({} windows)", w.all_rows().len());
                    }
                    None => print!("\n{}", w.to_csv()),
                }
            }
            Ok(())
        })?;
    }
    Ok(())
}

/// One finished sweep point, collected from a worker thread.
struct SweepRow {
    /// `h` for a classic configuration, `None` for the decoupled Z row.
    h: Option<u64>,
    costs: Costs,
    stages: StageCounters,
}

/// `atp sweep`.
///
/// The eleven-ish configurations are independent, so they fan out over
/// [`sweep_with_progress`] workers (`--threads`, 0 = all CPUs) with a
/// `done/total` ticker on stderr; rows print in input order afterwards, so
/// stdout is byte-identical to the old sequential driver. Each worker
/// attaches a constant-size `Recorder::without_reuse_tracking()` — sweeps
/// only need stage counters, not the per-page reuse map.
pub fn sweep_cmd(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &[])?;
    check_opts(&args, &["threads", "metrics", "format"])?;
    let c = common(&args)?;
    let threads = args.u64_or("threads", 0)? as usize;
    let format = export_format(&args)?;
    let trace: Vec<VirtPage> = workload(&args, c.virt, c.seed)?
        .take((c.warmup + c.accesses) as usize)
        .collect();

    let mut configs: Vec<Option<u64>> = (0..=10u32)
        .map(|shift| 1u64 << shift)
        .filter(|&h| h <= c.phys)
        .map(Some)
        .collect();
    configs.push(None); // the decoupled Z baseline rides along
    let total = configs.len();

    let results: Vec<Result<SweepRow, ArgError>> = sweep_with_progress(
        &configs,
        threads,
        |&cfg| {
            let rec = Shared::new(Recorder::without_reuse_tracking());
            let mut mgr = match cfg {
                Some(h) => {
                    let mut over_h = c.clone();
                    over_h.h = h;
                    build_observed("classic", &over_h, rec.clone())?
                }
                None => build_observed("decoupled", &c, rec.clone())?,
            };
            let s = atp_sim::run(mgr.as_mut(), trace.iter().copied(), c.warmup, c.accesses);
            Ok(SweepRow {
                h: cfg,
                costs: s.costs,
                stages: rec.with(|r| r.counters()),
            })
        },
        |done, _| {
            eprint!("\rsweep {done}/{total}");
            let _ = std::io::stderr().flush();
        },
    );
    eprintln!();

    let rows: Vec<SweepRow> = results.into_iter().collect::<Result<_, _>>()?;
    println!("h\tios\ttlb_misses\ttotal(ε={})", c.model.epsilon);
    for row in &rows {
        let label = match row.h {
            Some(h) => h.to_string(),
            None => "Z".to_string(),
        };
        println!(
            "{label}\t{}\t{}\t{:.1}",
            row.costs.ios,
            row.costs.tlb_misses,
            row.costs.total(c.model)
        );
    }

    if let Some(path) = args.get("metrics") {
        let wname = args.get_or("workload", "bimodal");
        let mut reg = atp_obs::MetricsRegistry::new();
        reg.set_meta("command", "sweep");
        reg.set_meta("workload", wname);
        reg.set_meta("epsilon", &format!("{}", c.model.epsilon));
        for row in &rows {
            let (mname, hval) = match row.h {
                Some(h) => ("classic", h.to_string()),
                None => ("decoupled", "-".to_string()),
            };
            let labels = [
                ("manager", mname),
                ("workload", wname),
                ("h", hval.as_str()),
            ];
            atp_obs::costs_into(&mut reg, &labels, &row.costs, c.model);
            reg.counter(
                "atp_stage_evictions",
                "residency evictions",
                &labels,
                row.stages.evictions,
            );
            reg.counter(
                "atp_stage_evicted_pages",
                "base pages dropped by evictions",
                &labels,
                row.stages.evicted_pages,
            );
        }
        write_text(path, &reg.render(format))?;
        eprintln!("metrics: {path}");
    }
    Ok(())
}

/// Parses a comma-separated list with [`parse_u64`] element syntax.
fn u64_list(args: &Args, name: &str, default: &[u64]) -> Result<Vec<u64>, ArgError> {
    match args.get(name) {
        None => Ok(default.to_vec()),
        Some(spec) => spec
            .split(',')
            .map(|s| parse_u64(s).map_err(|_| ArgError(format!("--{name}: bad integer {s:?}"))))
            .collect(),
    }
}

/// Parses a comma-separated f64 list.
fn f64_list(args: &Args, name: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
    match args.get(name) {
        None => Ok(default.to_vec()),
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--{name}: bad float {s:?}")))
            })
            .collect(),
    }
}

/// One finished tenants sweep point.
struct TenantRow {
    tenants: u64,
    skew: f64,
    stats: atp_sim::TenantStats,
}

/// `atp tenants` — the multi-tenant sweep: N tenants × activity skew over
/// one shared physical pool, driven by [`TenantMix`] context-switch
/// traces. `tagged` runs the dedicated ASID-tagged manager (shared
/// `AsidTlb`, switches flush nothing); `arena` interleaves tenants into
/// one classic manager's address space as the untagged baseline.
pub fn tenants_cmd(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &[])?;
    check_opts(
        &args,
        &[
            "manager",
            "tenants",
            "skew",
            "page-skew",
            "quantum",
            "churn",
            "vspan",
            "per-tenant-cap",
            "metrics",
            "format",
        ],
    )?;
    let c = common(&args)?;
    let tenant_counts = u64_list(&args, "tenants", &[1, 16, 256])?;
    let skews = f64_list(&args, "skew", &[1.1])?;
    let page_skew = args.f64_or("page-skew", 1.01)?;
    let quantum = args.u64_or("quantum", 256)?;
    let churn = args.f64_or("churn", 0.0)?;
    if !(0.0..=1.0).contains(&churn) {
        return Err(ArgError(format!("--churn must be in [0,1], got {churn}")));
    }
    let vspan = args.u64_or("vspan", c.virt)?;
    if vspan == 0 || quantum == 0 {
        return Err(ArgError("--vspan and --quantum must be nonzero".into()));
    }
    for &n in &tenant_counts {
        if n == 0 || n > u32::MAX as u64 {
            return Err(ArgError(format!("--tenants: count {n} out of range")));
        }
    }
    let mname = args.get_or("manager", "tagged");
    let per_tenant_cap = args.u64_or("per-tenant-cap", 16)? as usize;
    let format = export_format(&args)?;

    let mut rows = Vec::new();
    println!("tenants\tskew\taccesses\tios\ttlb_misses\tswitches\tretired\tshootdowns\tseen");
    for &n in &tenant_counts {
        for &skew in &skews {
            let mix =
                atp_workloads::TenantMix::new(c.seed, n, vspan, skew, page_skew, quantum, churn);
            // Control records don't consume quota; 3× covers the worst case
            // (quantum 1 with churn: switch + access + retire per slice).
            let ops = mix.take((c.warmup + c.accesses) as usize * 3);
            let stats = match mname {
                "tagged" => {
                    let mut mm = atp_memmgmt::TenantMm::new(atp_memmgmt::TenantMmConfig {
                        huge_pages: c.h,
                        phys_pages: c.phys,
                        tlb_entries: c.tlb,
                        tlb_policy: c.policy,
                        ram_policy: c.policy,
                        seed: c.seed,
                    });
                    atp_sim::run_tenants(&mut mm, ops, c.warmup, c.accesses)
                }
                "arena" => {
                    let mut arena = atp_memmgmt::TenantArena::new(
                        Pipeline::from_stages(ClassicStages::new(ClassicConfig {
                            huge_pages: c.h,
                            phys_pages: c.phys,
                            tlb_entries: c.tlb,
                            tlb_policy: c.policy,
                            ram_policy: c.policy,
                            seed: c.seed,
                        })),
                        vspan,
                    );
                    atp_sim::run_tenants(&mut arena, ops, c.warmup, c.accesses)
                }
                other => {
                    return Err(ArgError(format!(
                        "unknown tenants manager {other:?} (tagged|arena)"
                    )))
                }
            };
            println!(
                "{n}\t{skew}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                stats.costs.accesses,
                stats.costs.ios,
                stats.costs.tlb_misses,
                stats.switches,
                stats.retirements,
                stats.shootdowns,
                stats.tenants_seen()
            );
            rows.push(TenantRow {
                tenants: n,
                skew,
                stats,
            });
        }
    }

    if let Some(path) = args.get("metrics") {
        let mut reg = atp_obs::MetricsRegistry::new();
        reg.set_meta("command", "tenants");
        reg.set_meta("manager", mname);
        reg.set_meta("quantum", &quantum.to_string());
        reg.set_meta("churn", &format!("{churn}"));
        reg.set_meta("page_skew", &format!("{page_skew}"));
        for row in &rows {
            let n_s = row.tenants.to_string();
            let skew_s = format!("{}", row.skew);
            let labels = [
                ("manager", mname),
                ("tenants", n_s.as_str()),
                ("skew", skew_s.as_str()),
            ];
            atp_obs::costs_into(&mut reg, &labels, &row.stats.costs, c.model);
            reg.counter(
                "atp_context_switches",
                "measured context switches",
                &labels,
                row.stats.switches,
            );
            reg.counter(
                "atp_tenant_retirements",
                "tenants retired during measurement",
                &labels,
                row.stats.retirements,
            );
            reg.counter(
                "atp_tlb_shootdowns",
                "TLB entries shot down by switches and retirements",
                &labels,
                row.stats.shootdowns,
            );
            // Per-tenant breakdown, top `per_tenant_cap` by accesses so a
            // million-tenant sweep cannot explode the artifact. The
            // truncation is recorded, never silent.
            let mut per = row.stats.per_tenant.clone();
            per.sort_by_key(|(a, costs)| (core::cmp::Reverse(costs.accesses), a.0));
            if per.len() > per_tenant_cap {
                reg.counter(
                    "atp_tenants_truncated",
                    "tenants omitted from the per-tenant breakdown",
                    &labels,
                    (per.len() - per_tenant_cap) as u64,
                );
                per.truncate(per_tenant_cap);
            }
            for (asid, costs) in &per {
                let asid_s = asid.id().to_string();
                let tlabels = [
                    ("manager", mname),
                    ("tenants", n_s.as_str()),
                    ("skew", skew_s.as_str()),
                    ("asid", asid_s.as_str()),
                ];
                atp_obs::costs_into(&mut reg, &tlabels, costs, c.model);
            }
        }
        write_text(path, &reg.render(format))?;
        eprintln!("metrics: {path}");
    }
    Ok(())
}

/// `atp multicore` — the Section 1 shootdown extension from the shell:
/// `--cores` private TLBs over one shared page cache, each core replaying
/// the workload under its own seed. One [`SyncRecorder`] is cloned into
/// every core, so the printed stage counters are machine-wide.
pub fn multicore_cmd(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &[])?;
    check_opts(&args, &["cores", "metrics", "format"])?;
    let c = common(&args)?;
    let cores = args.u64_or("cores", 4)? as usize;
    if cores == 0 {
        return Err(ArgError("--cores must be at least 1".into()));
    }
    let format = export_format(&args)?;
    let wname = args.get_or("workload", "bimodal");
    let cfg = MulticoreConfig {
        cores,
        huge_pages: c.h,
        phys_pages: c.phys,
        tlb_entries: c.tlb,
        policy: c.policy,
        seed: c.seed,
    };
    let mut traces = Vec::with_capacity(cores);
    for core in 0..cores {
        traces.push(
            workload(&args, c.virt, c.seed + core as u64)?
                .take(c.accesses as usize)
                .collect::<Vec<VirtPage>>(),
        );
    }

    let shared = SyncRecorder::without_reuse_tracking();
    let (result, _) = run_multicore_observed(&cfg, &traces, |_| shared.clone());

    println!("core\taccesses\ttlb_misses\tios");
    for (core, stats) in result.per_core.iter().enumerate() {
        println!(
            "{core}\t{}\t{}\t{}",
            stats.costs.accesses, stats.costs.tlb_misses, stats.costs.ios
        );
    }
    let total = result.total_costs();
    println!(
        "total\t{}\t{}\t{}",
        total.accesses, total.tlb_misses, total.ios
    );
    println!("shootdown events:        {}", result.shootdown_events);
    println!(
        "shootdown invalidations: {}",
        result.shootdown_invalidations
    );

    if let Some(path) = args.get("metrics") {
        let snapshot = shared.snapshot();
        let mut reg = run_registry("multicore", wname, &total, c.model, Some(&snapshot));
        reg.set_meta("cores", &cores.to_string());
        let labels = [("manager", "multicore"), ("workload", wname)];
        reg.counter(
            "atp_shootdown_events",
            "RAM evictions that triggered shootdown broadcasts",
            &labels,
            result.shootdown_events,
        );
        reg.counter(
            "atp_shootdown_invalidations",
            "TLB entries invalidated across all cores",
            &labels,
            result.shootdown_invalidations,
        );
        write_text(path, &reg.render(format))?;
        eprintln!("metrics: {path}");
    }
    Ok(())
}

/// `atp trace record|stats|mrc`.
pub fn trace_cmd(raw: &[String]) -> Result<(), ArgError> {
    let sub = raw
        .first()
        .ok_or_else(|| ArgError("trace expects record|stats|mrc".into()))?
        .clone();
    let rest = &raw[1..];
    match sub.as_str() {
        "record" => {
            let args = Args::parse(rest, &[])?;
            check_opts(&args, &["out"])?;
            let c = common(&args)?;
            let out = args
                .get("out")
                .ok_or_else(|| ArgError("trace record requires --out FILE".into()))?;
            let pages: Vec<VirtPage> = workload(&args, c.virt, c.seed)?
                .take(c.accesses as usize)
                .collect();
            write_trace(Path::new(out), &pages)
                .map_err(|e| ArgError(format!("write failed: {e}")))?;
            println!("wrote {} accesses to {out}", pages.len());
            Ok(())
        }
        "stats" => {
            let args = Args::parse(rest, &[])?;
            args.check_known(&[])?;
            let file = args
                .positional(0)
                .ok_or_else(|| ArgError("trace stats requires a FILE".into()))?;
            let pages =
                read_trace(Path::new(file)).map_err(|e| ArgError(format!("read failed: {e}")))?;
            let s = TraceStats::compute(&pages);
            println!("accesses:      {}", s.length);
            println!("unique pages:  {}", s.unique_pages);
            println!("page range:    {}..={}", s.min_page, s.max_page);
            println!("same-page rate:{:.4}", s.same_page_rate);
            println!("adjacent rate: {:.4}", s.adjacent_rate);
            println!("mean reuse:    {:.2}", s.mean_reuse);
            Ok(())
        }
        "mrc" => {
            let args = Args::parse(rest, &[])?;
            args.check_known(&["capacities"])?;
            let file = args
                .positional(0)
                .ok_or_else(|| ArgError("trace mrc requires a FILE".into()))?;
            let pages =
                read_trace(Path::new(file)).map_err(|e| ArgError(format!("read failed: {e}")))?;
            let caps: Vec<usize> = match args.get("capacities") {
                Some(spec) => spec
                    .split(',')
                    .map(|s| parse_u64(s).map(|v| v as usize))
                    .collect::<Result<_, _>>()
                    .map_err(|_| ArgError("bad --capacities list".into()))?,
                None => (4..=20).map(|s| 1usize << s).collect(),
            };
            let max_cap = caps.iter().copied().max().unwrap_or(1024);
            let prof = ReuseProfile::compute(&pages, max_cap);
            println!("capacity\tlru_misses\tmiss_ratio");
            for (c, ratio) in prof.curve(&caps) {
                println!("{c}\t{}\t{ratio:.4}", prof.lru_misses(c));
            }
            println!("# cold misses: {}", prof.cold_misses);
            Ok(())
        }
        other => Err(ArgError(format!("unknown trace subcommand {other:?}"))),
    }
}

/// `atp calibrate`.
pub fn calibrate(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &["virtualized"])?;
    args.check_known(&["device", "virtualized", "walk-ns", "io-ns"])?;
    let device = args.get_or("device", "nvme");
    let mut m = match device {
        "nvme" => LatencyModel::nvme_native(),
        "disk" => LatencyModel::disk_native(),
        other => return Err(ArgError(format!("unknown device {other:?} (nvme|disk)"))),
    };
    if args.flag("virtualized") {
        m.walk_touches = 24.0;
    }
    m.walk_touch_ns = args.f64_or("walk-ns", m.walk_touch_ns)?;
    m.io_ns = args.f64_or("io-ns", m.io_ns)?;
    println!(
        "walk: {} touches × {} ns; io: {} ns",
        m.walk_touches, m.walk_touch_ns, m.io_ns
    );
    println!("ε = {:.6}", m.epsilon());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn simulate_runs_every_manager() {
        for mgr in ["classic", "decoupled", "sparse", "thp", "x", "y"] {
            simulate(&argv(&[
                "--manager",
                mgr,
                "--workload",
                "zipf",
                "--phys",
                "2^12",
                "--accesses",
                "10k",
                "--warmup",
                "10k",
                "--h",
                "8",
            ]))
            .unwrap_or_else(|e| panic!("{mgr}: {e}"));
        }
    }

    #[test]
    fn simulate_runs_every_workload() {
        for w in [
            "bimodal", "walk", "zipf", "uniform", "seq", "gups", "stencil",
        ] {
            simulate(&argv(&[
                "--manager",
                "classic",
                "--workload",
                w,
                "--phys",
                "2^12",
                "--accesses",
                "5k",
                "--warmup",
                "0",
                "--h",
                "4",
            ]))
            .unwrap_or_else(|e| panic!("{w}: {e}"));
        }
    }

    #[test]
    fn simulate_observe_flag() {
        for mgr in ["classic", "decoupled", "sparse", "thp", "x", "y"] {
            simulate(&argv(&[
                "--manager",
                mgr,
                "--workload",
                "zipf",
                "--phys",
                "2^12",
                "--accesses",
                "10k",
                "--warmup",
                "0",
                "--h",
                "8",
                "--observe",
            ]))
            .unwrap_or_else(|e| panic!("{mgr}: {e}"));
        }
    }

    #[test]
    fn simulate_rejects_bad_input() {
        assert!(simulate(&argv(&["--manager", "nope"])).is_err());
        assert!(simulate(&argv(&["--workload", "nope"])).is_err());
        assert!(simulate(&argv(&["--epsilon", "2.0"])).is_err());
        assert!(simulate(&argv(&["--policy", "nope"])).is_err());
    }

    #[test]
    fn simulate_rejects_unknown_and_duplicate_options() {
        // A typo'd option name must not be silently ignored.
        let err = simulate(&argv(&["--warmpup", "0"])).unwrap_err();
        assert!(err.0.contains("--warmpup"), "{err}");
        // Same for a repeated one.
        let err = simulate(&argv(&["--seed", "1", "--seed", "2"])).unwrap_err();
        assert!(err.0.contains("more than once"), "{err}");
        // Bad export format names the accepted set.
        let err = simulate(&argv(&["--format", "xml"])).unwrap_err();
        assert!(err.0.contains("json|csv|prom"), "{err}");
        // Every subcommand gets the unknown-option check.
        assert!(sweep_cmd(&argv(&["--warmpup", "0"])).is_err());
        assert!(multicore_cmd(&argv(&["--coers", "2"])).is_err());
        assert!(calibrate(&argv(&["--devcie", "nvme"])).is_err());
        assert!(trace_cmd(&argv(&["mrc", "f", "--capacties", "1k"])).is_err());
    }

    #[test]
    fn simulate_batch_is_cost_invariant() {
        // --batch only changes driver chunking; every exported metric
        // except the driver-owned batch-boundary count must be
        // byte-identical across batch sizes.
        let dir = std::env::temp_dir().join("atp_cli_batch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let export = |batch: &str| {
            let path = dir.join(format!("m_{batch}.json"));
            simulate(&argv(&[
                "--manager",
                "classic",
                "--workload",
                "zipf",
                "--phys",
                "2^12",
                "--accesses",
                "10k",
                "--warmup",
                "1k",
                "--h",
                "8",
                "--batch",
                batch,
                "--metrics",
                path.to_str().unwrap(),
            ]))
            .unwrap_or_else(|e| panic!("--batch {batch}: {e}"));
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).ok();
            // atp_stage_batches counts driver chunks, so it varies with
            // --batch by design; everything else must not.
            assert!(text.contains("atp_stage_batches"), "batches row missing");
            text.lines()
                .filter(|l| !l.contains("atp_stage_batches"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let golden = export("4096");
        for batch in ["1", "13", "2^16"] {
            assert_eq!(export(batch), golden, "--batch {batch} changed the metrics");
        }
        // Zero is rejected, not silently clamped.
        let err = simulate(&argv(&["--batch", "0"])).unwrap_err();
        assert!(err.0.contains("--batch"), "{err}");
    }

    #[test]
    fn simulate_exports_observability_artifacts() {
        let dir = std::env::temp_dir().join("atp_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("m.json");
        let trace = dir.join("t.json");
        let window = dir.join("w.csv");
        simulate(&argv(&[
            "--manager",
            "classic",
            "--workload",
            "zipf",
            "--phys",
            "2^12",
            "--accesses",
            "10k",
            "--warmup",
            "0",
            "--h",
            "8",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace-events",
            trace.to_str().unwrap(),
            "--window",
            "1k",
            "--window-out",
            window.to_str().unwrap(),
        ]))
        .unwrap();
        // Metrics and trace events are valid JSON in the expected schemas.
        let m = std::fs::read_to_string(&metrics).unwrap();
        let doc = atp_obs::json::parse(&m).expect("metrics must be valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("atp-metrics-v1")
        );
        let t = std::fs::read_to_string(&trace).unwrap();
        let doc = atp_obs::json::parse(&t).expect("trace events must be valid JSON");
        assert!(doc.get("traceEvents").and_then(|e| e.as_arr()).is_some());
        // The window CSV has a header plus ten 1k windows.
        let w = std::fs::read_to_string(&window).unwrap();
        assert_eq!(w.lines().count(), 11);
        assert!(w.starts_with("window,start,accesses,"));
        for f in [&metrics, &trace, &window] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn simulate_csv_and_prom_formats() {
        let dir = std::env::temp_dir().join("atp_cli_obs_fmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (fmt, needle) in [
            ("csv", "atp_ios,counter,"),
            ("prom", "# TYPE atp_ios counter"),
        ] {
            let path = dir.join(format!("m.{fmt}"));
            simulate(&argv(&[
                "--workload",
                "uniform",
                "--phys",
                "2^10",
                "--accesses",
                "2k",
                "--warmup",
                "0",
                "--h",
                "4",
                "--metrics",
                path.to_str().unwrap(),
                "--format",
                fmt,
            ]))
            .unwrap();
            let body = std::fs::read_to_string(&path).unwrap();
            assert!(body.contains(needle), "{fmt}: missing {needle:?}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn multicore_runs_and_exports() {
        let dir = std::env::temp_dir().join("atp_cli_mc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("mc.json");
        multicore_cmd(&argv(&[
            "--workload",
            "uniform",
            "--cores",
            "2",
            "--phys",
            "2^10",
            "--tlb",
            "32",
            "--accesses",
            "5k",
            "--h",
            "4",
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let m = std::fs::read_to_string(&metrics).unwrap();
        let doc = atp_obs::json::parse(&m).unwrap();
        assert_eq!(
            doc.get("meta")
                .unwrap()
                .get("cores")
                .and_then(|c| c.as_str()),
            Some("2")
        );
        assert!(m.contains("atp_shootdown_events"));
        std::fs::remove_file(&metrics).ok();
        assert!(multicore_cmd(&argv(&["--cores", "0"])).is_err());
    }

    #[test]
    fn sweep_runs_small() {
        sweep_cmd(&argv(&[
            "--workload",
            "uniform",
            "--phys",
            "2^10",
            "--accesses",
            "5k",
            "--warmup",
            "5k",
            "--tlb",
            "64",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_parallel_with_metrics() {
        let dir = std::env::temp_dir().join("atp_cli_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("sweep.csv");
        sweep_cmd(&argv(&[
            "--workload",
            "zipf",
            "--phys",
            "2^10",
            "--accesses",
            "5k",
            "--warmup",
            "0",
            "--tlb",
            "64",
            "--threads",
            "4",
            "--metrics",
            metrics.to_str().unwrap(),
            "--format",
            "csv",
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&metrics).unwrap();
        // One atp_cost_total row per h in 1..=1024 plus the Z row.
        let rows = body
            .lines()
            .filter(|l| l.starts_with("atp_cost_total,"))
            .count();
        assert_eq!(rows, 12);
        assert!(body.contains("h=1024"));
        assert!(body.contains("manager=decoupled"));
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn trace_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join("atp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.atpt");
        let file_s = file.to_str().unwrap();
        trace_cmd(&argv(&[
            "record",
            "--workload",
            "zipf",
            "--out",
            file_s,
            "--accesses",
            "5k",
            "--phys",
            "2^12",
        ]))
        .unwrap();
        trace_cmd(&argv(&["stats", file_s])).unwrap();
        trace_cmd(&argv(&["mrc", file_s, "--capacities", "16,256,1k"])).unwrap();
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn trace_requires_subcommand_and_file() {
        assert!(trace_cmd(&[]).is_err());
        assert!(trace_cmd(&argv(&["stats"])).is_err());
        assert!(trace_cmd(&argv(&["record", "--workload", "zipf"])).is_err());
        assert!(trace_cmd(&argv(&["bogus"])).is_err());
    }

    #[test]
    fn calibrate_devices() {
        calibrate(&argv(&[])).unwrap();
        calibrate(&argv(&["--device", "disk"])).unwrap();
        calibrate(&argv(&["--device", "nvme", "--virtualized"])).unwrap();
        assert!(calibrate(&argv(&["--device", "floppy"])).is_err());
    }

    #[test]
    fn run_dispatches() {
        assert_eq!(crate::run(&argv(&["help"])), 0);
        assert_eq!(crate::run(&argv(&["bogus"])), 2);
        assert_eq!(crate::run(&[]), 2);
    }

    #[test]
    fn tenants_runs_both_managers() {
        for mgr in ["tagged", "arena"] {
            tenants_cmd(&argv(&[
                "--manager",
                mgr,
                "--tenants",
                "1,8",
                "--skew",
                "1.1,1.3",
                "--phys",
                "2^10",
                "--tlb",
                "64",
                "--vspan",
                "2^10",
                "--quantum",
                "32",
                "--accesses",
                "4k",
                "--warmup",
                "1k",
                "--h",
                "4",
            ]))
            .unwrap_or_else(|e| panic!("{mgr}: {e}"));
        }
        assert!(tenants_cmd(&argv(&["--manager", "nope"])).is_err());
    }

    #[test]
    fn tenants_exports_per_tenant_metrics() {
        let dir = std::env::temp_dir().join("atp_cli_tenants_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("tenants.json");
        tenants_cmd(&argv(&[
            "--tenants",
            "4",
            "--skew",
            "1.2",
            "--churn",
            "0.1",
            "--phys",
            "2^10",
            "--tlb",
            "64",
            "--vspan",
            "2^9",
            "--quantum",
            "32",
            "--accesses",
            "4k",
            "--warmup",
            "0",
            "--h",
            "4",
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        let m = std::fs::read_to_string(&metrics).unwrap();
        let doc = atp_obs::json::parse(&m).expect("metrics must be valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("atp-metrics-v1")
        );
        // Aggregate rows labelled by sweep point, per-tenant rows by ASID.
        assert!(
            m.contains("\"tenants\": \"4\""),
            "sweep-point label missing"
        );
        assert!(m.contains("\"asid\": \"0\""), "per-tenant label missing");
        assert!(m.contains("atp_context_switches"));
        assert!(m.contains("atp_tlb_shootdowns"));
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn tenants_rejects_unknown_duplicate_and_bad_options() {
        // PR-4 convention: typos and repeats are hard errors everywhere.
        let err = tenants_cmd(&argv(&["--tenatns", "4"])).unwrap_err();
        assert!(err.0.contains("--tenatns"), "{err}");
        let err = tenants_cmd(&argv(&["--skew", "1.1", "--skew", "1.2"])).unwrap_err();
        assert!(err.0.contains("more than once"), "{err}");
        assert!(tenants_cmd(&argv(&["--tenants", "0"])).is_err());
        assert!(tenants_cmd(&argv(&["--tenants", "1,bogus"])).is_err());
        assert!(tenants_cmd(&argv(&["--skew", "1.1,x"])).is_err());
        assert!(tenants_cmd(&argv(&["--churn", "1.5"])).is_err());
        assert!(tenants_cmd(&argv(&["--tenants", "2^33"])).is_err());
    }

    #[test]
    fn tenants_deterministic_output_rows() {
        // Two identical invocations must produce identical metric files —
        // the sweep is a pure function of its arguments.
        let dir = std::env::temp_dir().join("atp_cli_tenants_det_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        for path in [&a, &b] {
            tenants_cmd(&argv(&[
                "--tenants",
                "16",
                "--skew",
                "1.1",
                "--churn",
                "0.05",
                "--phys",
                "2^10",
                "--tlb",
                "64",
                "--vspan",
                "2^9",
                "--quantum",
                "16",
                "--accesses",
                "8k",
                "--warmup",
                "1k",
                "--h",
                "4",
                "--metrics",
                path.to_str().unwrap(),
                "--format",
                "csv",
            ]))
            .unwrap();
        }
        let ba = std::fs::read_to_string(&a).unwrap();
        let bb = std::fs::read_to_string(&b).unwrap();
        assert_eq!(ba, bb, "tenants sweep must be deterministic");
        for f in [&a, &b] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn graph500_workload_via_cli() {
        simulate(&argv(&[
            "--manager",
            "classic",
            "--workload",
            "graph500",
            "--graph-scale",
            "10",
            "--phys",
            "2^12",
            "--accesses",
            "20k",
            "--warmup",
            "0",
            "--h",
            "4",
        ]))
        .unwrap();
    }
}
