//! Subcommand implementations.

use crate::args::{parse_u64, ArgError, Args};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::classic::{ClassicConfig, ClassicStages};
use atp_memmgmt::decoupled::{DecoupledConfig, DecoupledStages};
use atp_memmgmt::only::{PagingOnlyStages, VirtualOnlyStages};
use atp_memmgmt::sparse::{SparseConfig, SparseStages};
use atp_memmgmt::thp::{ThpConfig, ThpStages};
use atp_memmgmt::{MemoryManager, NoopObserver, Pipeline, SharedRecorder, SimObserver};
use atp_replacement::PolicyKind;
use atp_sim::LatencyModel;
use atp_trace::{read_trace, write_trace, ReuseProfile, TraceStats};
use atp_types::{CostModel, VirtPage};
use atp_workloads::{
    Bimodal, Graph500Config, Graph500Trace, Gups, ParetoWalk, Sequential, Stencil2d, UniformRandom,
    Zipfian,
};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
atp — Paging and the Address-Translation Problem (SPAA 2021) simulator

USAGE:
  atp simulate  --workload W --manager M [options]   run one simulation
  atp sweep     --workload W [options]               Figure-1 h-sweep
  atp trace     record|stats|mrc …                   trace tools
  atp calibrate [--device nvme|disk] [--virtualized] derive ε
  atp help                                           this text

WORKLOADS (--workload):
  bimodal | walk | graph500 | zipf | uniform | seq | gups | stencil
MANAGERS (--manager):
  classic | decoupled | sparse | thp | x | y
  (sparse: decoupled Z with sparse TLB values; --h sets the coverage in pages/entry)

COMMON OPTIONS (sizes accept k/m/g suffixes and 2^n):
  --phys N        physical pages            [2^16]
  --virt N        virtual pages             [4×phys]
  --tlb N         TLB entries               [1536]
  --h N           huge-page size (classic/thp) [64]
  --accesses N    measured accesses         [1m]
  --warmup N      warmup accesses           [accesses]
  --epsilon F     TLB-miss cost ε           [0.01]
  --policy P      lru|fifo|clock|…          [lru]
  --seed N        RNG seed                  [42]
  --observe       (simulate) attach a pipeline Recorder and print
                  per-stage counters + reuse/latency histograms

TRACE TOOLS:
  atp trace record --workload W --out FILE --accesses N [--phys N …]
  atp trace stats FILE
  atp trace mrc FILE [--capacities 1k,4k,16k,…]
";

fn policy_of(name: &str) -> Result<PolicyKind, ArgError> {
    PolicyKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| ArgError(format!("unknown policy {name:?}")))
}

/// Builds a workload iterator from args.
fn workload(
    args: &Args,
    virt: u64,
    seed: u64,
) -> Result<Box<dyn Iterator<Item = VirtPage>>, ArgError> {
    Ok(match args.get_or("workload", "bimodal") {
        "bimodal" => Box::new(Bimodal::scaled(seed, virt)),
        "walk" => Box::new(ParetoWalk::new(seed, virt, 0.01)),
        "zipf" => Box::new(Zipfian::new(seed, virt, args.f64_or("zipf-s", 1.0)?)),
        "uniform" => Box::new(UniformRandom::new(seed, virt)),
        "seq" => Box::new(Sequential::new(virt)),
        "gups" => Box::new(Gups::new(seed, virt * 3 / 4, (virt / 64).max(1))),
        "stencil" => {
            // Square grid sized so both arrays fill the virtual space.
            let cells = virt * (4096 / 8) / 2;
            let side = ((cells as f64).sqrt() as u64).max(8);
            Box::new(Stencil2d::new(side, side, 32))
        }
        "graph500" => {
            let scale = args.u64_or("graph-scale", 15)? as u32;
            let g = Graph500Trace::generate(&Graph500Config {
                scale,
                edge_factor: args.u64_or("edge-factor", 16)?,
                seed,
                max_accesses: usize::MAX >> 1,
            });
            let v: Vec<VirtPage> = g.iter().collect();
            Box::new(v.into_iter())
        }
        other => return Err(ArgError(format!("unknown workload {other:?}"))),
    })
}

struct Common {
    phys: u64,
    virt: u64,
    tlb: u64,
    h: u64,
    accesses: u64,
    warmup: u64,
    model: CostModel,
    policy: PolicyKind,
    seed: u64,
}

fn common(args: &Args) -> Result<Common, ArgError> {
    let phys = args.u64_or("phys", 1 << 16)?;
    let virt = args.u64_or("virt", phys * 4)?;
    let accesses = args.u64_or("accesses", 1 << 20)?;
    let eps = args.f64_or("epsilon", 0.01)?;
    if !(eps > 0.0 && eps < 1.0) {
        return Err(ArgError(format!("--epsilon must be in (0,1), got {eps}")));
    }
    Ok(Common {
        phys,
        virt,
        tlb: args.u64_or("tlb", 1536)?,
        h: args.u64_or("h", 64)?,
        accesses,
        warmup: args.u64_or("warmup", accesses)?,
        model: CostModel::new(eps),
        policy: policy_of(args.get_or("policy", "lru"))?,
        seed: args.u64_or("seed", 42)?,
    })
}

/// Builds a manager as a pipeline over `obs`. The observer is generic so
/// the default build pays nothing ([`NoopObserver`]) while `--observe`
/// attaches a [`SharedRecorder`] without a separate construction path.
fn build_observed<O: SimObserver + 'static>(
    name: &str,
    c: &Common,
    obs: O,
) -> Result<Box<dyn MemoryManager>, ArgError> {
    Ok(match name {
        "classic" => Box::new(Pipeline::with_observer(
            ClassicStages::new(ClassicConfig {
                huge_pages: c.h,
                phys_pages: c.phys,
                tlb_entries: c.tlb,
                tlb_policy: c.policy,
                ram_policy: c.policy,
                seed: c.seed,
            }),
            obs,
        )),
        "decoupled" => {
            let params = IcebergParams::derive(c.phys);
            Box::new(Pipeline::with_observer(
                DecoupledStages::new(
                    IcebergAlloc::new(&params, c.seed),
                    DecoupledConfig {
                        tlb_value_bits: 64,
                        tlb_entries: c.tlb,
                        tlb_policy: c.policy,
                        resident_pages: params.max_resident,
                        ram_policy: c.policy,
                        seed: c.seed,
                    },
                ),
                obs,
            ))
        }
        "sparse" => {
            let params = IcebergParams::derive(c.phys);
            Box::new(Pipeline::with_observer(
                SparseStages::new(
                    IcebergAlloc::new(&params, c.seed),
                    SparseConfig {
                        tlb_value_bits: 64,
                        coverage: c.h.max(2).next_power_of_two(),
                        tlb_entries: c.tlb,
                        tlb_policy: c.policy,
                        resident_pages: params.max_resident,
                        ram_policy: c.policy,
                        seed: c.seed,
                    },
                ),
                obs,
            ))
        }
        "thp" => Box::new(Pipeline::with_observer(
            ThpStages::new(ThpConfig {
                huge_pages: c.h,
                phys_pages: c.phys - c.phys % c.h,
                tlb_entries: c.tlb,
                policy: c.policy,
                seed: c.seed,
            }),
            obs,
        )),
        "x" => Box::new(Pipeline::with_observer(
            VirtualOnlyStages::new(c.h, c.tlb, c.policy, c.seed),
            obs,
        )),
        "y" => Box::new(Pipeline::with_observer(
            PagingOnlyStages::new(c.phys, c.policy, c.seed),
            obs,
        )),
        other => return Err(ArgError(format!("unknown manager {other:?}"))),
    })
}

fn build_manager(name: &str, c: &Common) -> Result<Box<dyn MemoryManager>, ArgError> {
    build_observed(name, c, NoopObserver)
}

/// `atp simulate`.
pub fn simulate(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &["observe"])?;
    let c = common(&args)?;
    let name = args.get_or("manager", "classic");
    let recorder = args.flag("observe").then(SharedRecorder::new);
    let mut mgr = match &recorder {
        Some(rec) => build_observed(name, &c, rec.clone())?,
        None => build_manager(name, &c)?,
    };
    let trace = workload(&args, c.virt, c.seed)?;
    let stats = atp_sim::run(mgr.as_mut(), trace, c.warmup, c.accesses);
    let costs = stats.costs;
    println!("manager:        {}", stats.name);
    println!("accesses:       {}", costs.accesses);
    println!("ios:            {}", costs.ios);
    println!(
        "tlb misses:     {} ({:.4} per access)",
        costs.tlb_misses,
        costs.tlb_miss_rate()
    );
    println!("decode misses:  {}", costs.decode_misses);
    println!("paging failures:{}", costs.paging_failures);
    println!(
        "total cost:     {:.2}  (ε = {}; C_IO {:.1} + C_TLB {:.2} + C_D {:.2})",
        costs.total(c.model),
        c.model.epsilon,
        costs.io_cost(),
        costs.tlb_cost(c.model),
        costs.decode_cost(c.model)
    );
    println!("wall time:      {:.2?}", stats.elapsed);
    if let Some(rec) = recorder {
        // The recorder observes warmup as well as measurement — useful for
        // seeing the cold-start transient the Costs report excludes.
        println!();
        println!("{}", rec.with(|r| r.summary()));
    }
    Ok(())
}

/// `atp sweep`.
pub fn sweep_cmd(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &[])?;
    let c = common(&args)?;
    let trace: Vec<VirtPage> = workload(&args, c.virt, c.seed)?
        .take((c.warmup + c.accesses) as usize)
        .collect();
    println!("h\tios\ttlb_misses\ttotal(ε={})", c.model.epsilon);
    for shift in 0..=10u32 {
        let h = 1u64 << shift;
        if h > c.phys {
            break;
        }
        let mut m = Pipeline::from_stages(ClassicStages::new(ClassicConfig {
            huge_pages: h,
            phys_pages: c.phys,
            tlb_entries: c.tlb,
            tlb_policy: c.policy,
            ram_policy: c.policy,
            seed: c.seed,
        }));
        let s = atp_sim::run(&mut m, trace.iter().copied(), c.warmup, c.accesses);
        println!(
            "{h}\t{}\t{}\t{:.1}",
            s.costs.ios,
            s.costs.tlb_misses,
            s.costs.total(c.model)
        );
    }
    let mut z = build_manager("decoupled", &c)?;
    let s = atp_sim::run(z.as_mut(), trace.iter().copied(), c.warmup, c.accesses);
    println!(
        "Z\t{}\t{}\t{:.1}",
        s.costs.ios,
        s.costs.tlb_misses,
        s.costs.total(c.model)
    );
    Ok(())
}

/// `atp trace record|stats|mrc`.
pub fn trace_cmd(raw: &[String]) -> Result<(), ArgError> {
    let sub = raw
        .first()
        .ok_or_else(|| ArgError("trace expects record|stats|mrc".into()))?
        .clone();
    let rest = &raw[1..];
    match sub.as_str() {
        "record" => {
            let args = Args::parse(rest, &[])?;
            let c = common(&args)?;
            let out = args
                .get("out")
                .ok_or_else(|| ArgError("trace record requires --out FILE".into()))?;
            let pages: Vec<VirtPage> = workload(&args, c.virt, c.seed)?
                .take(c.accesses as usize)
                .collect();
            write_trace(Path::new(out), &pages)
                .map_err(|e| ArgError(format!("write failed: {e}")))?;
            println!("wrote {} accesses to {out}", pages.len());
            Ok(())
        }
        "stats" => {
            let args = Args::parse(rest, &[])?;
            let file = args
                .positional(0)
                .ok_or_else(|| ArgError("trace stats requires a FILE".into()))?;
            let pages =
                read_trace(Path::new(file)).map_err(|e| ArgError(format!("read failed: {e}")))?;
            let s = TraceStats::compute(&pages);
            println!("accesses:      {}", s.length);
            println!("unique pages:  {}", s.unique_pages);
            println!("page range:    {}..={}", s.min_page, s.max_page);
            println!("same-page rate:{:.4}", s.same_page_rate);
            println!("adjacent rate: {:.4}", s.adjacent_rate);
            println!("mean reuse:    {:.2}", s.mean_reuse);
            Ok(())
        }
        "mrc" => {
            let args = Args::parse(rest, &[])?;
            let file = args
                .positional(0)
                .ok_or_else(|| ArgError("trace mrc requires a FILE".into()))?;
            let pages =
                read_trace(Path::new(file)).map_err(|e| ArgError(format!("read failed: {e}")))?;
            let caps: Vec<usize> = match args.get("capacities") {
                Some(spec) => spec
                    .split(',')
                    .map(|s| parse_u64(s).map(|v| v as usize))
                    .collect::<Result<_, _>>()
                    .map_err(|_| ArgError("bad --capacities list".into()))?,
                None => (4..=20).map(|s| 1usize << s).collect(),
            };
            let max_cap = caps.iter().copied().max().unwrap_or(1024);
            let prof = ReuseProfile::compute(&pages, max_cap);
            println!("capacity\tlru_misses\tmiss_ratio");
            for (c, ratio) in prof.curve(&caps) {
                println!("{c}\t{}\t{ratio:.4}", prof.lru_misses(c));
            }
            println!("# cold misses: {}", prof.cold_misses);
            Ok(())
        }
        other => Err(ArgError(format!("unknown trace subcommand {other:?}"))),
    }
}

/// `atp calibrate`.
pub fn calibrate(raw: &[String]) -> Result<(), ArgError> {
    let args = Args::parse(raw, &["virtualized"])?;
    let device = args.get_or("device", "nvme");
    let mut m = match device {
        "nvme" => LatencyModel::nvme_native(),
        "disk" => LatencyModel::disk_native(),
        other => return Err(ArgError(format!("unknown device {other:?} (nvme|disk)"))),
    };
    if args.flag("virtualized") {
        m.walk_touches = 24.0;
    }
    m.walk_touch_ns = args.f64_or("walk-ns", m.walk_touch_ns)?;
    m.io_ns = args.f64_or("io-ns", m.io_ns)?;
    println!(
        "walk: {} touches × {} ns; io: {} ns",
        m.walk_touches, m.walk_touch_ns, m.io_ns
    );
    println!("ε = {:.6}", m.epsilon());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn simulate_runs_every_manager() {
        for mgr in ["classic", "decoupled", "sparse", "thp", "x", "y"] {
            simulate(&argv(&[
                "--manager",
                mgr,
                "--workload",
                "zipf",
                "--phys",
                "2^12",
                "--accesses",
                "10k",
                "--warmup",
                "10k",
                "--h",
                "8",
            ]))
            .unwrap_or_else(|e| panic!("{mgr}: {e}"));
        }
    }

    #[test]
    fn simulate_runs_every_workload() {
        for w in [
            "bimodal", "walk", "zipf", "uniform", "seq", "gups", "stencil",
        ] {
            simulate(&argv(&[
                "--manager",
                "classic",
                "--workload",
                w,
                "--phys",
                "2^12",
                "--accesses",
                "5k",
                "--warmup",
                "0",
                "--h",
                "4",
            ]))
            .unwrap_or_else(|e| panic!("{w}: {e}"));
        }
    }

    #[test]
    fn simulate_observe_flag() {
        for mgr in ["classic", "decoupled", "sparse", "thp", "x", "y"] {
            simulate(&argv(&[
                "--manager",
                mgr,
                "--workload",
                "zipf",
                "--phys",
                "2^12",
                "--accesses",
                "10k",
                "--warmup",
                "0",
                "--h",
                "8",
                "--observe",
            ]))
            .unwrap_or_else(|e| panic!("{mgr}: {e}"));
        }
    }

    #[test]
    fn simulate_rejects_bad_input() {
        assert!(simulate(&argv(&["--manager", "nope"])).is_err());
        assert!(simulate(&argv(&["--workload", "nope"])).is_err());
        assert!(simulate(&argv(&["--epsilon", "2.0"])).is_err());
        assert!(simulate(&argv(&["--policy", "nope"])).is_err());
    }

    #[test]
    fn sweep_runs_small() {
        sweep_cmd(&argv(&[
            "--workload",
            "uniform",
            "--phys",
            "2^10",
            "--accesses",
            "5k",
            "--warmup",
            "5k",
            "--tlb",
            "64",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join("atp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.atpt");
        let file_s = file.to_str().unwrap();
        trace_cmd(&argv(&[
            "record",
            "--workload",
            "zipf",
            "--out",
            file_s,
            "--accesses",
            "5k",
            "--phys",
            "2^12",
        ]))
        .unwrap();
        trace_cmd(&argv(&["stats", file_s])).unwrap();
        trace_cmd(&argv(&["mrc", file_s, "--capacities", "16,256,1k"])).unwrap();
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn trace_requires_subcommand_and_file() {
        assert!(trace_cmd(&[]).is_err());
        assert!(trace_cmd(&argv(&["stats"])).is_err());
        assert!(trace_cmd(&argv(&["record", "--workload", "zipf"])).is_err());
        assert!(trace_cmd(&argv(&["bogus"])).is_err());
    }

    #[test]
    fn calibrate_devices() {
        calibrate(&argv(&[])).unwrap();
        calibrate(&argv(&["--device", "disk"])).unwrap();
        calibrate(&argv(&["--device", "nvme", "--virtualized"])).unwrap();
        assert!(calibrate(&argv(&["--device", "floppy"])).is_err());
    }

    #[test]
    fn run_dispatches() {
        assert_eq!(crate::run(&argv(&["help"])), 0);
        assert_eq!(crate::run(&argv(&["bogus"])), 2);
        assert_eq!(crate::run(&[]), 2);
    }

    #[test]
    fn graph500_workload_via_cli() {
        simulate(&argv(&[
            "--manager",
            "classic",
            "--workload",
            "graph500",
            "--graph-scale",
            "10",
            "--phys",
            "2^12",
            "--accesses",
            "20k",
            "--warmup",
            "0",
            "--h",
            "4",
        ]))
        .unwrap();
    }
}
