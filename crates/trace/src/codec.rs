//! Trace encoding/decoding.

use atp_types::VirtPage;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ATPT";
const VERSION: u8 = 1;

/// Errors from trace IO.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The input is not an ATPT trace.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The payload ended before `count` entries were decoded.
    Truncated,
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::BadMagic => write!(f, "not an ATPT trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace payload truncated"),
        }
    }
}

impl std::error::Error for TraceError {}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// A cursor over the undecoded tail of the payload.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn get_u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.0.split_first()?;
        self.0 = rest;
        Some(b)
    }

    fn get_varint(&mut self) -> Option<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            if shift >= 64 {
                return None;
            }
            let b = self.get_u8()?;
            out |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Some(out);
            }
            shift += 7;
        }
    }
}

/// Encodes a page trace to bytes.
pub fn encode_trace(pages: &[VirtPage]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + pages.len() * 2);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.extend_from_slice(&(pages.len() as u64).to_le_bytes());
    let mut prev = 0i64;
    for p in pages {
        let cur = p.0 as i64;
        put_varint(&mut buf, zigzag(cur.wrapping_sub(prev)));
        prev = cur;
    }
    buf
}

/// Decodes a page trace from bytes.
pub fn decode_trace(data: &[u8]) -> Result<Vec<VirtPage>, TraceError> {
    if data.len() < 13 {
        return Err(TraceError::BadMagic);
    }
    if &data[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = data[4];
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    // atp-lint: allow(unwrap-policy, reason = "slice bounds hold: the 13-byte header was length-checked above")
    let count = u64::from_le_bytes(data[5..13].try_into().expect("8-byte slice"));
    let mut buf = Reader(&data[13..]);
    // Every entry takes at least one payload byte, so a header claiming
    // more entries than there are bytes is certainly truncated; bounding
    // the pre-allocation by the payload length keeps hostile headers from
    // reserving gigabytes before the first decode failure.
    let payload_len = data.len() - 13;
    let mut out = Vec::with_capacity(count.min(payload_len as u64) as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let delta = unzigzag(buf.get_varint().ok_or(TraceError::Truncated)?);
        prev = prev.wrapping_add(delta);
        out.push(VirtPage(prev as u64));
    }
    Ok(out)
}

/// Writes a trace to a file.
pub fn write_trace(path: &Path, pages: &[VirtPage]) -> Result<(), TraceError> {
    let bytes = encode_trace(pages);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads a trace from a file.
pub fn read_trace(path: &Path) -> Result<Vec<VirtPage>, TraceError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    decode_trace(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u64]) -> Vec<VirtPage> {
        ids.iter().map(|&i| VirtPage(i)).collect()
    }

    #[test]
    fn roundtrip_simple() {
        let t = pages(&[1, 2, 3, 100, 3, 0, u64::MAX / 4]);
        let enc = encode_trace(&t);
        assert_eq!(decode_trace(&enc).unwrap(), t);
    }

    #[test]
    fn roundtrip_empty() {
        let t = pages(&[]);
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn sequential_traces_compress_well() {
        let t: Vec<VirtPage> = (0..10_000u64).map(VirtPage).collect();
        let enc = encode_trace(&t);
        // Header 13 bytes + ~1 byte per delta.
        assert!(enc.len() < 13 + 10_000 + 100, "size {}", enc.len());
    }

    #[test]
    fn random_roundtrip() {
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(5, 0);
        let t: Vec<VirtPage> = (0..50_000)
            .map(|_| VirtPage(rng.next_below(1 << 40)))
            .collect();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode_trace(b"nope"), Err(TraceError::BadMagic)));
        assert!(matches!(
            decode_trace(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut enc = encode_trace(&pages(&[1]));
        enc[4] = 99;
        assert!(matches!(
            decode_trace(&enc),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let enc = encode_trace(&pages(&[1, 2, 3, 4, 5]));
        let cut = &enc[..enc.len() - 2];
        assert!(matches!(decode_trace(cut), Err(TraceError::Truncated)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("atp_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.atpt");
        let t = pages(&[9, 8, 7, 1 << 50]);
        write_trace(&path, &t).unwrap();
        assert_eq!(read_trace(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
