//! Trace encoding/decoding.
//!
//! Two wire versions share the `ATPT` magic:
//!
//! * **v1** — a flat page trace: u64 LE count, then one zigzag-varint
//!   page delta per access ([`encode_trace`]/[`decode_trace`]).
//! * **v2** — a multi-tenant op trace: u64 LE count, then one record per
//!   [`TenantOp`]. Each record leads with a varint whose low 2 bits are
//!   the kind (`0` access, `1` switch, `2` retire, `3` escaped access)
//!   and whose high bits carry the payload — the zigzag page delta for
//!   accesses (delta chain runs across control records), the ASID for
//!   switch/retire. Kind `3` escapes the rare access whose zigzag delta
//!   needs more than 62 bits: the full delta follows as its own varint.
//!
//! [`decode_ops`] accepts both: a v1 payload decodes as an all-access
//! stream (implicitly tenant [`atp_types::Asid::SINGLE`]), so every
//! pre-multi-tenant trace on disk keeps working. [`decode_trace`] stays
//! v1-strict — a flat page list cannot represent context switches, and
//! silently dropping them would corrupt an experiment.

use atp_types::{Asid, TenantOp, VirtPage};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ATPT";
const VERSION: u8 = 1;
const VERSION_V2: u8 = 2;

/// v2 record kinds, in the low 2 bits of each record's leading varint.
const KIND_ACCESS: u64 = 0;
const KIND_SWITCH: u64 = 1;
const KIND_RETIRE: u64 = 2;
const KIND_ACCESS_ESCAPE: u64 = 3;

/// Errors from trace IO.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The input is not an ATPT trace.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The payload ended before `count` entries were decoded.
    Truncated,
    /// A v2 record carries an out-of-range field (e.g. an ASID wider
    /// than 32 bits).
    BadRecord,
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::BadMagic => write!(f, "not an ATPT trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace payload truncated"),
            TraceError::BadRecord => write!(f, "trace record field out of range"),
        }
    }
}

impl std::error::Error for TraceError {}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// A cursor over the undecoded tail of the payload.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn get_u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.0.split_first()?;
        self.0 = rest;
        Some(b)
    }

    fn get_varint(&mut self) -> Option<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            if shift >= 64 {
                return None;
            }
            let b = self.get_u8()?;
            out |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Some(out);
            }
            shift += 7;
        }
    }
}

/// Encodes a page trace to bytes.
pub fn encode_trace(pages: &[VirtPage]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + pages.len() * 2);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.extend_from_slice(&(pages.len() as u64).to_le_bytes());
    let mut prev = 0i64;
    for p in pages {
        let cur = p.0 as i64;
        put_varint(&mut buf, zigzag(cur.wrapping_sub(prev)));
        prev = cur;
    }
    buf
}

/// Decodes a page trace from bytes.
pub fn decode_trace(data: &[u8]) -> Result<Vec<VirtPage>, TraceError> {
    if data.len() < 13 {
        return Err(TraceError::BadMagic);
    }
    if &data[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = data[4];
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    // atp-lint: allow(unwrap-policy, reason = "slice bounds hold: the 13-byte header was length-checked above")
    let count = u64::from_le_bytes(data[5..13].try_into().expect("8-byte slice"));
    let mut buf = Reader(&data[13..]);
    // Every entry takes at least one payload byte, so a header claiming
    // more entries than there are bytes is certainly truncated; bounding
    // the pre-allocation by the payload length keeps hostile headers from
    // reserving gigabytes before the first decode failure.
    let payload_len = data.len() - 13;
    let mut out = Vec::with_capacity(count.min(payload_len as u64) as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let delta = unzigzag(buf.get_varint().ok_or(TraceError::Truncated)?);
        prev = prev.wrapping_add(delta);
        out.push(VirtPage(prev as u64));
    }
    Ok(out)
}

/// Encodes a multi-tenant op trace to bytes (wire version 2).
pub fn encode_ops(ops: &[TenantOp]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + ops.len() * 2);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION_V2);
    buf.extend_from_slice(&(ops.len() as u64).to_le_bytes());
    let mut prev = 0i64;
    for op in ops {
        match *op {
            TenantOp::Access(p) => {
                let cur = p.0 as i64;
                let z = zigzag(cur.wrapping_sub(prev));
                prev = cur;
                if z < (1 << 62) {
                    put_varint(&mut buf, (z << 2) | KIND_ACCESS);
                } else {
                    put_varint(&mut buf, KIND_ACCESS_ESCAPE);
                    put_varint(&mut buf, z);
                }
            }
            TenantOp::Switch(a) => put_varint(&mut buf, ((a.0 as u64) << 2) | KIND_SWITCH),
            TenantOp::Retire(a) => put_varint(&mut buf, ((a.0 as u64) << 2) | KIND_RETIRE),
        }
    }
    buf
}

/// Decodes a multi-tenant op trace from bytes.
///
/// Accepts v2 natively and v1 as an all-access stream, so single-tenant
/// traces written before the multi-tenant format keep decoding.
pub fn decode_ops(data: &[u8]) -> Result<Vec<TenantOp>, TraceError> {
    if data.len() < 13 || &data[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = data[4];
    if version == VERSION {
        return Ok(decode_trace(data)?
            .into_iter()
            .map(TenantOp::Access)
            .collect());
    }
    if version != VERSION_V2 {
        return Err(TraceError::BadVersion(version));
    }
    // atp-lint: allow(unwrap-policy, reason = "slice bounds hold: the 13-byte header was length-checked above")
    let count = u64::from_le_bytes(data[5..13].try_into().expect("8-byte slice"));
    let mut buf = Reader(&data[13..]);
    // Same hostile-header guard as v1: every record costs ≥ 1 byte.
    let payload_len = data.len() - 13;
    let mut out = Vec::with_capacity(count.min(payload_len as u64) as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let tagged = buf.get_varint().ok_or(TraceError::Truncated)?;
        let kind = tagged & 0b11;
        let op = match kind {
            KIND_ACCESS | KIND_ACCESS_ESCAPE => {
                let z = if kind == KIND_ACCESS_ESCAPE {
                    if tagged != KIND_ACCESS_ESCAPE {
                        // High bits of an escape record are reserved.
                        return Err(TraceError::BadRecord);
                    }
                    buf.get_varint().ok_or(TraceError::Truncated)?
                } else {
                    tagged >> 2
                };
                prev = prev.wrapping_add(unzigzag(z));
                TenantOp::Access(VirtPage(prev as u64))
            }
            KIND_SWITCH => TenantOp::Switch(Asid(
                u32::try_from(tagged >> 2).map_err(|_| TraceError::BadRecord)?,
            )),
            _ => TenantOp::Retire(Asid(
                u32::try_from(tagged >> 2).map_err(|_| TraceError::BadRecord)?,
            )),
        };
        out.push(op);
    }
    Ok(out)
}

/// Writes a multi-tenant op trace to a file (wire version 2).
pub fn write_ops(path: &Path, ops: &[TenantOp]) -> Result<(), TraceError> {
    let bytes = encode_ops(ops);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads a multi-tenant op trace (v1 or v2) from a file.
pub fn read_ops(path: &Path) -> Result<Vec<TenantOp>, TraceError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    decode_ops(&data)
}

/// Writes a trace to a file.
pub fn write_trace(path: &Path, pages: &[VirtPage]) -> Result<(), TraceError> {
    let bytes = encode_trace(pages);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads a trace from a file.
pub fn read_trace(path: &Path) -> Result<Vec<VirtPage>, TraceError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    decode_trace(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u64]) -> Vec<VirtPage> {
        ids.iter().map(|&i| VirtPage(i)).collect()
    }

    #[test]
    fn roundtrip_simple() {
        let t = pages(&[1, 2, 3, 100, 3, 0, u64::MAX / 4]);
        let enc = encode_trace(&t);
        assert_eq!(decode_trace(&enc).unwrap(), t);
    }

    #[test]
    fn roundtrip_empty() {
        let t = pages(&[]);
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn sequential_traces_compress_well() {
        let t: Vec<VirtPage> = (0..10_000u64).map(VirtPage).collect();
        let enc = encode_trace(&t);
        // Header 13 bytes + ~1 byte per delta.
        assert!(enc.len() < 13 + 10_000 + 100, "size {}", enc.len());
    }

    #[test]
    fn random_roundtrip() {
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(5, 0);
        let t: Vec<VirtPage> = (0..50_000)
            .map(|_| VirtPage(rng.next_below(1 << 40)))
            .collect();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode_trace(b"nope"), Err(TraceError::BadMagic)));
        assert!(matches!(
            decode_trace(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut enc = encode_trace(&pages(&[1]));
        enc[4] = 99;
        assert!(matches!(
            decode_trace(&enc),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let enc = encode_trace(&pages(&[1, 2, 3, 4, 5]));
        let cut = &enc[..enc.len() - 2];
        assert!(matches!(decode_trace(cut), Err(TraceError::Truncated)));
    }

    #[test]
    fn ops_roundtrip_mixed() {
        let ops = vec![
            TenantOp::Switch(Asid(3)),
            TenantOp::Access(VirtPage(100)),
            TenantOp::Access(VirtPage(101)),
            TenantOp::Switch(Asid(u32::MAX)),
            TenantOp::Access(VirtPage(5)),
            TenantOp::Retire(Asid(3)),
            TenantOp::Access(VirtPage(1 << 50)),
        ];
        assert_eq!(decode_ops(&encode_ops(&ops)).unwrap(), ops);
    }

    #[test]
    fn ops_escape_path_roundtrips_extreme_deltas() {
        // Deltas whose zigzag needs ≥ 62 bits force the kind-3 escape.
        let ops = vec![
            TenantOp::Access(VirtPage(0)),
            TenantOp::Access(VirtPage(u64::MAX)),
            TenantOp::Access(VirtPage(1)),
            TenantOp::Access(VirtPage(u64::MAX / 2)),
        ];
        assert_eq!(decode_ops(&encode_ops(&ops)).unwrap(), ops);
    }

    #[test]
    fn ops_decode_accepts_v1_as_all_access() {
        let t = pages(&[7, 9, 9, 2]);
        let v1 = encode_trace(&t);
        let ops = decode_ops(&v1).unwrap();
        assert_eq!(ops, t.into_iter().map(TenantOp::Access).collect::<Vec<_>>());
    }

    #[test]
    fn trace_decode_stays_v1_strict() {
        // decode_trace cannot represent switches → must refuse v2.
        let enc = encode_ops(&[TenantOp::Access(VirtPage(1))]);
        assert!(matches!(decode_trace(&enc), Err(TraceError::BadVersion(2))));
    }

    #[test]
    fn ops_rejects_truncated() {
        let enc = encode_ops(&[
            TenantOp::Access(VirtPage(1)),
            TenantOp::Switch(Asid(1)),
            TenantOp::Access(VirtPage(2)),
        ]);
        assert!(matches!(
            decode_ops(&enc[..enc.len() - 1]),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn ops_delta_chain_spans_control_records() {
        // Access deltas chain across an interleaved Switch: encoding the
        // second access as a delta from the first keeps sequential
        // multi-tenant traces ~1 byte per record.
        let ops: Vec<TenantOp> = (0..1000u64)
            .flat_map(|i| {
                [
                    TenantOp::Switch(Asid((i % 3) as u32)),
                    TenantOp::Access(VirtPage(i)),
                ]
            })
            .collect();
        let enc = encode_ops(&ops);
        assert!(enc.len() < 13 + 2 * 1000 + 100, "size {}", enc.len());
        assert_eq!(decode_ops(&enc).unwrap(), ops);
    }

    #[test]
    fn ops_file_roundtrip() {
        let dir = std::env::temp_dir().join("atp_trace_test_ops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.atpt");
        let ops = vec![
            TenantOp::Switch(Asid(1)),
            TenantOp::Access(VirtPage(4)),
            TenantOp::Retire(Asid(1)),
        ];
        write_ops(&path, &ops).unwrap();
        assert_eq!(read_ops(&path).unwrap(), ops);
        // And a v1 file read through the ops door:
        write_trace(&path, &pages(&[4])).unwrap();
        assert_eq!(
            read_ops(&path).unwrap(),
            vec![TenantOp::Access(VirtPage(4))]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("atp_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.atpt");
        let t = pages(&[9, 8, 7, 1 << 50]);
        write_trace(&path, &t).unwrap();
        assert_eq!(read_trace(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
