//! Trace statistics: footprint, reuse, and locality summaries.

use atp_hash::{FxHashMap, FxHashSet};
use atp_types::VirtPage;

/// Summary statistics of a page trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Number of accesses.
    pub length: u64,
    /// Number of distinct pages (the touched set).
    pub unique_pages: u64,
    /// Smallest page id.
    pub min_page: u64,
    /// Largest page id.
    pub max_page: u64,
    /// Fraction of accesses whose page equals the previous access's page.
    pub same_page_rate: f64,
    /// Fraction of accesses within ±1 page of the previous access
    /// (spatial locality at the finest grain).
    pub adjacent_rate: f64,
    /// Mean accesses per touched page (temporal reuse).
    pub mean_reuse: f64,
}

/// Huge-page utilization: how much of each size-`h` run a trace actually
/// touches — the paper's "reduced RAM utilization" cost (§1, drawback 2)
/// made measurable. A physical huge page pins all `h` pages resident; the
/// utilization says how many of those ever earn their keep.
#[derive(Clone, Debug, PartialEq)]
pub struct HugeUtilization {
    /// Huge-page size `h` used for the analysis.
    pub huge_pages: u64,
    /// Number of distinct huge pages touched.
    pub huge_touched: u64,
    /// Mean fraction of each touched huge page's constituents that were
    /// themselves touched (1.0 = perfectly dense).
    pub mean_fraction: f64,
    /// Fraction of touched huge pages with exactly one touched constituent
    /// (the pathological single-hot-page case of Figure 1a's cold region).
    pub singleton_fraction: f64,
}

impl HugeUtilization {
    /// Computes utilization of size-`h` huge pages over `trace`.
    ///
    /// # Panics
    /// Panics if `h` is not a power of two.
    pub fn compute(trace: &[VirtPage], h: u64) -> Self {
        assert!(h.is_power_of_two(), "h must be a power of two");
        // Deterministic hasher: `values()` iteration order feeds the
        // float summation below, so a RandomState map would make
        // `mean_fraction` differ in the last bits across runs.
        let mut per_huge: FxHashMap<u64, FxHashSet<u64>> = FxHashMap::default();
        for p in trace {
            per_huge.entry(p.0 / h).or_default().insert(p.0 % h);
        }
        let huge_touched = per_huge.len() as u64;
        if huge_touched == 0 {
            return Self {
                huge_pages: h,
                huge_touched: 0,
                mean_fraction: 0.0,
                singleton_fraction: 0.0,
            };
        }
        let mut frac_sum = 0.0;
        let mut singletons = 0u64;
        for set in per_huge.values() {
            frac_sum += set.len() as f64 / h as f64;
            if set.len() == 1 {
                singletons += 1;
            }
        }
        Self {
            huge_pages: h,
            huge_touched,
            mean_fraction: frac_sum / huge_touched as f64,
            singleton_fraction: singletons as f64 / huge_touched as f64,
        }
    }
}

impl TraceStats {
    /// Computes statistics over a trace.
    pub fn compute(trace: &[VirtPage]) -> Self {
        if trace.is_empty() {
            return Self {
                length: 0,
                unique_pages: 0,
                min_page: 0,
                max_page: 0,
                same_page_rate: 0.0,
                adjacent_rate: 0.0,
                mean_reuse: 0.0,
            };
        }
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        let mut min_page = u64::MAX;
        let mut max_page = 0u64;
        let mut same = 0u64;
        let mut adjacent = 0u64;
        let mut prev: Option<u64> = None;
        for p in trace {
            *counts.entry(p.0).or_insert(0) += 1;
            min_page = min_page.min(p.0);
            max_page = max_page.max(p.0);
            if let Some(q) = prev {
                if p.0 == q {
                    same += 1;
                }
                if p.0.abs_diff(q) <= 1 {
                    adjacent += 1;
                }
            }
            prev = Some(p.0);
        }
        let length = trace.len() as u64;
        let unique = counts.len() as u64;
        Self {
            length,
            unique_pages: unique,
            min_page,
            max_page,
            same_page_rate: same as f64 / (length - 1).max(1) as f64,
            adjacent_rate: adjacent as f64 / (length - 1).max(1) as f64,
            mean_reuse: length as f64 / unique as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u64]) -> Vec<VirtPage> {
        ids.iter().map(|&i| VirtPage(i)).collect()
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.length, 0);
        assert_eq!(s.unique_pages, 0);
    }

    #[test]
    fn counts_and_bounds() {
        let s = TraceStats::compute(&pages(&[5, 5, 6, 100, 5]));
        assert_eq!(s.length, 5);
        assert_eq!(s.unique_pages, 3);
        assert_eq!(s.min_page, 5);
        assert_eq!(s.max_page, 100);
        assert!((s.mean_reuse - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn locality_rates() {
        // Transitions: 5→5 same+adj; 5→6 adj; 6→100 neither; 100→5 neither.
        let s = TraceStats::compute(&pages(&[5, 5, 6, 100, 5]));
        assert!((s.same_page_rate - 0.25).abs() < 1e-9);
        assert!((s.adjacent_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sequential_trace_is_fully_adjacent() {
        let t: Vec<VirtPage> = (0..100u64).map(VirtPage).collect();
        let s = TraceStats::compute(&t);
        assert_eq!(s.adjacent_rate, 1.0);
        assert_eq!(s.same_page_rate, 0.0);
        assert_eq!(s.unique_pages, 100);
    }

    #[test]
    fn sequential_trace_has_full_huge_utilization() {
        let t: Vec<VirtPage> = (0..128u64).map(VirtPage).collect();
        let u = HugeUtilization::compute(&t, 8);
        assert_eq!(u.huge_touched, 16);
        assert_eq!(u.mean_fraction, 1.0);
        assert_eq!(u.singleton_fraction, 0.0);
    }

    #[test]
    fn strided_trace_wastes_huge_pages() {
        // Stride 8 with h=8: one page per huge page.
        let t: Vec<VirtPage> = (0..64u64).map(|i| VirtPage(i * 8)).collect();
        let u = HugeUtilization::compute(&t, 8);
        assert_eq!(u.huge_touched, 64);
        assert!((u.mean_fraction - 0.125).abs() < 1e-12);
        assert_eq!(u.singleton_fraction, 1.0);
    }

    #[test]
    fn huge_utilization_of_empty_trace() {
        let u = HugeUtilization::compute(&[], 8);
        assert_eq!(u.huge_touched, 0);
        assert_eq!(u.mean_fraction, 0.0);
    }

    #[test]
    fn h_one_is_always_dense() {
        let t = pages(&[3, 9, 3, 100]);
        let u = HugeUtilization::compute(&t, 1);
        assert_eq!(u.mean_fraction, 1.0);
        assert_eq!(u.singleton_fraction, 1.0);
    }
}
