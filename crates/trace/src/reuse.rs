//! Reuse-distance analysis and LRU miss-ratio curves (Mattson et al.).
//!
//! The *reuse distance* of an access is the number of distinct pages touched
//! since the previous access to the same page (∞ for first touches). Because
//! LRU is a stack algorithm, one pass over the trace yields its miss count
//! at **every** cache size simultaneously: an access hits in a cache of
//! capacity `c` iff its reuse distance is `< c`. Experiments use the curve
//! to place `P` relative to the working set (e.g. the paper's Fig-1c cache
//! "slightly below" the touched set).
//!
//! Implementation: classic O(n log n) — a Fenwick tree counts "live" last
//! positions above the previous occurrence of the page.

use atp_hash::FxHashMap;
use atp_types::VirtPage;

/// A Fenwick (binary indexed) tree over positions.
#[derive(Clone, Debug)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over positions `[0, i]` (0-based, inclusive).
    fn prefix(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Reuse-distance histogram plus the derived LRU miss-ratio curve.
///
/// ```
/// use atp_trace::ReuseProfile;
/// use atp_types::VirtPage;
///
/// // A cyclic scan of 4 pages: every non-cold access has distance 3.
/// let trace: Vec<VirtPage> = (0..40).map(|i| VirtPage(i % 4)).collect();
/// let profile = ReuseProfile::compute(&trace, 16);
/// assert_eq!(profile.cold_misses, 4);
/// assert_eq!(profile.lru_misses(4), 4);   // fits: compulsory only
/// assert_eq!(profile.lru_misses(3), 40);  // one short: total thrash
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with reuse distance exactly `d`
    /// (capped at `histogram.len()-1`; the last bucket also absorbs larger
    /// finite distances).
    pub histogram: Vec<u64>,
    /// Number of first touches (infinite distance = compulsory misses).
    pub cold_misses: u64,
    /// Total accesses.
    pub total: u64,
}

impl ReuseProfile {
    /// Computes the profile over `trace`. `max_distance` caps the histogram
    /// resolution (distances beyond it land in the final bucket).
    pub fn compute(trace: &[VirtPage], max_distance: usize) -> Self {
        let n = trace.len();
        let mut fenwick = Fenwick::new(n);
        let mut last_pos: FxHashMap<u64, usize> = FxHashMap::default();
        let mut histogram = vec![0u64; max_distance + 1];
        let mut cold = 0u64;

        for (i, p) in trace.iter().enumerate() {
            match last_pos.get(&p.0) {
                None => cold += 1,
                Some(&prev) => {
                    // Distinct pages accessed strictly between prev and i =
                    // live markers in (prev, i).
                    let between =
                        fenwick.prefix(i.saturating_sub(1)) as u64 - fenwick.prefix(prev) as u64;
                    let d = (between as usize).min(max_distance);
                    histogram[d] += 1;
                    // The page's marker moves from prev to i.
                    fenwick.add(prev, -1);
                }
            }
            fenwick.add(i, 1);
            last_pos.insert(p.0, i);
        }

        Self {
            histogram,
            cold_misses: cold,
            total: n as u64,
        }
    }

    /// LRU misses at cache capacity `c` (in pages): cold misses plus all
    /// accesses with reuse distance ≥ c. Exact for `c ≤ max_distance`.
    pub fn lru_misses(&self, c: usize) -> u64 {
        let reuse_hits: u64 = self
            .histogram
            .iter()
            .take(c.min(self.histogram.len()))
            .sum();
        self.total - reuse_hits
    }

    /// LRU miss *ratio* at capacity `c`.
    pub fn lru_miss_ratio(&self, c: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.lru_misses(c) as f64 / self.total as f64
        }
    }

    /// The whole miss-ratio curve at the given capacities.
    pub fn curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.lru_miss_ratio(c)))
            .collect()
    }

    /// Smallest capacity whose miss ratio is at most `target` (None if even
    /// the full histogram resolution can't reach it) — the "working set at
    /// tolerance target".
    pub fn capacity_for_miss_ratio(&self, target: f64) -> Option<usize> {
        (1..self.histogram.len()).find(|&c| self.lru_miss_ratio(c) <= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_replacement::{CacheSim, Lru};

    fn pages(ids: &[u64]) -> Vec<VirtPage> {
        ids.iter().map(|&i| VirtPage(i)).collect()
    }

    fn lru_misses_direct(trace: &[VirtPage], cap: usize) -> u64 {
        let mut c = CacheSim::new(cap, Lru::new(cap));
        let mut misses = 0;
        for p in trace {
            misses += u64::from(!c.access(p.0).is_hit());
        }
        misses
    }

    #[test]
    fn textbook_distances() {
        // a b c a: reuse distance of final a is 2 (b, c).
        let t = pages(&[1, 2, 3, 1]);
        let prof = ReuseProfile::compute(&t, 10);
        assert_eq!(prof.cold_misses, 3);
        assert_eq!(prof.histogram[2], 1);
        assert_eq!(prof.total, 4);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let t = pages(&[7, 7, 7]);
        let prof = ReuseProfile::compute(&t, 4);
        assert_eq!(prof.cold_misses, 1);
        assert_eq!(prof.histogram[0], 2);
    }

    #[test]
    fn matches_real_lru_at_every_capacity() {
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(3, 0);
        let t: Vec<VirtPage> = (0..4000).map(|_| VirtPage(rng.next_below(128))).collect();
        let prof = ReuseProfile::compute(&t, 256);
        for cap in [1usize, 2, 5, 16, 33, 64, 100, 128] {
            assert_eq!(
                prof.lru_misses(cap),
                lru_misses_direct(&t, cap),
                "capacity {cap}"
            );
        }
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(9, 1);
        let t: Vec<VirtPage> = (0..5000)
            .map(|_| VirtPage((rng.next_f64().powi(2) * 400.0) as u64))
            .collect();
        let prof = ReuseProfile::compute(&t, 512);
        let curve = prof.curve(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 400]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "MRC must be nonincreasing: {curve:?}");
        }
    }

    #[test]
    fn capacity_for_miss_ratio_finds_working_set() {
        // Cyclic scan over 50 pages: miss ratio snaps from 1 to ~0 at c=50.
        let t: Vec<VirtPage> = (0..5000u64).map(|i| VirtPage(i % 50)).collect();
        let prof = ReuseProfile::compute(&t, 128);
        assert_eq!(prof.capacity_for_miss_ratio(0.05), Some(50));
        assert!(prof.lru_miss_ratio(49) > 0.98);
    }

    #[test]
    fn cold_misses_equal_unique_pages() {
        let t = pages(&[5, 1, 5, 2, 1, 9, 9, 5]);
        let prof = ReuseProfile::compute(&t, 8);
        assert_eq!(prof.cold_misses, 4);
    }

    #[test]
    fn empty_trace() {
        let prof = ReuseProfile::compute(&[], 4);
        assert_eq!(prof.total, 0);
        assert_eq!(prof.lru_miss_ratio(10), 0.0);
    }
}
