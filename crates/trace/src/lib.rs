//! Compact binary page traces.
//!
//! Traces drive the simulator; the paper's graph500 experiment replays a
//! recorded trace, and our generators can be captured to disk for exact
//! replays across machines. The format is built for page streams:
//!
//! ```text
//! magic "ATPT" | version u8 | count u64 LE | payload
//! ```
//!
//! The payload is a zig-zag varint **delta** stream: consecutive page ids
//! are close for the sequential bursts real traces exhibit, so deltas are
//! mostly 1–2 bytes. Encoding and decoding are exact for the full `u64`
//! page-id range.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod reuse;
pub mod stats;

pub use codec::{
    decode_ops, decode_trace, encode_ops, encode_trace, read_ops, read_trace, write_ops,
    write_trace, TraceError,
};
pub use reuse::ReuseProfile;
pub use stats::{HugeUtilization, TraceStats};
