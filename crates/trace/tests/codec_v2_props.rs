//! Property tests for the v2 (multi-tenant op) trace codec, on the
//! `atp-check` harness: encode→decode is the identity on arbitrary op
//! sequences, every v1 trace decodes through the ops door as the same
//! access stream (backward compatibility), and no truncated or fuzzed
//! input may panic the decoder.

use atp_check::{check, check_config, ensure, ensure_eq, u64s, vecs, Config};
use atp_trace::{decode_ops, encode_ops, encode_trace};
use atp_types::{Asid, TenantOp, VirtPage};

/// Decodes three u64 lanes into an op: 0..=7 → control records (switch
/// or retire on a small ASID pool so retirements can hit live tenants),
/// otherwise an access with a full-width page id.
fn op_from(kind: u64, asid: u64, page: u64) -> TenantOp {
    match kind {
        0..=3 => TenantOp::Switch(Asid((asid % 6) as u32)),
        4..=7 => TenantOp::Retire(Asid((asid % 6) as u32)),
        _ => TenantOp::Access(VirtPage(page)),
    }
}

fn ops_from(raw: &[(u64, u64, u64)]) -> Vec<TenantOp> {
    raw.iter().map(|&(k, a, p)| op_from(k, a, p)).collect()
}

#[test]
fn ops_roundtrip_identity_on_arbitrary_sequences() {
    // Full-width page ids exercise the zigzag chain *and* the kind-3
    // escape path (deltas whose zigzag needs more than 62 bits).
    let gen = vecs(
        (u64s(0..=31), u64s(0..=u64::MAX), u64s(0..=u64::MAX)),
        0..=300,
    );
    check(
        "ops_roundtrip_identity_on_arbitrary_sequences",
        &gen,
        |raw| {
            let ops = ops_from(raw);
            match decode_ops(&encode_ops(&ops)) {
                Ok(d) => ensure_eq!(d, ops, "v2 codec round-trip"),
                Err(e) => return Err(format!("decode of valid v2 encoding failed: {e}")),
            }
            Ok(())
        },
    );
}

#[test]
fn v1_traces_decode_as_the_same_access_stream() {
    // Backward compatibility: any v1 page trace, read through
    // decode_ops, is the identical sequence wrapped in TenantOp::Access.
    let gen = vecs(u64s(0..=u64::MAX), 0..=300);
    check("v1_traces_decode_as_the_same_access_stream", &gen, |ids| {
        let pages: Vec<VirtPage> = ids.iter().map(|&i| VirtPage(i)).collect();
        let v1 = encode_trace(&pages);
        let ops = match decode_ops(&v1) {
            Ok(o) => o,
            Err(e) => return Err(format!("v1 decode through ops door failed: {e}")),
        };
        let want: Vec<TenantOp> = pages.into_iter().map(TenantOp::Access).collect();
        ensure_eq!(ops, want, "v1 compatibility");
        Ok(())
    });
}

#[test]
fn every_strict_v2_prefix_errors_without_panicking() {
    let gen = vecs(
        (u64s(0..=31), u64s(0..=u64::MAX), u64s(0..=u64::MAX)),
        1..=50,
    );
    check(
        "every_strict_v2_prefix_errors_without_panicking",
        &gen,
        |raw| {
            let enc = encode_ops(&ops_from(raw));
            for cut in 0..enc.len() {
                let r = std::panic::catch_unwind(|| decode_ops(&enc[..cut]));
                let decoded = match r {
                    Ok(d) => d,
                    Err(_) => return Err(format!("decoder panicked on prefix of {cut} bytes")),
                };
                ensure!(
                    decoded.is_err(),
                    "strict prefix of {cut}/{} bytes decoded successfully",
                    enc.len()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn arbitrary_bytes_never_panic_the_ops_decoder() {
    let gen = vecs(u64s(0..=255), 0..=200);
    let cfg = Config::for_property("arbitrary_bytes_never_panic_the_ops_decoder").with_cases(128);
    check_config(
        "arbitrary_bytes_never_panic_the_ops_decoder",
        &gen,
        &cfg,
        |bytes| {
            let data: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            let r = std::panic::catch_unwind(|| decode_ops(&data));
            ensure!(
                r.is_ok(),
                "ops decoder panicked on {} fuzz bytes",
                data.len()
            );
            Ok(())
        },
    );
}

#[test]
fn corrupted_v2_bytes_never_panic() {
    // Flip every position of a valid v2 encoding through fuzzed (pos,
    // val): decode may fail or drift, but must not panic.
    let gen = (
        vecs(
            (u64s(0..=31), u64s(0..=u64::MAX), u64s(0..=u64::MAX)),
            0..=40,
        ),
        u64s(0..=u64::MAX),
        u64s(0..=255),
    );
    check("corrupted_v2_bytes_never_panic", &gen, |(raw, pos, val)| {
        let mut enc = encode_ops(&ops_from(raw));
        if enc.is_empty() {
            return Ok(());
        }
        let pos = (*pos % enc.len() as u64) as usize;
        enc[pos] = *val as u8;
        let r = std::panic::catch_unwind(|| decode_ops(&enc));
        ensure!(
            r.is_ok(),
            "ops decoder panicked after corrupting byte {pos}"
        );
        Ok(())
    });
}
