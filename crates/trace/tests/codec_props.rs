//! Property tests for the trace codec, on the `atp-check` harness:
//! encode→decode is the identity on arbitrary page sequences, and *no*
//! input — truncated, corrupted, or outright random — may panic the
//! decoder; malformed inputs must return a `TraceError`.

use atp_check::{check, check_config, ensure, ensure_eq, u64s, usizes, vecs, Config};
use atp_trace::{decode_trace, encode_trace, TraceError};
use atp_types::VirtPage;

fn pages(ids: &[u64]) -> Vec<VirtPage> {
    ids.iter().map(|&i| VirtPage(i)).collect()
}

#[test]
fn roundtrip_identity_on_arbitrary_sequences() {
    // Full-width page ids exercise the zigzag delta encoding in both
    // directions, including wrap-around deltas.
    let gen = vecs(u64s(0..=u64::MAX), 0..=300);
    check("roundtrip_identity_on_arbitrary_sequences", &gen, |ids| {
        let t = pages(ids);
        match decode_trace(&encode_trace(&t)) {
            Ok(d) => ensure_eq!(d, t, "codec round-trip"),
            Err(e) => return Err(format!("decode of valid encoding failed: {e}")),
        }
        Ok(())
    });
}

#[test]
fn every_strict_prefix_errors_without_panicking() {
    // Truncation at *any* byte boundary is an error, never a panic and
    // never a silently short trace.
    let gen = vecs(u64s(0..=u64::MAX), 1..=50);
    check(
        "every_strict_prefix_errors_without_panicking",
        &gen,
        |ids| {
            let enc = encode_trace(&pages(ids));
            for cut in 0..enc.len() {
                let r = std::panic::catch_unwind(|| decode_trace(&enc[..cut]));
                let decoded = match r {
                    Ok(d) => d,
                    Err(_) => return Err(format!("decoder panicked on prefix of {cut} bytes")),
                };
                ensure!(
                    decoded.is_err(),
                    "strict prefix of {cut}/{} bytes decoded successfully",
                    enc.len()
                );
            }
            Ok(())
        },
    );
}

#[test]
fn arbitrary_bytes_never_panic_the_decoder() {
    let gen = vecs(u64s(0..=255), 0..=200);
    let cfg = Config::for_property("arbitrary_bytes_never_panic_the_decoder").with_cases(128);
    check_config(
        "arbitrary_bytes_never_panic_the_decoder",
        &gen,
        &cfg,
        |bytes| {
            let data: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            let r = std::panic::catch_unwind(|| decode_trace(&data));
            ensure!(r.is_ok(), "decoder panicked on {} fuzz bytes", data.len());
            Ok(())
        },
    );
}

#[test]
fn corrupted_headers_never_panic() {
    // Flip every single byte of a valid encoding: decode may fail or may
    // (for payload flips) produce a different trace, but must not panic.
    let gen = (
        vecs(u64s(0..=u64::MAX), 0..=40),
        usizes(0..=u64::MAX as usize),
        u64s(0..=255),
    );
    check("corrupted_headers_never_panic", &gen, |(ids, pos, val)| {
        let mut enc = encode_trace(&pages(ids));
        if enc.is_empty() {
            return Ok(());
        }
        let pos = *pos % enc.len();
        enc[pos] = *val as u8;
        let r = std::panic::catch_unwind(|| decode_trace(&enc));
        ensure!(r.is_ok(), "decoder panicked after corrupting byte {pos}");
        Ok(())
    });
}

#[test]
fn hostile_count_header_is_rejected_cheaply() {
    // A 13-byte header claiming u64::MAX entries with an empty payload:
    // must fail with Truncated (the payload can't possibly hold them) and
    // must not pre-allocate for the claimed count.
    let mut evil = Vec::new();
    evil.extend_from_slice(b"ATPT");
    evil.push(1);
    evil.extend_from_slice(&u64::MAX.to_le_bytes());
    match decode_trace(&evil) {
        Err(TraceError::Truncated) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    // Same with one payload byte and a still-absurd count.
    evil.push(0x00);
    evil[5..13].copy_from_slice(&(1u64 << 40).to_le_bytes());
    match decode_trace(&evil) {
        Err(TraceError::Truncated) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}
