//! The huge-page decoupling scheme (Section 3).
//!
//! [`DecouplingScheme`] wires a [`RamAllocator`] to the TLB encoding:
//!
//! * it exposes `ram_insert` / `ram_evict` for the RAM-replacement policy's
//!   changes to the active set `A`,
//! * it maintains the **shadow table** of ψ-values — one [`TlbValue`] per
//!   virtual huge page with at least one resident constituent — so that
//!   every update is O(1) (this is exactly the hash table sketched in the
//!   proof of Theorem 1),
//! * it provides `psi(u)` for TLB fills and the pure decoding function
//!   `decode(v, ψ)` of eq. (4),
//! * it tracks the failure set `F` of pages the allocator could not place.
//!
//! The scheme is oblivious to the replacement policies, and they to it —
//! the separation the paper's framework requires.

use crate::alloc::{PagingFailure, RamAllocator};
use crate::encoding::TlbValue;
use crate::params::hmax_for;
use atp_hash::{FxHashMap, FxHashSet};
use atp_types::{HugePageGeometry, PhysPage, VirtHugePage, VirtPage};

/// Lifetime statistics of a decoupling scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Successful placements.
    pub placements: u64,
    /// Paging failures ever observed.
    pub failures: u64,
    /// Evictions processed.
    pub evictions: u64,
}

/// A huge-page decoupling scheme over allocator `A`.
///
/// ```
/// use atp_core::{DecouplingScheme, IcebergAlloc};
/// use atp_types::VirtPage;
///
/// let alloc = IcebergAlloc::with_geometry(64, 8, 4, 42);
/// let mut scheme = DecouplingScheme::new(alloc, 64); // w = 64 bits
/// assert_eq!(scheme.hmax(), 8); // 5-bit codes → 8 pages per TLB value
///
/// let v = VirtPage(19);
/// let frame = scheme.ram_insert(v).unwrap();
/// let psi = scheme.psi(scheme.geometry().huge_of(v));
/// assert_eq!(scheme.decode(v, &psi), Some(frame)); // eq. (4)
/// scheme.ram_evict(v);
/// assert_eq!(scheme.decode(v, &scheme.psi(scheme.geometry().huge_of(v))), None);
/// ```
#[derive(Clone, Debug)]
pub struct DecouplingScheme<A: RamAllocator> {
    alloc: A,
    geom: HugePageGeometry,
    bits: u32,
    hmax: u64,
    w: u32,
    shadow: FxHashMap<VirtHugePage, TlbValue>,
    failed: FxHashSet<VirtPage>,
    stats: SchemeStats,
}

impl<A: RamAllocator> DecouplingScheme<A> {
    /// Creates a scheme for `w`-bit TLB values, choosing the largest
    /// power-of-two `hmax` whose codes fit: `hmax = ⌊w / bits⌋` rounded down
    /// to a power of two.
    pub fn new(alloc: A, w: u32) -> Self {
        let bits = alloc.bits_per_code();
        let hmax = hmax_for(w, bits);
        Self::with_hmax(alloc, w, hmax)
    }

    /// Creates a scheme with an explicit `hmax` (must fit in `w` bits).
    ///
    /// # Panics
    /// Panics if `hmax` is not a power of two or `hmax · bits > w`.
    pub fn with_hmax(alloc: A, w: u32, hmax: u64) -> Self {
        let bits = alloc.bits_per_code();
        assert!(hmax.is_power_of_two(), "hmax must be a power of two");
        assert!(
            hmax * bits as u64 <= w as u64,
            "hmax={hmax} codes of {bits} bits exceed w={w}"
        );
        Self {
            alloc,
            // atp-lint: allow(unwrap-policy, reason = "constructor contract: documented # Panics on invalid (non-power-of-two) huge-page config")
            geom: HugePageGeometry::new(hmax).expect("power of two"),
            bits,
            hmax,
            w,
            shadow: FxHashMap::default(),
            failed: FxHashSet::default(),
            stats: SchemeStats::default(),
        }
    }

    /// Maximum huge-page size this scheme supports.
    #[inline]
    pub fn hmax(&self) -> u64 {
        self.hmax
    }

    /// Bits per slot code.
    #[inline]
    pub fn bits_per_code(&self) -> u32 {
        self.bits
    }

    /// TLB value width `w`.
    #[inline]
    pub fn w(&self) -> u32 {
        self.w
    }

    /// Huge-page geometry (`r(v)` etc.).
    #[inline]
    pub fn geometry(&self) -> HugePageGeometry {
        self.geom
    }

    /// The underlying allocator.
    #[inline]
    pub fn allocator(&self) -> &A {
        &self.alloc
    }

    /// Lifetime statistics.
    #[inline]
    pub fn stats(&self) -> SchemeStats {
        self.stats
    }

    /// Current size of the failure set `F`.
    #[inline]
    pub fn failed_count(&self) -> usize {
        self.failed.len()
    }

    /// Whether `v` is currently experiencing a paging failure.
    #[inline]
    pub fn is_failed(&self, v: VirtPage) -> bool {
        self.failed.contains(&v)
    }

    /// Handles the RAM-replacement policy adding `v` to the active set.
    ///
    /// On success, the shadow ψ-value of `v`'s huge page is updated and the
    /// assigned frame returned. On failure, `v` joins `F` (until evicted)
    /// and the caller must service accesses to it out-of-band.
    ///
    /// Returns an error if `v` is already active (policy bug) — failed pages
    /// count as active.
    pub fn ram_insert(&mut self, v: VirtPage) -> Result<PhysPage, PagingFailure> {
        assert!(
            !self.failed.contains(&v),
            "page {v:?} inserted while failed"
        );
        match self.alloc.place(v) {
            Ok(pl) => {
                self.stats.placements += 1;
                let u = self.geom.huge_of(v);
                let idx = self.geom.index_within(v) as u32;
                let (hmax, bits) = (self.hmax as u32, self.bits);
                self.shadow
                    .entry(u)
                    .or_insert_with(|| TlbValue::new(hmax, bits))
                    .set(idx, pl.code);
                Ok(pl.frame)
            }
            Err(f) => {
                self.stats.failures += 1;
                self.failed.insert(v);
                Err(f)
            }
        }
    }

    /// Handles the RAM-replacement policy removing `v` from the active set.
    /// Returns the freed frame (or `None` if `v` was failed or absent).
    pub fn ram_evict(&mut self, v: VirtPage) -> Option<PhysPage> {
        self.stats.evictions += 1;
        if self.failed.remove(&v) {
            return None;
        }
        let frame = self.alloc.free(v)?;
        let u = self.geom.huge_of(v);
        let idx = self.geom.index_within(v) as u32;
        if let Some(value) = self.shadow.get_mut(&u) {
            value.set(idx, crate::encoding::SlotCode::ABSENT);
            if value.is_all_absent() {
                self.shadow.remove(&u);
            }
        }
        Some(frame)
    }

    /// The current ψ-value for huge page `u` (all-absent if no constituent
    /// is resident). Cloned for insertion into a TLB.
    pub fn psi(&self, u: VirtHugePage) -> TlbValue {
        self.shadow
            .get(&u)
            .cloned()
            .unwrap_or_else(|| TlbValue::new(self.hmax as u32, self.bits))
    }

    /// The TLB-decoding function `f(v, ψ)` of eq. (4): returns `φ(v)` if the
    /// value encodes `v` as resident, else `None`. Pure in `(v, ψ)` given
    /// the scheme's fixed random bits.
    pub fn decode(&self, v: VirtPage, psi: &TlbValue) -> Option<PhysPage> {
        let idx = self.geom.index_within(v) as u32;
        self.alloc.decode(v, psi.get(idx))
    }

    /// Direct translation via the shadow table (what a page-table walk would
    /// return): `φ(v)` if placed.
    pub fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        self.alloc.frame_of(v)
    }

    /// Current slot code of `v` ([`crate::encoding::SlotCode::ABSENT`] if
    /// not placed), for incremental TLB-value maintenance.
    pub fn code_of(&self, v: VirtPage) -> crate::encoding::SlotCode {
        self.alloc.code_of(v)
    }

    /// Index of `v` within its huge page, as a `u32` for `TlbValue` access.
    pub fn index_within(&self, v: VirtPage) -> u32 {
        self.geom.index_within(v) as u32
    }

    /// Verifies eq. (4) plus injectivity over the entire current state;
    /// used by tests and debug assertions. O(resident).
    pub fn check_invariants(&self) {
        let mut frames = FxHashSet::default();
        for (v, frame) in self.alloc.iter_placed() {
            assert!(frames.insert(frame.0), "φ not injective at frame {frame:?}");
            let u = self.geom.huge_of(v);
            let psi = self
                .shadow
                .get(&u)
                .unwrap_or_else(|| panic!("placed page {v:?} missing shadow entry"));
            assert_eq!(
                self.decode(v, psi),
                Some(frame),
                "decode mismatch for {v:?}"
            );
        }
        // Every shadow code decodes to the frame of its constituent page,
        // and absent codes correspond to non-resident pages.
        for (&u, psi) in &self.shadow {
            for i in 0..self.hmax as u32 {
                let v = self.geom.constituent(u, i as u64);
                match self.alloc.frame_of(v) {
                    Some(frame) => assert_eq!(self.decode(v, psi), Some(frame)),
                    None => assert_eq!(self.decode(v, psi), None, "ghost code for {v:?}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{FullyAssociativeAlloc, IcebergAlloc, OneChoiceAlloc};
    use atp_hash::CounterRng;

    fn scheme_iceberg() -> DecouplingScheme<IcebergAlloc> {
        DecouplingScheme::new(IcebergAlloc::with_geometry(64, 8, 4, 5), 64)
    }

    #[test]
    fn hmax_derivation() {
        // Iceberg 64×(8,4): codes need ceil(log2(1+8+8)) = 5 bits → hmax = 8
        // codes in w=64 → floor(64/5)=12 → power of two 8.
        let s = scheme_iceberg();
        assert_eq!(s.bits_per_code(), 5);
        assert_eq!(s.hmax(), 8);
    }

    #[test]
    #[should_panic(expected = "exceed w")]
    fn oversized_hmax_rejected() {
        DecouplingScheme::with_hmax(IcebergAlloc::with_geometry(64, 8, 4, 5), 16, 8);
    }

    #[test]
    fn insert_decode_evict_roundtrip() {
        let mut s = scheme_iceberg();
        let v = VirtPage(19);
        let frame = s.ram_insert(v).unwrap();
        let u = s.geometry().huge_of(v);
        let psi = s.psi(u);
        assert_eq!(s.decode(v, &psi), Some(frame));
        // Sibling pages decode as absent.
        for sib in s.geometry().constituents(u) {
            if sib != v {
                assert_eq!(s.decode(sib, &psi), None);
            }
        }
        assert_eq!(s.ram_evict(v), Some(frame));
        let psi = s.psi(u);
        assert_eq!(s.decode(v, &psi), None);
    }

    #[test]
    fn shadow_entries_appear_and_disappear() {
        let mut s = scheme_iceberg();
        let g = s.geometry();
        let u = g.huge_of(VirtPage(100));
        assert!(s.psi(u).is_all_absent());
        s.ram_insert(g.constituent(u, 1)).unwrap();
        s.ram_insert(g.constituent(u, 3)).unwrap();
        assert_eq!(s.psi(u).resident_count(), 2);
        s.ram_evict(g.constituent(u, 1));
        assert_eq!(s.psi(u).resident_count(), 1);
        s.ram_evict(g.constituent(u, 3));
        assert!(s.psi(u).is_all_absent());
        assert!(s.shadow.is_empty(), "empty shadow entries reclaimed");
    }

    #[test]
    fn failures_tracked_until_evicted() {
        // Tiny allocator: 1 bin, 1 front, 1 back → only 2 pages fit legally
        // (and h2==h3==the same bin).
        let mut s = DecouplingScheme::new(IcebergAlloc::with_geometry(1, 1, 1, 3), 64);
        s.ram_insert(VirtPage(0)).unwrap();
        s.ram_insert(VirtPage(1)).unwrap();
        assert!(s.ram_insert(VirtPage(2)).is_err());
        assert!(s.is_failed(VirtPage(2)));
        assert_eq!(s.failed_count(), 1);
        assert_eq!(s.stats().failures, 1);
        // Eviction clears the failure without touching the allocator.
        assert_eq!(s.ram_evict(VirtPage(2)), None);
        assert!(!s.is_failed(VirtPage(2)));
        assert_eq!(s.failed_count(), 0);
    }

    #[test]
    fn invariants_hold_under_churn_all_allocators() {
        fn churn<A: RamAllocator>(mut s: DecouplingScheme<A>, universe: u64) {
            let mut rng = CounterRng::new(77, 1);
            let mut active: Vec<u64> = Vec::new();
            for step in 0..4000u64 {
                if active.len() < 100 || rng.next_bool(0.4) {
                    let mut v = rng.next_below(universe);
                    while active.contains(&v) {
                        v = rng.next_below(universe);
                    }
                    match s.ram_insert(VirtPage(v)) {
                        Ok(_) | Err(_) => active.push(v),
                    }
                } else {
                    let i = rng.next_below(active.len() as u64) as usize;
                    let v = active.swap_remove(i);
                    s.ram_evict(VirtPage(v));
                }
                if step % 500 == 0 {
                    s.check_invariants();
                }
            }
            s.check_invariants();
        }
        churn(
            DecouplingScheme::new(IcebergAlloc::with_geometry(64, 4, 3, 2), 64),
            4096,
        );
        churn(
            DecouplingScheme::new(OneChoiceAlloc::with_geometry(32, 8, 2), 4096),
            4096,
        );
        churn(
            DecouplingScheme::new(FullyAssociativeAlloc::new(256), 64),
            4096,
        );
    }

    #[test]
    fn decode_is_pure_snapshot() {
        // A psi snapshot taken before later churn still decodes what it
        // encoded at snapshot time (values are copied, not referenced) —
        // this is what makes a *stale TLB entry* well-defined.
        let mut s = scheme_iceberg();
        let g = s.geometry();
        let v = VirtPage(42);
        let frame = s.ram_insert(v).unwrap();
        let snapshot = s.psi(g.huge_of(v));
        // Churn elsewhere.
        for x in 200..260u64 {
            let _ = s.ram_insert(VirtPage(x));
        }
        assert_eq!(s.decode(v, &snapshot), Some(frame));
    }

    #[test]
    #[should_panic(expected = "inserted while failed")]
    fn double_insert_of_failed_page_panics() {
        let mut s = DecouplingScheme::new(IcebergAlloc::with_geometry(1, 1, 1, 3), 64);
        s.ram_insert(VirtPage(0)).unwrap();
        s.ram_insert(VirtPage(1)).unwrap();
        let _ = s.ram_insert(VirtPage(2));
        let _ = s.ram_insert(VirtPage(2));
    }
}
