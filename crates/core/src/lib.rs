//! Huge-page decoupling — the paper's core contribution (Sections 3–4).
//!
//! A **huge-page decoupling scheme** lets the TLB cache virtual huge pages of
//! size `hmax` while RAM is allocated at base-page granularity, by encoding
//! in each `w`-bit TLB value *where* every resident constituent page lives.
//! The three parts defined in Section 3:
//!
//! 1. a **RAM-allocation scheme** assigning a stable, injective physical
//!    address `φ(v)` to each active page — implemented by the
//!    low-associativity allocators in [`alloc`]:
//!    [`alloc::FullyAssociativeAlloc`] (baseline: `log P` bits per page),
//!    [`alloc::OneChoiceAlloc`] (Theorem 1: bins of size `Θ̃(log P)`,
//!    `Θ(log log P)` bits per page), and
//!    [`alloc::IcebergAlloc`] (Theorem 3: Iceberg\[2\] bins of size
//!    `Θ̃(log log P)`, `Θ(log log log P)` bits per page);
//! 2. a **TLB-encoding scheme** assembling the `w`-bit value
//!    `ψ(u)` as a bit-packed array of per-page slot codes ([`encoding`]);
//! 3. a **TLB-decoding scheme** — the pure function `f(v, ψ(u))` of eq. (4)
//!    recovering `φ(v)` or "not resident" in O(1).
//!
//! [`scheme::DecouplingScheme`] wires the three together, maintains the
//! constant-time shadow table of ψ-values (one per huge page with at least
//! one resident constituent — exactly the structure Theorem 1's proof
//! sketches), and tracks the paging-failure set `F`.
//!
//! Theory-guided parameter derivations live in [`params`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod encoding;
pub mod encoding_sparse;
pub mod params;
pub mod scheme;
pub mod tenancy;

pub use alloc::{
    FullyAssociativeAlloc, GreedyAlloc, IcebergAlloc, OneChoiceAlloc, PagingFailure, Placement,
    RamAllocator,
};
pub use encoding::{SlotCode, TlbValue};
pub use encoding_sparse::{sparse_hmax, SparseValue};
pub use params::{hmax_for, AllocatorKind, IcebergParams, OneChoiceParams};
pub use scheme::DecouplingScheme;
pub use tenancy::SharedPoolAlloc;
