//! Compact TLB-value encoding: ψ(u) as a bit-packed array of slot codes.
//!
//! A `w`-bit TLB value is treated as an array of `hmax` fixed-width codes
//! (`a_1, …, a_hmax` in the proof of Theorem 1). Code 0 means "not
//! resident" (the decoding function's `−1`); nonzero codes name a slot
//! within the page's hashed bin(s), interpreted by the allocator.
//!
//! [`TlbValue`] is the packed bit vector; it is the *only* state a TLB entry
//! carries, so its size is checked against `w` at construction.

/// A per-page slot code. `0` = not resident; the allocator defines the
/// meaning of nonzero values (see each allocator's `decode`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SlotCode(pub u32);

impl SlotCode {
    /// The "not resident" code (eq. 4's `−1`).
    pub const ABSENT: SlotCode = SlotCode(0);

    /// Whether this code marks the page as absent.
    #[inline]
    pub const fn is_absent(self) -> bool {
        self.0 == 0
    }
}

/// A `w`-bit TLB value: `hmax` codes of `bits` bits, little-endian packed
/// into 64-bit words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbValue {
    words: Vec<u64>,
    bits: u32,
    count: u32,
}

impl TlbValue {
    /// Creates an all-absent value holding `count` codes of `bits` bits.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 32, or `count` is 0.
    pub fn new(count: u32, bits: u32) -> Self {
        assert!((1..=32).contains(&bits), "code width must be 1..=32 bits");
        assert!(count > 0, "value must hold at least one code");
        let total_bits = count as usize * bits as usize;
        Self {
            words: vec![0; total_bits.div_ceil(64)],
            bits,
            count,
        }
    }

    /// Total size in bits (must be ≤ w; checked by the scheme).
    #[inline]
    pub fn size_bits(&self) -> u32 {
        self.count * self.bits
    }

    /// Number of codes.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Width of each code in bits.
    #[inline]
    pub fn code_bits(&self) -> u32 {
        self.bits
    }

    /// Reads code `i`.
    ///
    /// # Panics
    /// Panics if `i >= count`.
    pub fn get(&self, i: u32) -> SlotCode {
        assert!(i < self.count, "code index {i} out of range");
        let bit = i as usize * self.bits as usize;
        let (word, off) = (bit / 64, (bit % 64) as u32);
        let mask = if self.bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.bits) - 1
        };
        let lo = self.words[word] >> off;
        let val = if off + self.bits <= 64 {
            lo & mask
        } else {
            let hi = self.words[word + 1] << (64 - off);
            (lo | hi) & mask
        };
        SlotCode(val as u32)
    }

    /// Writes code `i`.
    ///
    /// # Panics
    /// Panics if `i >= count` or the code does not fit in `bits` bits.
    pub fn set(&mut self, i: u32, code: SlotCode) {
        assert!(i < self.count, "code index {i} out of range");
        let mask = if self.bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.bits) - 1
        };
        assert!(
            (code.0 as u64) <= mask,
            "code {} does not fit in {} bits",
            code.0,
            self.bits
        );
        let bit = i as usize * self.bits as usize;
        let (word, off) = (bit / 64, (bit % 64) as u32);
        self.words[word] &= !(mask << off);
        self.words[word] |= (code.0 as u64) << off;
        if off + self.bits > 64 {
            let spill = off + self.bits - 64;
            let hi_mask = (1u64 << spill) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= (code.0 as u64) >> (64 - off);
        }
    }

    /// Whether every code is absent (the huge page has no resident pages).
    pub fn is_all_absent(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of resident (nonzero) codes.
    pub fn resident_count(&self) -> u32 {
        (0..self.count)
            .filter(|&i| !self.get(i).is_absent())
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        for bits in 1..=32u32 {
            let count = 37;
            let mut v = TlbValue::new(count, bits);
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            for i in 0..count {
                v.set(
                    i,
                    SlotCode(i.wrapping_mul(2_654_435_761u32.wrapping_mul(i + 1)) & mask),
                );
            }
            for i in 0..count {
                let expect = i.wrapping_mul(2_654_435_761u32.wrapping_mul(i + 1)) & mask;
                assert_eq!(v.get(i).0, expect, "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn starts_all_absent() {
        let v = TlbValue::new(16, 5);
        assert!(v.is_all_absent());
        assert_eq!(v.resident_count(), 0);
        for i in 0..16 {
            assert!(v.get(i).is_absent());
        }
    }

    #[test]
    fn set_then_clear_restores_absent() {
        let mut v = TlbValue::new(8, 7);
        v.set(3, SlotCode(99));
        assert_eq!(v.resident_count(), 1);
        assert!(!v.is_all_absent());
        v.set(3, SlotCode::ABSENT);
        assert!(v.is_all_absent());
    }

    #[test]
    fn neighboring_codes_do_not_clobber() {
        let mut v = TlbValue::new(10, 3);
        for i in 0..10 {
            v.set(i, SlotCode(7));
        }
        v.set(5, SlotCode(0));
        for i in 0..10 {
            assert_eq!(v.get(i).0, if i == 5 { 0 } else { 7 });
        }
    }

    #[test]
    fn word_boundary_straddling() {
        // 7-bit codes: code 9 occupies bits 63..70, straddling words 0/1.
        let mut v = TlbValue::new(20, 7);
        v.set(9, SlotCode(0b1010101));
        assert_eq!(v.get(9).0, 0b1010101);
        // Neighbors unaffected.
        assert_eq!(v.get(8).0, 0);
        assert_eq!(v.get(10).0, 0);
    }

    #[test]
    fn size_bits_matches() {
        let v = TlbValue::new(9, 7);
        assert_eq!(v.size_bits(), 63);
        let v = TlbValue::new(64, 1);
        assert_eq!(v.size_bits(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_rejected() {
        let mut v = TlbValue::new(4, 3);
        v.set(0, SlotCode(8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let v = TlbValue::new(4, 3);
        v.get(4);
    }
}
