//! Theory-guided parameter derivation for the allocation schemes.
//!
//! Section 4 fixes the asymptotics:
//!
//! * **one-choice** (Theorem 1): average load `λ = log P · log log P`, bin
//!   size `B = λ + O(√(λ log n))`, so codes take `Θ(log log P)` bits and
//!   `hmax = Θ(w / log log P)`;
//! * **Iceberg\[2\]** (Theorem 3): `λ = log log P · log log log P`, front cap
//!   `(1+o(1))λ`, back contribution `log log n + O(1)`, so codes take
//!   `Θ(log log log P)` bits and `hmax = Θ(w / log log log P)`.
//!
//! The `o(1)`/`O(1)` slack terms matter enormously at simulation scales
//! (`log log log P ≈ 2` for any feasible `P`!), so the derivations here make
//! the constants explicit and report the resulting *effective* resource
//! augmentation `δ_eff = 1 − m/P`. Experiments `T-thm1`/`T-thm3` sweep `P`
//! and verify (a) zero observed paging failures at the derived parameters
//! and (b) the bits-per-code gap between the two schemes widening with `P`.

/// Which allocation scheme to use, for runtime-configured experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorKind {
    /// Fully associative free-list (baseline; `⌈log₂(P+1)⌉`-bit codes).
    FullyAssociative,
    /// Bucketed one-choice hashing (Theorem 1).
    OneChoice,
    /// Iceberg\[2\] (Theorem 3).
    Iceberg,
}

#[inline]
fn lg2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Bits needed to distinguish `values` code points (≥ 1).
#[inline]
pub fn bits_for(values: u64) -> u32 {
    64 - (values.max(2) - 1).leading_zeros()
}

/// Largest power-of-two huge-page size whose `hmax` codes fit in `w` bits.
///
/// Decoupling stores `hmax` codes of `bits` bits in a `w`-bit value, so
/// `hmax = ⌊w / bits⌋`, rounded *down* to a power of two because huge pages
/// must be power-of-two sized (Section 5 assumes `hmax` is a power of two).
pub fn hmax_for(w: u32, bits: u32) -> u64 {
    let raw = (w / bits.max(1)).max(1) as u64;

    1u64 << (63 - raw.leading_zeros())
}

/// Derived parameters for the one-choice allocator (Theorem 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OneChoiceParams {
    /// Number of bins `n`.
    pub bins: u64,
    /// Bin size `B` in page slots; associativity = `B`.
    pub bin_size: u32,
    /// Target average load `λ`.
    pub lambda: f64,
    /// Supported resident-set bound `m = ⌊n·λ⌋`.
    pub max_resident: u64,
    /// Effective resource augmentation `δ_eff = 1 − m/P`.
    pub delta_eff: f64,
    /// Bits per slot code: `⌈log₂(B+1)⌉` (code 0 = absent).
    pub bits_per_code: u32,
}

impl OneChoiceParams {
    /// Derives parameters for a physical memory of `phys_pages` pages,
    /// following the paper: `λ = log P · log log P`,
    /// `B = λ + c·√(λ·ln n)` (we take c = 2.5, comfortably inside the
    /// high-probability regime of eq. (5)'s third case).
    pub fn derive(phys_pages: u64) -> Self {
        let p = phys_pages as f64;
        let lambda = (lg2(p) * lg2(lg2(p))).max(4.0);
        // Approximate n for the slack term; one refinement pass.
        let mut bins = (p / lambda).max(1.0);
        for _ in 0..2 {
            let slack = 2.5 * (lambda * bins.max(2.0).ln()).sqrt();
            let bin_size = (lambda + slack).ceil();
            bins = (p / bin_size).floor().max(1.0);
        }
        let slack = 2.5 * (lambda * bins.max(2.0).ln()).sqrt();
        let bin_size = (lambda + slack).ceil() as u32;
        let bins = ((p / bin_size as f64).floor() as u64).max(1);
        let max_resident = ((bins as f64) * lambda).floor() as u64;
        Self {
            bins,
            bin_size,
            lambda,
            max_resident,
            delta_eff: 1.0 - max_resident as f64 / p,
            bits_per_code: bits_for(bin_size as u64 + 1),
        }
    }

    /// Explicit parameters, for sweeps and failure-injection tests.
    pub fn custom(bins: u64, bin_size: u32, phys_pages: u64, lambda: f64) -> Self {
        let max_resident = ((bins as f64) * lambda).floor() as u64;
        Self {
            bins,
            bin_size,
            lambda,
            max_resident,
            delta_eff: 1.0 - max_resident as f64 / phys_pages as f64,
            bits_per_code: bits_for(bin_size as u64 + 1),
        }
    }
}

/// Derived parameters for the Iceberg\[2\] allocator (Theorem 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IcebergParams {
    /// Number of bins `n`.
    pub bins: u64,
    /// Front-tier capacity per bin (the `(1+o(1))λ` cap of Theorem 2).
    pub front_cap: u32,
    /// Back-tier capacity per bin (the `log log n + O(1)` overflow space).
    pub back_cap: u32,
    /// Target average load `λ`.
    pub lambda: f64,
    /// Supported resident-set bound `m = ⌊n·λ⌋`.
    pub max_resident: u64,
    /// Effective resource augmentation `δ_eff = 1 − m/P`.
    pub delta_eff: f64,
    /// Bits per slot code: `⌈log₂(1 + front + 2·back)⌉`.
    pub bits_per_code: u32,
}

impl IcebergParams {
    /// Derives parameters for a physical memory of `phys_pages` pages,
    /// following the paper: `λ = log log P · log log log P` (floored at 4
    /// for tiny `P`), front cap `⌈1.25·λ⌉ + 1`, back capacity
    /// `⌈log₂ log₂ n⌉ + 5`.
    pub fn derive(phys_pages: u64) -> Self {
        let p = phys_pages as f64;
        let lambda = (lg2(lg2(p)) * lg2(lg2(lg2(p))).max(1.0)).max(4.0);
        let front_cap = (1.25 * lambda).ceil() as u32 + 1;
        // Approximate n to size the back tier.
        let n_approx = (p / (front_cap as f64)).max(4.0);
        let back_cap = lg2(lg2(n_approx)).ceil() as u32 + 5;
        let bin_size = front_cap + back_cap;
        let bins = ((p / bin_size as f64).floor() as u64).max(1);
        let max_resident = ((bins as f64) * lambda).floor() as u64;
        Self {
            bins,
            front_cap,
            back_cap,
            lambda,
            max_resident,
            delta_eff: 1.0 - max_resident as f64 / p,
            bits_per_code: bits_for(1 + front_cap as u64 + 2 * back_cap as u64),
        }
    }

    /// Explicit parameters, for sweeps and failure-injection tests.
    pub fn custom(bins: u64, front_cap: u32, back_cap: u32, phys_pages: u64, lambda: f64) -> Self {
        let max_resident = ((bins as f64) * lambda).floor() as u64;
        Self {
            bins,
            front_cap,
            back_cap,
            lambda,
            max_resident,
            delta_eff: 1.0 - max_resident as f64 / phys_pages as f64,
            bits_per_code: bits_for(1 + front_cap as u64 + 2 * back_cap as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn hmax_is_power_of_two_and_fits() {
        for w in [16u32, 64, 128, 512] {
            for bits in [1u32, 3, 5, 7, 9, 20] {
                let h = hmax_for(w, bits);
                assert!(h.is_power_of_two());
                assert!(h * bits as u64 <= w as u64 || h == 1);
            }
        }
        assert_eq!(hmax_for(64, 7), 8);
        assert_eq!(hmax_for(64, 6), 8);
        assert_eq!(hmax_for(512, 6), 64);
    }

    #[test]
    fn one_choice_derivation_is_consistent() {
        for shift in [14u32, 17, 20, 24] {
            let p = 1u64 << shift;
            let d = OneChoiceParams::derive(p);
            assert!(d.bins >= 1);
            assert!(
                (d.bins * d.bin_size as u64) <= p,
                "bins overrun P at 2^{shift}"
            );
            assert!(d.max_resident <= p);
            assert!(d.bin_size as f64 > d.lambda, "B must exceed λ");
            assert!(d.delta_eff > 0.0 && d.delta_eff < 1.0);
        }
    }

    #[test]
    fn iceberg_derivation_is_consistent() {
        for shift in [14u32, 17, 20, 24, 30] {
            let p = 1u64 << shift;
            let d = IcebergParams::derive(p);
            assert!(d.bins >= 1);
            assert!((d.bins * (d.front_cap + d.back_cap) as u64) <= p);
            assert!(d.front_cap as f64 > d.lambda);
            assert!(d.back_cap >= 5);
            assert!(d.delta_eff > 0.0 && d.delta_eff < 1.0);
        }
    }

    #[test]
    fn iceberg_codes_are_smaller_than_one_choice_at_scale() {
        // The headline separation: Θ(logloglog P) vs Θ(loglog P) bits.
        let p = 1u64 << 30;
        let oc = OneChoiceParams::derive(p);
        let ib = IcebergParams::derive(p);
        assert!(
            ib.bits_per_code < oc.bits_per_code,
            "iceberg {} !< one-choice {}",
            ib.bits_per_code,
            oc.bits_per_code
        );
    }

    #[test]
    fn one_choice_lambda_grows_with_p() {
        let small = OneChoiceParams::derive(1 << 14);
        let large = OneChoiceParams::derive(1 << 30);
        assert!(large.lambda > small.lambda);
        assert!(large.bin_size > small.bin_size);
    }

    #[test]
    fn iceberg_bin_size_nearly_flat_in_p() {
        // Θ̃(loglog P) growth: from 2^14 to 2^34 the bin size should grow by
        // only a few slots.
        let small = IcebergParams::derive(1 << 14);
        let large = IcebergParams::derive(1u64 << 34);
        let growth =
            (large.front_cap + large.back_cap) as f64 / (small.front_cap + small.back_cap) as f64;
        assert!(growth < 2.0, "iceberg bins grew {growth}x over 2^20 range");
    }
}
