//! The Iceberg\[2\] allocator (Theorem 3, the Decoupling Theorem).
//!
//! Each bin has a **front** tier of `front_cap` slots and a **back** tier of
//! `back_cap` slots. A page first tries the front of its `h₁` bin; if that
//! tier is full, it falls back to Greedy\[2\] over the *back* tiers of its
//! `h₂`/`h₃` bins (comparing back loads only — footnote 4: the two tiers
//! ignore each other). By Theorem 2, with `λ = log log P · log log log P`
//! the maximum load is `(1+o(1))λ + log log n + O(1)` whp, so bins of size
//! `Θ̃(log log P)` suffice and codes take `Θ(log log log P)` bits:
//!
//! ```text
//! code 0                                  absent
//! code 1 ..= F                            front slot (code−1) of bin h₁(v)
//! code F+1 ..= F+B                        back slot  (code−F−1) of bin h₂(v)
//! code F+B+1 ..= F+2B                     back slot  (code−F−B−1) of bin h₃(v)
//! ```

use super::{PagingFailure, Placement, RamAllocator};
use crate::encoding::SlotCode;
use crate::params::{bits_for, IcebergParams};
use atp_hash::{FxHashMap, PageHasher};
use atp_types::{PhysPage, VirtPage};

/// Where a placed page lives, for bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pos {
    bin: u64,
    /// Slot within the bin: `< front_cap` is front tier, else back tier.
    slot: u32,
    /// 0, 1, or 2: which hash function chose the bin.
    hash_index: u8,
}

/// Iceberg\[2\] allocator.
#[derive(Clone, Debug)]
pub struct IcebergAlloc {
    hasher: PageHasher,
    front_free: Vec<Vec<u32>>,
    back_free: Vec<Vec<u32>>,
    placed: FxHashMap<VirtPage, Pos>,
    front_cap: u32,
    back_cap: u32,
    bits: u32,
    /// Lifetime count of placements that overflowed to the back tier.
    back_placements: u64,
}

impl IcebergAlloc {
    /// Creates the allocator from derived or custom parameters.
    pub fn new(params: &IcebergParams, seed: u64) -> Self {
        Self::with_geometry(params.bins, params.front_cap, params.back_cap, seed)
    }

    /// Creates the allocator with explicit geometry.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn with_geometry(bins: u64, front_cap: u32, back_cap: u32, seed: u64) -> Self {
        assert!(
            bins > 0 && front_cap > 0 && back_cap > 0,
            "bins, front_cap, back_cap must be nonzero"
        );
        Self {
            hasher: PageHasher::new(seed, bins, 3),
            front_free: (0..bins).map(|_| (0..front_cap).rev().collect()).collect(),
            back_free: (0..bins)
                .map(|_| (front_cap..front_cap + back_cap).rev().collect())
                .collect(),
            placed: FxHashMap::default(),
            front_cap,
            back_cap,
            bits: bits_for(1 + front_cap as u64 + 2 * back_cap as u64),
            back_placements: 0,
        }
    }

    /// Number of bins `n`.
    pub fn bins(&self) -> u64 {
        self.front_free.len() as u64
    }

    /// Front-tier capacity per bin.
    pub fn front_cap(&self) -> u32 {
        self.front_cap
    }

    /// Back-tier capacity per bin.
    pub fn back_cap(&self) -> u32 {
        self.back_cap
    }

    /// Back-tier load of bin `b`.
    pub fn back_load(&self, b: u64) -> u32 {
        self.back_cap - self.back_free[b as usize].len() as u32
    }

    /// Front-tier load of bin `b`.
    pub fn front_load(&self, b: u64) -> u32 {
        self.front_cap - self.front_free[b as usize].len() as u32
    }

    /// Lifetime count of placements that spilled to the back tier; the
    /// theory says this stays a small fraction of all placements.
    pub fn back_placements(&self) -> u64 {
        self.back_placements
    }

    #[inline]
    fn bin_stride(&self) -> u64 {
        (self.front_cap + self.back_cap) as u64
    }

    #[inline]
    fn frame(&self, bin: u64, slot: u32) -> PhysPage {
        PhysPage(bin * self.bin_stride() + slot as u64)
    }

    fn code_for(&self, pos: Pos) -> SlotCode {
        match pos.hash_index {
            0 => SlotCode(1 + pos.slot),
            1 => SlotCode(1 + self.front_cap + (pos.slot - self.front_cap)),
            2 => SlotCode(1 + self.front_cap + self.back_cap + (pos.slot - self.front_cap)),
            _ => unreachable!(),
        }
    }
}

impl RamAllocator for IcebergAlloc {
    fn place(&mut self, v: VirtPage) -> Result<Placement, PagingFailure> {
        assert!(!self.placed.contains_key(&v), "page {v:?} double-placed");
        // Front attempt via h1.
        let b1 = self.hasher.bin(v, 0);
        if let Some(slot) = self.front_free[b1 as usize].pop() {
            let pos = Pos {
                bin: b1,
                slot,
                hash_index: 0,
            };
            self.placed.insert(v, pos);
            return Ok(Placement {
                frame: self.frame(b1, slot),
                code: self.code_for(pos),
            });
        }
        // Greedy[2] over back tiers of h2, h3.
        let b2 = self.hasher.bin(v, 1);
        let b3 = self.hasher.bin(v, 2);
        let (first, first_idx, second, second_idx) = if self.back_load(b2) <= self.back_load(b3) {
            (b2, 1u8, b3, 2u8)
        } else {
            (b3, 2u8, b2, 1u8)
        };
        for (bin, idx) in [(first, first_idx), (second, second_idx)] {
            if let Some(slot) = self.back_free[bin as usize].pop() {
                self.back_placements += 1;
                let pos = Pos {
                    bin,
                    slot,
                    hash_index: idx,
                };
                self.placed.insert(v, pos);
                return Ok(Placement {
                    frame: self.frame(bin, slot),
                    code: self.code_for(pos),
                });
            }
        }
        Err(PagingFailure { page: v })
    }

    fn free(&mut self, v: VirtPage) -> Option<PhysPage> {
        let pos = self.placed.remove(&v)?;
        if pos.slot < self.front_cap {
            self.front_free[pos.bin as usize].push(pos.slot);
        } else {
            self.back_free[pos.bin as usize].push(pos.slot);
        }
        Some(self.frame(pos.bin, pos.slot))
    }

    fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        self.placed.get(&v).map(|p| self.frame(p.bin, p.slot))
    }

    fn code_of(&self, v: VirtPage) -> SlotCode {
        self.placed
            .get(&v)
            .map_or(SlotCode::ABSENT, |&p| self.code_for(p))
    }

    fn decode(&self, v: VirtPage, code: SlotCode) -> Option<PhysPage> {
        if code.is_absent() {
            return None;
        }
        let c = code.0 - 1;
        let f = self.front_cap;
        let b = self.back_cap;
        if c < f {
            Some(self.frame(self.hasher.bin(v, 0), c))
        } else if c < f + b {
            Some(self.frame(self.hasher.bin(v, 1), f + (c - f)))
        } else if c < f + 2 * b {
            Some(self.frame(self.hasher.bin(v, 2), f + (c - f - b)))
        } else {
            None
        }
    }

    fn bits_per_code(&self) -> u32 {
        self.bits
    }

    fn phys_pages(&self) -> u64 {
        self.bins() * self.bin_stride()
    }

    fn resident(&self) -> u64 {
        self.placed.len() as u64
    }

    fn associativity(&self) -> u64 {
        (self.front_cap + 2 * self.back_cap) as u64
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (VirtPage, PhysPage)> + '_> {
        Box::new(
            self.placed
                .iter()
                .map(|(&v, &p)| (v, self.frame(p.bin, p.slot))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::contract::churn_contract;

    #[test]
    fn contract_holds() {
        churn_contract(IcebergAlloc::with_geometry(32, 8, 4, 11), 4000, 200, 10_000);
    }

    #[test]
    fn prefers_front_tier() {
        let mut a = IcebergAlloc::with_geometry(64, 8, 4, 1);
        for v in 0..32u64 {
            a.place(VirtPage(v)).unwrap();
        }
        assert_eq!(
            a.back_placements(),
            0,
            "sparse fill must stay in front tiers"
        );
    }

    #[test]
    fn overflow_goes_to_less_loaded_back_bin() {
        // One bin, tiny front: forces back placements; then all back slots
        // of both h2/h3 (same single bin) exhaust → failure.
        let mut a = IcebergAlloc::with_geometry(1, 1, 2, 2);
        assert!(a.place(VirtPage(0)).is_ok()); // front
        assert!(a.place(VirtPage(1)).is_ok()); // back
        assert!(a.place(VirtPage(2)).is_ok()); // back
        assert!(a.place(VirtPage(3)).is_err(), "all tiers full");
        assert_eq!(a.back_placements(), 2);
    }

    #[test]
    fn code_ranges_decode_to_distinct_tiers() {
        let mut a = IcebergAlloc::with_geometry(16, 2, 2, 3);
        // Fill until we observe both tiers used.
        let mut saw_front = false;
        let mut saw_back = false;
        for v in 0..48u64 {
            if let Ok(p) = a.place(VirtPage(v)) {
                assert_eq!(a.decode(VirtPage(v), p.code), Some(p.frame));
                if p.code.0 <= 2 {
                    saw_front = true;
                } else {
                    saw_back = true;
                }
            }
        }
        assert!(saw_front && saw_back);
    }

    #[test]
    fn theory_params_survive_fill_without_failures() {
        let params = IcebergParams::derive(1 << 14);
        let mut a = IcebergAlloc::new(&params, 42);
        for v in 0..params.max_resident {
            a.place(VirtPage(v))
                .expect("no failure at theory params (Theorem 3)");
        }
        assert_eq!(a.resident(), params.max_resident);
    }

    #[test]
    fn iceberg_needs_smaller_bins_than_one_choice() {
        // Same P, same zero-failure requirement on a full fill: iceberg's
        // derived bin size is much smaller (the Θ̃(log P) vs Θ̃(loglog P) gap).
        use crate::params::OneChoiceParams;
        let p = 1u64 << 20;
        let oc = OneChoiceParams::derive(p);
        let ib = IcebergParams::derive(p);
        assert!(
            ((ib.front_cap + ib.back_cap) as u64) * 3 < oc.bin_size as u64,
            "iceberg bins {} not ≪ one-choice bins {}",
            ib.front_cap + ib.back_cap,
            oc.bin_size
        );
    }

    #[test]
    fn free_restores_correct_tier() {
        let mut a = IcebergAlloc::with_geometry(1, 1, 1, 7);
        a.place(VirtPage(0)).unwrap(); // front slot
        a.place(VirtPage(1)).unwrap(); // back slot
        let f0 = a.frame_of(VirtPage(0)).unwrap();
        a.free(VirtPage(0));
        // Front slot free again: next placement goes to front.
        let p = a.place(VirtPage(2)).unwrap();
        assert_eq!(p.frame, f0);
        assert_eq!(p.code.0, 1, "front code");
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let a = IcebergAlloc::with_geometry(4, 2, 2, 9);
        // codes: 1..=2 front, 3..=4 back(h2), 5..=6 back(h3); 7+ invalid.
        assert!(a.decode(VirtPage(0), SlotCode(6)).is_some());
        assert_eq!(a.decode(VirtPage(0), SlotCode(7)), None);
    }
}
