//! A Greedy\[d\]-only allocator (ablation).
//!
//! Like [`crate::alloc::IcebergAlloc`] without the front tier: every page is
//! placed by Greedy\[d\] — `d` hashed bin choices, least-loaded wins. The
//! paper rejects this design because the best *provable* bound on its
//! maximum load is `O(λ) + log log n` (eq. 6), forcing `δ = Ω(1)`; but
//! footnote 3 notes nobody knows whether the `Θ(λ)` dependence is real.
//! This allocator lets the `ablation_alloc` bench measure the empirical gap
//! against Iceberg at equal bin budgets.

use super::{PagingFailure, Placement, RamAllocator};
use crate::encoding::SlotCode;
use crate::params::bits_for;
use atp_hash::{FxHashMap, PageHasher};
use atp_types::{PhysPage, VirtPage};

/// Greedy\[d\] bucketed allocator.
#[derive(Clone, Debug)]
pub struct GreedyAlloc {
    hasher: PageHasher,
    free_slots: Vec<Vec<u32>>,
    placed: FxHashMap<VirtPage, (u64, u32, u8)>,
    bin_size: u32,
    d: u32,
    bits: u32,
}

impl GreedyAlloc {
    /// Creates the allocator: `bins × bin_size` slots, `d ≥ 2` choices.
    ///
    /// # Panics
    /// Panics if any dimension is zero or `d < 2`.
    pub fn with_geometry(bins: u64, bin_size: u32, d: u32, seed: u64) -> Self {
        assert!(
            bins > 0 && bin_size > 0,
            "bins and bin_size must be nonzero"
        );
        assert!(d >= 2, "Greedy[d] requires d >= 2");
        Self {
            hasher: PageHasher::new(seed, bins, d),
            free_slots: (0..bins).map(|_| (0..bin_size).rev().collect()).collect(),
            placed: FxHashMap::default(),
            bin_size,
            d,
            // Codes: 0 absent; then d ranges of bin_size slots, one per choice.
            bits: bits_for(1 + d as u64 * bin_size as u64),
        }
    }

    /// Load of bin `b`.
    pub fn bin_load(&self, b: u64) -> u32 {
        self.bin_size - self.free_slots[b as usize].len() as u32
    }

    #[inline]
    fn frame(&self, bin: u64, slot: u32) -> PhysPage {
        PhysPage(bin * self.bin_size as u64 + slot as u64)
    }
}

impl RamAllocator for GreedyAlloc {
    fn place(&mut self, v: VirtPage) -> Result<Placement, PagingFailure> {
        assert!(!self.placed.contains_key(&v), "page {v:?} double-placed");
        // Least-loaded choice with free capacity, ties toward lower index.
        let mut best: Option<(u64, u8, u32)> = None; // (bin, idx, load)
        for i in 0..self.d {
            let b = self.hasher.bin(v, i);
            let load = self.bin_load(b);
            if load < self.bin_size && best.is_none_or(|(_, _, l)| load < l) {
                best = Some((b, i as u8, load));
            }
        }
        match best {
            Some((bin, idx, _)) => {
                // atp-lint: allow(unwrap-policy, reason = "invariant: the chosen bin was just checked to have load below capacity, so a free slot exists")
                let slot = self.free_slots[bin as usize].pop().expect("free slot");
                self.placed.insert(v, (bin, slot, idx));
                Ok(Placement {
                    frame: self.frame(bin, slot),
                    code: SlotCode(1 + idx as u32 * self.bin_size + slot),
                })
            }
            None => Err(PagingFailure { page: v }),
        }
    }

    fn free(&mut self, v: VirtPage) -> Option<PhysPage> {
        let (bin, slot, _) = self.placed.remove(&v)?;
        self.free_slots[bin as usize].push(slot);
        Some(self.frame(bin, slot))
    }

    fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        self.placed.get(&v).map(|&(b, s, _)| self.frame(b, s))
    }

    fn code_of(&self, v: VirtPage) -> SlotCode {
        self.placed.get(&v).map_or(SlotCode::ABSENT, |&(_, s, i)| {
            SlotCode(1 + i as u32 * self.bin_size + s)
        })
    }

    fn decode(&self, v: VirtPage, code: SlotCode) -> Option<PhysPage> {
        if code.is_absent() || code.0 > self.d * self.bin_size {
            return None;
        }
        let c = code.0 - 1;
        let idx = c / self.bin_size;
        let slot = c % self.bin_size;
        Some(self.frame(self.hasher.bin(v, idx), slot))
    }

    fn bits_per_code(&self) -> u32 {
        self.bits
    }

    fn phys_pages(&self) -> u64 {
        self.free_slots.len() as u64 * self.bin_size as u64
    }

    fn resident(&self) -> u64 {
        self.placed.len() as u64
    }

    fn associativity(&self) -> u64 {
        (self.d * self.bin_size) as u64
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (VirtPage, PhysPage)> + '_> {
        Box::new(
            self.placed
                .iter()
                .map(|(&v, &(b, s, _))| (v, self.frame(b, s))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::contract::churn_contract;

    #[test]
    fn contract_holds() {
        churn_contract(GreedyAlloc::with_geometry(32, 8, 2, 7), 2000, 200, 8000);
    }

    #[test]
    fn balances_better_than_one_choice() {
        use crate::alloc::OneChoiceAlloc;
        let bins = 256u64;
        let b = 32u32;
        let mut greedy = GreedyAlloc::with_geometry(bins, b, 2, 5);
        let mut one = OneChoiceAlloc::with_geometry(bins, b, 5);
        let n_balls = bins * 16;
        let (mut gf, mut of) = (0u64, 0u64);
        for v in 0..n_balls {
            gf += u64::from(greedy.place(VirtPage(v)).is_err());
            of += u64::from(one.place(VirtPage(v)).is_err());
        }
        let gmax = (0..bins).map(|x| greedy.bin_load(x)).max().unwrap();
        let omax = (0..bins).map(|x| one.bin_load(x)).max().unwrap();
        assert!(gmax < omax, "greedy max {gmax} !< one-choice max {omax}");
        assert!(gf <= of);
    }

    #[test]
    fn decode_covers_all_choices() {
        let mut a = GreedyAlloc::with_geometry(8, 2, 3, 2);
        for v in 0..40u64 {
            if let Ok(p) = a.place(VirtPage(v)) {
                assert_eq!(a.decode(VirtPage(v), p.code), Some(p.frame), "v={v}");
            }
        }
    }

    #[test]
    fn fails_only_when_all_choices_full() {
        let mut a = GreedyAlloc::with_geometry(1, 2, 2, 3);
        assert!(a.place(VirtPage(0)).is_ok());
        assert!(a.place(VirtPage(1)).is_ok());
        assert!(a.place(VirtPage(2)).is_err());
        a.free(VirtPage(0));
        assert!(a.place(VirtPage(2)).is_ok());
    }

    #[test]
    fn bits_account_for_choice_index() {
        // d=2, B=8: codes 0..=16 → 5 bits.
        let a = GreedyAlloc::with_geometry(4, 8, 2, 1);
        assert_eq!(a.bits_per_code(), 5);
    }
}
