//! The fully associative baseline allocator.
//!
//! Any page can occupy any frame, so codes must name the frame outright:
//! `⌈log₂(P+1)⌉` bits. This is what a conventional TLB entry stores, and it
//! caps `hmax` at `Θ(w / log P)` — the baseline the paper improves on.

use super::{PagingFailure, Placement, RamAllocator};
use crate::encoding::SlotCode;
use crate::params::bits_for;
use atp_hash::FxHashMap;
use atp_types::{PhysPage, VirtPage};

/// Free-list allocator over `P` frames.
#[derive(Clone, Debug)]
pub struct FullyAssociativeAlloc {
    free: Vec<u64>,
    placed: FxHashMap<VirtPage, PhysPage>,
    phys_pages: u64,
    bits: u32,
}

impl FullyAssociativeAlloc {
    /// Creates an allocator over `phys_pages` frames.
    ///
    /// # Panics
    /// Panics if `phys_pages == 0` or exceeds `u32::MAX − 1` (codes are u32).
    pub fn new(phys_pages: u64) -> Self {
        assert!(phys_pages > 0, "phys_pages must be nonzero");
        assert!(
            phys_pages < u32::MAX as u64,
            "fully associative codes are limited to u32 frames"
        );
        Self {
            free: (0..phys_pages).rev().collect(),
            placed: FxHashMap::default(),
            phys_pages,
            bits: bits_for(phys_pages + 1),
        }
    }
}

impl RamAllocator for FullyAssociativeAlloc {
    fn place(&mut self, v: VirtPage) -> Result<Placement, PagingFailure> {
        assert!(!self.placed.contains_key(&v), "page {v:?} double-placed");
        match self.free.pop() {
            Some(frame) => {
                let frame = PhysPage(frame);
                self.placed.insert(v, frame);
                Ok(Placement {
                    frame,
                    code: SlotCode(frame.0 as u32 + 1),
                })
            }
            None => Err(PagingFailure { page: v }),
        }
    }

    fn free(&mut self, v: VirtPage) -> Option<PhysPage> {
        let frame = self.placed.remove(&v)?;
        self.free.push(frame.0);
        Some(frame)
    }

    fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        self.placed.get(&v).copied()
    }

    fn code_of(&self, v: VirtPage) -> SlotCode {
        self.placed
            .get(&v)
            .map_or(SlotCode::ABSENT, |f| SlotCode(f.0 as u32 + 1))
    }

    fn decode(&self, _v: VirtPage, code: SlotCode) -> Option<PhysPage> {
        if code.is_absent() || code.0 as u64 > self.phys_pages {
            None
        } else {
            Some(PhysPage(code.0 as u64 - 1))
        }
    }

    fn bits_per_code(&self) -> u32 {
        self.bits
    }

    fn phys_pages(&self) -> u64 {
        self.phys_pages
    }

    fn resident(&self) -> u64 {
        self.placed.len() as u64
    }

    fn associativity(&self) -> u64 {
        self.phys_pages
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (VirtPage, PhysPage)> + '_> {
        Box::new(self.placed.iter().map(|(&v, &f)| (v, f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::contract::churn_contract;

    #[test]
    fn contract_holds() {
        churn_contract(FullyAssociativeAlloc::new(64), 1000, 48, 5000);
    }

    #[test]
    fn fails_only_when_truly_full() {
        let mut a = FullyAssociativeAlloc::new(4);
        for v in 0..4u64 {
            a.place(VirtPage(v)).expect("fits");
        }
        assert!(a.place(VirtPage(99)).is_err());
        a.free(VirtPage(0));
        assert!(a.place(VirtPage(99)).is_ok());
    }

    #[test]
    fn bits_match_frame_count() {
        assert_eq!(FullyAssociativeAlloc::new(255).bits_per_code(), 8);
        assert_eq!(FullyAssociativeAlloc::new(256).bits_per_code(), 9);
    }

    #[test]
    fn decode_is_frame_plus_one() {
        let mut a = FullyAssociativeAlloc::new(8);
        let p = a.place(VirtPage(5)).unwrap();
        assert_eq!(a.decode(VirtPage(5), p.code), Some(p.frame));
        assert_eq!(a.decode(VirtPage(5), SlotCode::ABSENT), None);
        assert_eq!(a.decode(VirtPage(5), SlotCode(9)), None, "out of range");
    }

    #[test]
    #[should_panic(expected = "double-placed")]
    fn double_place_panics() {
        let mut a = FullyAssociativeAlloc::new(8);
        a.place(VirtPage(1)).unwrap();
        let _ = a.place(VirtPage(1));
    }
}
