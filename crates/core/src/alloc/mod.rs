//! Low-associativity RAM-allocation schemes.
//!
//! A RAM-allocation scheme decides the physical address `φ(v)` of every page
//! the RAM-replacement policy brings in (Section 3). Requirements: `φ` is an
//! **injection** (no two active pages share a frame) and **stable** (a
//! page's frame never changes while it is active). Low associativity is what
//! makes the TLB encoding compact: if a page can only live in a few slots of
//! its hashed bin(s), naming the slot takes few bits.
//!
//! Implementations:
//!
//! * [`FullyAssociativeAlloc`] — any page anywhere; `⌈log₂(P+1)⌉`-bit codes.
//!   The baseline that classic TLBs effectively pay.
//! * [`OneChoiceAlloc`] — `k = 1` bucketed hashing (Theorem 1 / warm-up).
//! * [`IcebergAlloc`] — Iceberg\[2\] with front/back tiers (Theorem 3).
//!
//! A [`PagingFailure`] is returned when a page's bin(s) are full; the caller
//! (the memory-management layer) services such pages out-of-band at cost
//! `1 + ε` per access, per Theorem 4's proof.

mod fully_assoc;
mod greedy;
mod iceberg;
mod one_choice;

pub use fully_assoc::FullyAssociativeAlloc;
pub use greedy::GreedyAlloc;
pub use iceberg::IcebergAlloc;
pub use one_choice::OneChoiceAlloc;

use crate::encoding::SlotCode;
use atp_types::{PhysPage, VirtPage};

/// A successful placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The physical frame assigned (`φ(v)`).
    pub frame: PhysPage,
    /// The compact code naming that frame relative to `v`'s hashed bin(s).
    pub code: SlotCode,
}

/// A paging failure: every legal slot for the page is occupied (Section 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagingFailure {
    /// The page that could not be placed.
    pub page: VirtPage,
}

impl core::fmt::Display for PagingFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "paging failure: no legal slot for page {}", self.page)
    }
}

impl std::error::Error for PagingFailure {}

/// A RAM-allocation scheme: stable, injective `φ` with compact slot codes
/// and an O(1) pure decoding function.
pub trait RamAllocator {
    /// Assigns a frame to `v`.
    ///
    /// # Panics
    /// Panics if `v` is already placed (the RAM-replacement policy never
    /// double-inserts).
    fn place(&mut self, v: VirtPage) -> Result<Placement, PagingFailure>;

    /// Releases `v`'s frame, returning it; `None` if `v` was not placed.
    fn free(&mut self, v: VirtPage) -> Option<PhysPage>;

    /// Current frame of `v` (`φ(v)`), if placed.
    fn frame_of(&self, v: VirtPage) -> Option<PhysPage>;

    /// Current slot code of `v`; [`SlotCode::ABSENT`] if not placed.
    fn code_of(&self, v: VirtPage) -> SlotCode;

    /// The pure decoding function: maps `(v, code)` to the frame the code
    /// names, independent of allocator state (eq. 4's `f`, per-page part).
    /// Returns `None` for [`SlotCode::ABSENT`] or out-of-range codes.
    fn decode(&self, v: VirtPage, code: SlotCode) -> Option<PhysPage>;

    /// Width of slot codes in bits.
    fn bits_per_code(&self) -> u32;

    /// Total physical pages `P` this allocator manages.
    fn phys_pages(&self) -> u64;

    /// Number of currently placed pages.
    fn resident(&self) -> u64;

    /// The associativity: how many distinct frames a page may occupy.
    fn associativity(&self) -> u64;

    /// Iterates over all placed pages and their frames (arbitrary order).
    /// Intended for invariant checking and statistics, not hot paths.
    fn iter_placed(&self) -> Box<dyn Iterator<Item = (VirtPage, PhysPage)> + '_>;
}

#[cfg(test)]
pub(crate) mod contract {
    //! Shared contract tests run against every allocator.
    use super::*;
    use atp_hash::CounterRng;
    use atp_hash::FxHashMap;

    /// Drives random place/free churn, checking injectivity, stability, and
    /// decode correctness throughout.
    pub(crate) fn churn_contract<A: RamAllocator>(
        mut alloc: A,
        universe: u64,
        target: usize,
        ops: u64,
    ) {
        let mut rng = CounterRng::new(0xC0FFEE, 0);
        let mut placed: FxHashMap<u64, PhysPage> = FxHashMap::default();
        let mut frames_in_use: std::collections::HashSet<u64> = Default::default();
        for _ in 0..ops {
            if placed.len() < target || (placed.len() < universe as usize && rng.next_bool(0.3)) {
                // Place a new page.
                let mut v = rng.next_below(universe);
                while placed.contains_key(&v) {
                    v = rng.next_below(universe);
                }
                match alloc.place(VirtPage(v)) {
                    Ok(pl) => {
                        // Injectivity.
                        assert!(
                            frames_in_use.insert(pl.frame.0),
                            "frame {} double-assigned",
                            pl.frame.0
                        );
                        // Decode correctness.
                        assert_eq!(alloc.decode(VirtPage(v), pl.code), Some(pl.frame));
                        assert_eq!(alloc.code_of(VirtPage(v)), pl.code);
                        assert!(pl.frame.0 < alloc.phys_pages());
                        placed.insert(v, pl.frame);
                    }
                    Err(f) => assert_eq!(f.page, VirtPage(v)),
                }
            } else if !placed.is_empty() {
                // Free a random placed page.
                let keys: Vec<u64> = placed.keys().copied().collect();
                let v = keys[rng.next_below(keys.len() as u64) as usize];
                let expect = placed.remove(&v).expect("placed");
                let got = alloc.free(VirtPage(v)).expect("free returns frame");
                assert_eq!(got, expect, "free returned wrong frame");
                frames_in_use.remove(&got.0);
            }
            // Stability: every placed page still reports its original frame.
            if rng.next_bool(0.05) {
                for (&v, &f) in placed.iter() {
                    assert_eq!(alloc.frame_of(VirtPage(v)), Some(f), "stability violated");
                }
            }
            assert_eq!(alloc.resident() as usize, placed.len());
        }
    }
}
