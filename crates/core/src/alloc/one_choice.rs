//! The one-choice bucketed allocator (Theorem 1 warm-up).
//!
//! RAM is partitioned into `n` bins of `B` consecutive frames; a page hashes
//! to a single bin (`k = 1`) and takes any free slot there. Codes name the
//! slot: `⌈log₂(B+1)⌉` bits. With `λ = log P · log log P` and
//! `B = λ(1+δ)`, no bin overflows with high probability in `P` (eq. 5,
//! third case), so paging failures are whp absent while codes shrink from
//! `log P` to `Θ(log log P)` bits.

use super::{PagingFailure, Placement, RamAllocator};
use crate::encoding::SlotCode;
use crate::params::{bits_for, OneChoiceParams};
use atp_hash::{FxHashMap, PageHasher};
use atp_types::{PhysPage, VirtPage};

/// One-choice bucketed allocator.
#[derive(Clone, Debug)]
pub struct OneChoiceAlloc {
    hasher: PageHasher,
    /// Per-bin stack of free slot indices (each `< bin_size`).
    free_slots: Vec<Vec<u32>>,
    placed: FxHashMap<VirtPage, (u64, u32)>,
    bin_size: u32,
    bits: u32,
}

impl OneChoiceAlloc {
    /// Creates the allocator from derived or custom parameters.
    pub fn new(params: &OneChoiceParams, seed: u64) -> Self {
        Self::with_geometry(params.bins, params.bin_size, seed)
    }

    /// Creates the allocator with explicit `bins × bin_size` geometry.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `bin_size == 0`.
    pub fn with_geometry(bins: u64, bin_size: u32, seed: u64) -> Self {
        assert!(
            bins > 0 && bin_size > 0,
            "bins and bin_size must be nonzero"
        );
        Self {
            hasher: PageHasher::new(seed, bins, 1),
            free_slots: (0..bins).map(|_| (0..bin_size).rev().collect()).collect(),
            placed: FxHashMap::default(),
            bin_size,
            bits: bits_for(bin_size as u64 + 1),
        }
    }

    /// Number of bins `n`.
    pub fn bins(&self) -> u64 {
        self.free_slots.len() as u64
    }

    /// Bin size `B`.
    pub fn bin_size(&self) -> u32 {
        self.bin_size
    }

    /// Load (occupied slots) of bin `b`.
    pub fn bin_load(&self, b: u64) -> u32 {
        self.bin_size - self.free_slots[b as usize].len() as u32
    }

    #[inline]
    fn frame(&self, bin: u64, slot: u32) -> PhysPage {
        PhysPage(bin * self.bin_size as u64 + slot as u64)
    }
}

impl RamAllocator for OneChoiceAlloc {
    fn place(&mut self, v: VirtPage) -> Result<Placement, PagingFailure> {
        assert!(!self.placed.contains_key(&v), "page {v:?} double-placed");
        let bin = self.hasher.bin(v, 0);
        match self.free_slots[bin as usize].pop() {
            Some(slot) => {
                self.placed.insert(v, (bin, slot));
                Ok(Placement {
                    frame: self.frame(bin, slot),
                    code: SlotCode(slot + 1),
                })
            }
            None => Err(PagingFailure { page: v }),
        }
    }

    fn free(&mut self, v: VirtPage) -> Option<PhysPage> {
        let (bin, slot) = self.placed.remove(&v)?;
        self.free_slots[bin as usize].push(slot);
        Some(self.frame(bin, slot))
    }

    fn frame_of(&self, v: VirtPage) -> Option<PhysPage> {
        self.placed.get(&v).map(|&(b, s)| self.frame(b, s))
    }

    fn code_of(&self, v: VirtPage) -> SlotCode {
        self.placed
            .get(&v)
            .map_or(SlotCode::ABSENT, |&(_, s)| SlotCode(s + 1))
    }

    fn decode(&self, v: VirtPage, code: SlotCode) -> Option<PhysPage> {
        if code.is_absent() || code.0 > self.bin_size {
            return None;
        }
        Some(self.frame(self.hasher.bin(v, 0), code.0 - 1))
    }

    fn bits_per_code(&self) -> u32 {
        self.bits
    }

    fn phys_pages(&self) -> u64 {
        self.bins() * self.bin_size as u64
    }

    fn resident(&self) -> u64 {
        self.placed.len() as u64
    }

    fn associativity(&self) -> u64 {
        self.bin_size as u64
    }

    fn iter_placed(&self) -> Box<dyn Iterator<Item = (VirtPage, PhysPage)> + '_> {
        Box::new(
            self.placed
                .iter()
                .map(|(&v, &(b, s))| (v, self.frame(b, s))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::contract::churn_contract;

    #[test]
    fn contract_holds() {
        // Generous bins so churn rarely fails.
        churn_contract(OneChoiceAlloc::with_geometry(32, 16, 7), 2000, 256, 8000);
    }

    #[test]
    fn code_names_slot_within_hashed_bin() {
        let mut a = OneChoiceAlloc::with_geometry(8, 4, 1);
        let p = a.place(VirtPage(10)).unwrap();
        assert!(p.code.0 >= 1 && p.code.0 <= 4);
        assert_eq!(a.decode(VirtPage(10), p.code), Some(p.frame));
        // Decoding the same code for a different page names a *different*
        // frame (unless the pages collide in the hash) — pure function of v.
        let other = VirtPage(11);
        if a.hasher.bin(other, 0) != a.hasher.bin(VirtPage(10), 0) {
            assert_ne!(a.decode(other, p.code), Some(p.frame));
        }
    }

    #[test]
    fn unit_bins_fail_at_rate_one_minus_one_over_e() {
        // The §4 "difficulty of reducing associativity" experiment, in
        // miniature: B = 1, k = 1, P distinct insertions → ≈ P/e failures.
        let p = 10_000u64;
        let mut a = OneChoiceAlloc::with_geometry(p, 1, 3);
        let mut failures = 0u64;
        for v in 0..p {
            if a.place(VirtPage(v)).is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / p as f64;
        // 1 - (occupied bins)/P ≈ 1/e ≈ 0.368.
        assert!((0.33..0.41).contains(&rate), "failure rate {rate}");
    }

    #[test]
    fn theory_params_survive_fill_without_failures() {
        // Fill to the supported resident bound m with distinct pages; with
        // B = λ + 2.5√(λ ln n) failures must be absent whp (Theorem 1).
        let params = OneChoiceParams::derive(1 << 14);
        let mut a = OneChoiceAlloc::new(&params, 42);
        for v in 0..params.max_resident {
            a.place(VirtPage(v)).expect("no failure at theory params");
        }
        assert_eq!(a.resident(), params.max_resident);
    }

    #[test]
    fn bin_load_accounting() {
        let mut a = OneChoiceAlloc::with_geometry(4, 8, 9);
        assert_eq!((0..4).map(|b| a.bin_load(b)).sum::<u32>(), 0);
        for v in 0..16u64 {
            let _ = a.place(VirtPage(v));
        }
        let total: u32 = (0..4).map(|b| a.bin_load(b)).sum();
        assert_eq!(total as u64, a.resident());
    }

    #[test]
    fn freed_slot_is_reusable_by_same_bin() {
        let mut a = OneChoiceAlloc::with_geometry(1, 2, 5);
        let p1 = a.place(VirtPage(1)).unwrap();
        let _p2 = a.place(VirtPage(2)).unwrap();
        assert!(a.place(VirtPage(3)).is_err(), "bin full");
        a.free(VirtPage(1));
        let p3 = a.place(VirtPage(3)).unwrap();
        assert_eq!(p3.frame, p1.frame, "freed slot reused");
    }

    #[test]
    fn decode_out_of_range_is_none() {
        let a = OneChoiceAlloc::with_geometry(4, 3, 2);
        assert_eq!(a.decode(VirtPage(0), SlotCode(4)), None);
        assert_eq!(a.decode(VirtPage(0), SlotCode::ABSENT), None);
    }
}
