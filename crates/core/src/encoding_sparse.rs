//! Sparse TLB-value encoding: trading decoding misses for coverage.
//!
//! Section 5 motivates the decoding-miss cost with exactly this design:
//! "imagine … a memory-management algorithm chooses to encode for each
//! virtual huge page u in the TLB only the physical addresses of u's most
//! commonly accessed constituent pages; then the pages that do not get
//! encoded would incur decoding misses when they were accessed."
//!
//! [`SparseValue`] stores up to `K` `(index, code)` pairs instead of a dense
//! array of `hmax` codes. Budget: `K · (⌈log₂ hmax⌉ + bits) ≤ w`, so for
//! sparsely-resident huge pages a *much* larger `hmax` fits the same `w` —
//! at the price that a resident-but-unencoded page decodes to "unknown"
//! (a decoding miss, cost ε), rather than breaking correctness.
//!
//! Compare with the dense [`crate::encoding::TlbValue`], which can always
//! encode all `hmax` constituents but caps `hmax` at `w / bits`.

use crate::encoding::SlotCode;
use crate::params::bits_for;

/// A sparse `w`-bit TLB value: up to `K` (constituent index, slot code)
/// pairs over a huge page of `hmax` constituents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseValue {
    entries: Vec<(u32, SlotCode)>,
    capacity: u32,
    hmax: u32,
    bits: u32,
}

impl SparseValue {
    /// Creates an empty sparse value for huge pages of `hmax` constituents
    /// with `bits`-bit slot codes, fitting a `w`-bit budget.
    ///
    /// # Panics
    /// Panics if even one pair does not fit in `w` bits.
    pub fn new(w: u32, hmax: u32, bits: u32) -> Self {
        let pair_bits = bits_for(hmax as u64) + bits;
        let capacity = w / pair_bits;
        assert!(
            capacity >= 1,
            "w={w} cannot hold one ({} + {bits})-bit pair",
            bits_for(hmax as u64)
        );
        Self {
            entries: Vec::with_capacity(capacity as usize),
            capacity,
            hmax,
            bits,
        }
    }

    /// Number of `(index, code)` pairs that fit (`K`).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of encoded constituents.
    pub fn encoded(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Huge-page size this value covers.
    pub fn hmax(&self) -> u32 {
        self.hmax
    }

    /// Bits used by the current contents (≤ w by construction).
    pub fn size_bits(&self) -> u32 {
        self.entries.len() as u32 * (bits_for(self.hmax as u64) + self.bits)
    }

    /// Records constituent `i`'s code. Returns `true` if the code is now
    /// encoded, `false` if it had to be dropped (value full) — the caller
    /// will pay a decoding miss when `i` is next accessed.
    ///
    /// Setting [`SlotCode::ABSENT`] removes any existing entry (eviction).
    ///
    /// # Panics
    /// Panics if `i ≥ hmax` or the code exceeds `bits` bits.
    pub fn set(&mut self, i: u32, code: SlotCode) -> bool {
        assert!(i < self.hmax, "constituent index {i} out of range");
        if !code.is_absent() {
            let mask = if self.bits >= 32 {
                u32::MAX
            } else {
                (1u32 << self.bits) - 1
            };
            assert!(code.0 <= mask, "code {} exceeds {} bits", code.0, self.bits);
        }
        match self.entries.iter().position(|&(idx, _)| idx == i) {
            Some(pos) => {
                if code.is_absent() {
                    self.entries.swap_remove(pos);
                } else {
                    self.entries[pos].1 = code;
                }
                true
            }
            None => {
                if code.is_absent() {
                    true // removing a non-entry is a no-op
                } else if (self.entries.len() as u32) < self.capacity {
                    self.entries.push((i, code));
                    true
                } else {
                    false // dropped: resident but unencoded
                }
            }
        }
    }

    /// Reads constituent `i`'s code: `Some(code)` if encoded, `None` if this
    /// value has no information about `i` (absent *or* unencoded — the
    /// decoder cannot tell, which is precisely what makes the miss a
    /// *decoding* miss rather than an error).
    pub fn get(&self, i: u32) -> Option<SlotCode> {
        self.entries
            .iter()
            .find(|&&(idx, _)| idx == i)
            .map(|&(_, c)| c)
    }

    /// Whether nothing is encoded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The largest `hmax` a sparse value supports for a given `w`, `bits`, and
/// a target number of simultaneously-encodable constituents `k`.
///
/// Unlike the dense encoding's `hmax = w / bits`, the sparse `hmax` grows
/// *exponentially* in the leftover budget: `hmax = 2^((w/k) − bits)`.
pub fn sparse_hmax(w: u32, bits: u32, k: u32) -> u64 {
    let per_pair = w / k.max(1);
    if per_pair <= bits {
        return 1;
    }
    1u64 << (per_pair - bits).min(63)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_respects_budget() {
        // hmax = 4096 → 12-bit indices; 5-bit codes → 17 bits/pair;
        // w = 64 → K = 3.
        let v = SparseValue::new(64, 4096, 5);
        assert_eq!(v.capacity(), 3);
        assert!(v.size_bits() <= 64);
    }

    #[test]
    fn set_get_roundtrip_and_drop() {
        let mut v = SparseValue::new(64, 4096, 5);
        assert!(v.set(7, SlotCode(1)));
        assert!(v.set(100, SlotCode(2)));
        assert!(v.set(4000, SlotCode(3)));
        // Full: the fourth distinct constituent is dropped.
        assert!(!v.set(9, SlotCode(4)));
        assert_eq!(v.get(7), Some(SlotCode(1)));
        assert_eq!(v.get(9), None, "dropped → decoding miss");
        assert_eq!(v.encoded(), 3);
        assert!(v.size_bits() <= 64);
    }

    #[test]
    fn eviction_frees_a_slot() {
        let mut v = SparseValue::new(64, 4096, 5);
        v.set(1, SlotCode(1));
        v.set(2, SlotCode(2));
        v.set(3, SlotCode(3));
        assert!(!v.set(4, SlotCode(4)));
        v.set(2, SlotCode::ABSENT); // constituent 2 evicted from RAM
        assert!(v.set(4, SlotCode(4)), "freed slot is reusable");
        assert_eq!(v.get(2), None);
        assert_eq!(v.get(4), Some(SlotCode(4)));
    }

    #[test]
    fn update_in_place_never_drops() {
        let mut v = SparseValue::new(64, 4096, 5);
        v.set(1, SlotCode(1));
        v.set(2, SlotCode(2));
        v.set(3, SlotCode(3));
        assert!(v.set(1, SlotCode(9)), "updating an encoded entry is free");
        assert_eq!(v.get(1), Some(SlotCode(9)));
    }

    #[test]
    fn absent_removal_of_unencoded_is_noop() {
        let mut v = SparseValue::new(64, 16, 5);
        assert!(v.set(3, SlotCode::ABSENT));
        assert!(v.is_empty());
    }

    #[test]
    fn sparse_hmax_beats_dense_for_sparse_residency() {
        // Dense: w=64, 5-bit codes → hmax = 12 (⌊64/5⌋).
        // Sparse with K=2 encodable: hmax = 2^(32-5) = 2^27 constituents!
        assert_eq!(sparse_hmax(64, 5, 2), 1 << 27);
        assert!(sparse_hmax(64, 5, 2) > (64 / 5) as u64);
        // Degenerate: no room beyond the code → hmax 1.
        assert_eq!(sparse_hmax(8, 8, 1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_bound_checked() {
        let mut v = SparseValue::new(64, 16, 5);
        v.set(16, SlotCode(1));
    }

    #[test]
    fn decoding_miss_accounting_demo() {
        // The §5 scenario end to end at the data-structure level: 8
        // resident constituents, only 3 encodable → 5 accesses out of 8
        // decode as misses.
        let mut v = SparseValue::new(64, 4096, 5);
        let mut dropped = 0;
        for i in 0..8u32 {
            if !v.set(i, SlotCode(i + 1)) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 5);
        let misses = (0..8u32).filter(|&i| v.get(i).is_none()).count();
        assert_eq!(misses, 5);
    }
}
