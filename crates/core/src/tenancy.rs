//! One shared physical pool serving many tenants.
//!
//! [`SharedPoolAlloc`] adapts any single-address-space [`RamAllocator`]
//! into a multi-tenant allocator: tenant `a`'s page `v` is placed as the
//! *pool page* `a · vspan + v` of the underlying allocator, an injective
//! embedding, so the allocator's own injectivity/stability guarantees
//! carry over tenant-by-tenant while every tenant competes for the same
//! `P` frames and the same hashed bins. This is the regime the paper
//! never measured: Iceberg's load bounds are per-pool, so one tenant
//! with a hot, colliding working set inflates its *neighbours'* paging
//! failure sets `F`. Per-tenant residency and failure counts are
//! tracked here for exactly that measurement.

use crate::alloc::{PagingFailure, Placement, RamAllocator};
use atp_hash::{FxHashMap, FxHashSet};
use atp_types::{Asid, PhysPage, VirtPage};

/// A multi-tenant view over one [`RamAllocator`] pool.
///
/// All tenants share the pool's frames, bins, and hash functions; the
/// embedding `pool_page = asid · vspan + v` keeps tenants' address
/// spaces disjoint. `Asid(0)` maps to the identity embedding, so a
/// single-tenant run is bit-for-bit the raw allocator.
#[derive(Debug)]
pub struct SharedPoolAlloc<A: RamAllocator> {
    alloc: A,
    /// Virtual-address-space span per tenant: `v < vspan` for every
    /// placed page.
    vspan: u64,
    /// Per-tenant placed pages (per-tenant v ids), for retirement.
    placed: FxHashMap<u32, FxHashSet<u64>>,
    /// Per-tenant paging-failure counts (the size of each tenant's
    /// stream of failed placements, not a deduplicated set).
    failures: FxHashMap<u32, u64>,
}

impl<A: RamAllocator> SharedPoolAlloc<A> {
    /// Wraps `alloc`, giving each tenant a virtual span of `vspan` pages.
    ///
    /// # Panics
    /// Panics if `vspan == 0`.
    pub fn new(alloc: A, vspan: u64) -> Self {
        assert!(vspan > 0, "tenant virtual span must be nonzero");
        Self {
            alloc,
            vspan,
            placed: FxHashMap::default(),
            failures: FxHashMap::default(),
        }
    }

    /// The injective tenant embedding into the pool's address space.
    ///
    /// # Panics
    /// Panics if `v` is outside the tenant's span.
    #[inline]
    pub fn pool_page(&self, asid: Asid, v: VirtPage) -> VirtPage {
        assert!(
            v.0 < self.vspan,
            "page {v} outside tenant span {}",
            self.vspan
        );
        VirtPage((asid.0 as u64) * self.vspan + v.0)
    }

    /// Places tenant `asid`'s page `v` in the shared pool. A failure is
    /// charged to that tenant's failure count.
    pub fn place(&mut self, asid: Asid, v: VirtPage) -> Result<Placement, PagingFailure> {
        let pool = self.pool_page(asid, v);
        match self.alloc.place(pool) {
            Ok(p) => {
                self.placed.entry(asid.0).or_default().insert(v.0);
                Ok(p)
            }
            Err(f) => {
                *self.failures.entry(asid.0).or_default() += 1;
                Err(f)
            }
        }
    }

    /// Frees tenant `asid`'s page `v`, returning its frame if placed.
    pub fn free(&mut self, asid: Asid, v: VirtPage) -> Option<PhysPage> {
        let pool = self.pool_page(asid, v);
        let frame = self.alloc.free(pool);
        if frame.is_some() {
            if let Some(set) = self.placed.get_mut(&asid.0) {
                set.remove(&v.0);
            }
        }
        frame
    }

    /// Current frame of tenant `asid`'s page `v`, if placed.
    pub fn frame_of(&self, asid: Asid, v: VirtPage) -> Option<PhysPage> {
        self.alloc.frame_of(self.pool_page(asid, v))
    }

    /// Frees every page of `asid` (tenant retirement), returning how many
    /// frames were released. Pages are released in ascending page order
    /// so the underlying allocator sees a deterministic sequence.
    pub fn retire(&mut self, asid: Asid) -> u64 {
        let Some(set) = self.placed.remove(&asid.0) else {
            self.failures.remove(&asid.0);
            return 0;
        };
        let mut pages: Vec<u64> = set.into_iter().collect();
        pages.sort_unstable();
        let mut freed = 0u64;
        for v in pages {
            if self
                .alloc
                .free(VirtPage((asid.0 as u64) * self.vspan + v))
                .is_some()
            {
                freed += 1;
            }
        }
        self.failures.remove(&asid.0);
        freed
    }

    /// Number of pages tenant `asid` currently has placed.
    pub fn tenant_resident(&self, asid: Asid) -> u64 {
        self.placed.get(&asid.0).map_or(0, |s| s.len() as u64)
    }

    /// Paging failures charged to tenant `asid` so far.
    pub fn tenant_failures(&self, asid: Asid) -> u64 {
        self.failures.get(&asid.0).copied().unwrap_or(0)
    }

    /// ASIDs with at least one placed page, in ascending order.
    pub fn active_tenants(&self) -> Vec<Asid> {
        let mut ids: Vec<u32> = self
            .placed
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&a, _)| a)
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(Asid).collect()
    }

    /// The per-tenant virtual span.
    pub fn vspan(&self) -> u64 {
        self.vspan
    }

    /// Total resident pages across all tenants.
    pub fn resident(&self) -> u64 {
        self.alloc.resident()
    }

    /// The shared pool's total physical pages `P`.
    pub fn phys_pages(&self) -> u64 {
        self.alloc.phys_pages()
    }

    /// Read access to the wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::IcebergAlloc;
    use crate::params::IcebergParams;

    fn pool() -> SharedPoolAlloc<IcebergAlloc> {
        let params = IcebergParams::derive(1 << 10);
        SharedPoolAlloc::new(IcebergAlloc::new(&params, 11), 1 << 20)
    }

    #[test]
    fn embedding_is_injective_across_tenants() {
        let p = pool();
        let a = p.pool_page(Asid(1), VirtPage(5));
        let b = p.pool_page(Asid(2), VirtPage(5));
        assert_ne!(a, b);
        // Asid(0) is the identity embedding: single-tenant parity.
        assert_eq!(p.pool_page(Asid::SINGLE, VirtPage(5)), VirtPage(5));
    }

    #[test]
    fn tenants_share_one_pool() {
        let mut p = pool();
        p.place(Asid(1), VirtPage(0)).unwrap();
        p.place(Asid(2), VirtPage(0)).unwrap();
        assert_eq!(p.resident(), 2);
        assert_eq!(p.tenant_resident(Asid(1)), 1);
        assert_eq!(p.tenant_resident(Asid(2)), 1);
        let f1 = p.frame_of(Asid(1), VirtPage(0)).unwrap();
        let f2 = p.frame_of(Asid(2), VirtPage(0)).unwrap();
        assert_ne!(
            f1, f2,
            "injectivity: same v, different tenants, different frames"
        );
    }

    #[test]
    fn retire_releases_everything() {
        let mut p = pool();
        for v in 0..50u64 {
            p.place(Asid(3), VirtPage(v)).unwrap();
        }
        p.place(Asid(4), VirtPage(0)).unwrap();
        assert_eq!(p.retire(Asid(3)), 50);
        assert_eq!(p.tenant_resident(Asid(3)), 0);
        assert_eq!(p.resident(), 1, "other tenants unaffected");
        assert_eq!(p.retire(Asid(3)), 0);
        assert_eq!(p.active_tenants(), vec![Asid(4)]);
    }

    #[test]
    fn free_updates_tenant_accounting() {
        let mut p = pool();
        p.place(Asid(1), VirtPage(7)).unwrap();
        assert!(p.free(Asid(1), VirtPage(7)).is_some());
        assert!(p.free(Asid(1), VirtPage(7)).is_none());
        assert_eq!(p.tenant_resident(Asid(1)), 0);
    }

    #[test]
    fn failures_are_charged_per_tenant() {
        // Tiny pool: force failures by overfilling.
        let params = IcebergParams::derive(64);
        let mut p = SharedPoolAlloc::new(IcebergAlloc::new(&params, 5), 1 << 20);
        let mut failed = 0u64;
        for asid in 1..=4u32 {
            for v in 0..64u64 {
                if p.place(Asid(asid), VirtPage(v)).is_err() {
                    failed += 1;
                }
            }
        }
        assert!(failed > 0, "overfilled pool must fail some placements");
        let charged: u64 = (1..=4u32).map(|a| p.tenant_failures(Asid(a))).sum();
        assert_eq!(charged, failed);
    }

    #[test]
    #[should_panic(expected = "outside tenant span")]
    fn out_of_span_page_rejected() {
        let p = SharedPoolAlloc::new(IcebergAlloc::new(&IcebergParams::derive(64), 5), 16);
        p.pool_page(Asid(1), VirtPage(16));
    }
}
