//! Parallel multi-seed replication with summary statistics.
//!
//! Randomized experiments (paging-failure counts, max loads, shootdowns)
//! need several independent seeds; replications are embarrassingly parallel
//! and summarized as mean ± std. Built on [`crate::sweep`].

use crate::sweep::sweep;

/// Summary statistics over replicated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of replications.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `xs`.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (n={}, range {:.2}..{:.2})",
            self.mean, self.std, self.n, self.min, self.max
        )
    }
}

/// Runs `f(seed)` for `seeds` in parallel and summarizes the results.
pub fn replicate(seeds: &[u64], threads: usize, f: impl Fn(u64) -> f64 + Sync) -> Summary {
    let xs = sweep(seeds, threads, |&s| f(s));
    Summary::of(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_textbook() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    fn replicate_runs_all_seeds() {
        let seeds: Vec<u64> = (0..32).collect();
        let s = replicate(&seeds, 4, |seed| seed as f64);
        assert_eq!(s.n, 32);
        assert!((s.mean - 15.5).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 31.0);
    }

    #[test]
    fn single_replication() {
        let s = replicate(&[7], 1, |x| x as f64);
        assert_eq!(s.n, 1);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn display_is_readable() {
        let s = Summary::of(&[1.0, 2.0]);
        let txt = s.to_string();
        assert!(txt.contains("n=2"));
        assert!(txt.contains('±'));
    }
}
