//! Parallel parameter sweeps.
//!
//! Figure 1 sweeps the huge-page size over eleven values per workload; the
//! theorem experiments sweep `P` and seeds. Runs are independent, so we fan
//! them out over a scoped thread pool with a shared atomic work index
//! (work-stealing by index; no unsafe, no channels on the hot path).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` on every config, in parallel over `threads` workers, returning
/// results in input order.
///
/// `threads = 0` means "number of available CPUs".
pub fn sweep<C: Sync, R: Send>(
    configs: &[C],
    threads: usize,
    f: impl Fn(&C) -> R + Sync,
) -> Vec<R> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(configs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = configs.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let r = f(&configs[i]);
                *results[i].lock().expect("result slot") = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let configs: Vec<u64> = (0..100).collect();
        let out = sweep(&configs, 8, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = sweep(&[1, 2, 3], 1, |&c| c + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_uses_default() {
        let out = sweep(&[5u64; 16], 0, |&c| c);
        assert_eq!(out, vec![5u64; 16]);
    }

    #[test]
    fn empty_configs() {
        let out: Vec<u64> = sweep(&[], 4, |c: &u64| *c);
        assert!(out.is_empty());
    }

    #[test]
    fn actually_parallel() {
        // All workers must participate: record thread ids.
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen = StdMutex::new(HashSet::new());
        let configs = vec![(); 64];
        sweep(&configs, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1, "sweep never parallelized");
    }
}
