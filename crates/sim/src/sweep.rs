//! Parallel parameter sweeps.
//!
//! Figure 1 sweeps the huge-page size over eleven values per workload; the
//! theorem experiments sweep `P` and seeds. Runs are independent, so we fan
//! them out over `std::thread::scope` workers with a shared atomic work
//! index (work-stealing by index; no unsafe, no channels, no locks).
//!
//! Each worker collects `(index, result)` pairs into its own private vector;
//! the pairs are stitched back into input order after the scope joins. A
//! panic in any closure invocation propagates out of [`sweep`] (the scope
//! re-raises the first worker panic on join).
//!
//! Workers claim indices in small *chunks* (one `fetch_add` per
//! [`chunk_size`] configs rather than per config) so the shared counter's
//! cache line is not ping-ponged between cores on cheap per-config work.
//! The chunk size adapts to the sweep shape: large sweeps claim up to 8
//! indices at a time, while small sweeps (e.g. the eleven Figure-1 sizes)
//! keep chunk 1 so no worker idles behind an unlucky batch.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Indices claimed per atomic `fetch_add`: `len / (threads * 4)` clamped to
/// `1..=8`, so every worker gets at least ~4 claim opportunities and
/// contention drops by up to 8× on big sweeps.
fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads * 4).max(1)).clamp(1, 8)
}

/// Runs `f` on every config, in parallel over `threads` workers, returning
/// results in input order.
///
/// `threads = 0` means "number of available CPUs".
///
/// # Panics
/// Re-raises the panic if `f` panics on any config.
pub fn sweep<C: Sync, R: Send>(
    configs: &[C],
    threads: usize,
    f: impl Fn(&C) -> R + Sync,
) -> Vec<R> {
    sweep_with_progress(configs, threads, f, |_, _| {})
}

/// [`sweep`] with a completion callback: `progress(done, total)` fires once
/// per finished config (from the worker thread that finished it), with
/// `done` counting completions globally across all workers. `done` is
/// strictly increasing over the calls a single worker observes and reaches
/// `total` exactly once, so a CLI can render `done/total` without tracking
/// state of its own.
///
/// # Panics
/// Re-raises the panic if `f` panics on any config.
pub fn sweep_with_progress<C: Sync, R: Send>(
    configs: &[C],
    threads: usize,
    f: impl Fn(&C) -> R + Sync,
    progress: impl Fn(usize, usize) + Sync,
) -> Vec<R> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(configs.len().max(1));

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let f = &f;
    let progress = &progress;
    let chunk = chunk_size(configs.len(), threads);

    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= configs.len() {
                            break;
                        }
                        let end = (start + chunk).min(configs.len());
                        for (i, cfg) in configs[start..end].iter().enumerate() {
                            mine.push((start + i, f(cfg)));
                            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                            progress(n, configs.len());
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            // atp-lint: allow(unwrap-policy, reason = "join fails only when a sweep worker panicked; propagate the panic")
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut out: Vec<Option<R>> = configs.iter().map(|_| None).collect();
    for part in parts.drain(..) {
        for (i, r) in part {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        // atp-lint: allow(unwrap-policy, reason = "invariant: chunked claiming assigns every index exactly once")
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let configs: Vec<u64> = (0..100).collect();
        let out = sweep(&configs, 8, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = sweep(&[1, 2, 3], 1, |&c| c + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_uses_default() {
        let out = sweep(&[5u64; 16], 0, |&c| c);
        assert_eq!(out, vec![5u64; 16]);
    }

    #[test]
    fn empty_configs() {
        let out: Vec<u64> = sweep(&[], 4, |c: &u64| *c);
        assert!(out.is_empty());
    }

    #[test]
    fn actually_parallel() {
        // All workers must participate: record thread ids.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let configs = vec![(); 64];
        sweep(&configs, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1, "sweep never parallelized");
    }

    #[test]
    fn worker_panic_propagates() {
        let configs: Vec<u64> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            sweep(&configs, 4, |&c| {
                if c == 17 {
                    panic!("boom at {c}");
                }
                c
            })
        });
        assert!(caught.is_err(), "panic in sweep closure must propagate");
    }

    #[test]
    fn moves_non_copy_results() {
        let out = sweep(&[1u64, 2, 3], 2, |&c| vec![c; c as usize]);
        assert_eq!(out, vec![vec![1], vec![2, 2], vec![3, 3, 3]]);
    }

    #[test]
    fn chunk_size_adapts_to_shape() {
        // Small sweeps must not batch: eleven Figure-1 sizes over 8 threads
        // keep per-index claiming so no worker idles behind a batch.
        assert_eq!(chunk_size(11, 8), 1);
        // Large sweeps cap at 8 indices per atomic op.
        assert_eq!(chunk_size(10_000, 8), 8);
        // In between: everyone still gets ~4 claim opportunities.
        assert_eq!(chunk_size(64, 4), 4);
        // Degenerate inputs stay sane.
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(1, 1), 1);
    }

    #[test]
    fn every_index_claimed_once_at_awkward_lengths() {
        // Lengths straddling chunk boundaries: each config must be run
        // exactly once and land at its own index.
        use std::sync::atomic::AtomicUsize;
        for len in [1usize, 7, 8, 9, 31, 32, 33, 63, 65, 127] {
            for threads in [1usize, 2, 3, 4, 7] {
                let calls = AtomicUsize::new(0);
                let configs: Vec<usize> = (0..len).collect();
                let out = sweep(&configs, threads, |&c| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    c * 3
                });
                assert_eq!(
                    calls.load(Ordering::Relaxed),
                    len,
                    "len {len} × threads {threads}: wrong call count"
                );
                assert_eq!(
                    out,
                    (0..len).map(|c| c * 3).collect::<Vec<_>>(),
                    "len {len} × threads {threads}: order broken"
                );
            }
        }
    }

    #[test]
    fn progress_reports_every_completion_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let configs: Vec<u64> = (0..97).collect();
        let out = sweep_with_progress(
            &configs,
            4,
            |&c| c,
            |done, total| {
                assert_eq!(total, 97);
                seen.lock().unwrap().push(done);
            },
        );
        assert_eq!(out, configs);
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        // Each completion count 1..=97 is reported exactly once.
        assert_eq!(seen, (1..=97).collect::<Vec<_>>());
    }

    #[test]
    fn progress_on_empty_sweep_never_fires() {
        let fired = AtomicUsize::new(0);
        let out: Vec<u64> = sweep_with_progress(
            &[],
            4,
            |c: &u64| *c,
            |_, _| {
                fired.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(out.is_empty());
        assert_eq!(fired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panic_propagates_from_inside_a_chunk() {
        // Large sweep so chunking is active (chunk == 8); the panicking
        // index sits mid-chunk.
        let configs: Vec<u64> = (0..512).collect();
        let caught = std::panic::catch_unwind(|| {
            sweep(&configs, 4, |&c| {
                if c == 260 {
                    panic!("mid-chunk boom");
                }
                c
            })
        });
        assert!(caught.is_err(), "mid-chunk panic must propagate");
    }
}
