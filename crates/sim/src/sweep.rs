//! Parallel parameter sweeps.
//!
//! Figure 1 sweeps the huge-page size over eleven values per workload; the
//! theorem experiments sweep `P` and seeds. Runs are independent, so we fan
//! them out over `std::thread::scope` workers with a shared atomic work
//! index (work-stealing by index; no unsafe, no channels, no locks).
//!
//! Each worker collects `(index, result)` pairs into its own private vector;
//! the pairs are stitched back into input order after the scope joins. A
//! panic in any closure invocation propagates out of [`sweep`] (the scope
//! re-raises the first worker panic on join).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` on every config, in parallel over `threads` workers, returning
/// results in input order.
///
/// `threads = 0` means "number of available CPUs".
///
/// # Panics
/// Re-raises the panic if `f` panics on any config.
pub fn sweep<C: Sync, R: Send>(
    configs: &[C],
    threads: usize,
    f: impl Fn(&C) -> R + Sync,
) -> Vec<R> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(configs.len().max(1));

    let next = AtomicUsize::new(0);
    let f = &f;

    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= configs.len() {
                            break;
                        }
                        mine.push((i, f(&configs[i])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut out: Vec<Option<R>> = configs.iter().map(|_| None).collect();
    for part in parts.drain(..) {
        for (i, r) in part {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let configs: Vec<u64> = (0..100).collect();
        let out = sweep(&configs, 8, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = sweep(&[1, 2, 3], 1, |&c| c + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_uses_default() {
        let out = sweep(&[5u64; 16], 0, |&c| c);
        assert_eq!(out, vec![5u64; 16]);
    }

    #[test]
    fn empty_configs() {
        let out: Vec<u64> = sweep(&[], 4, |c: &u64| *c);
        assert!(out.is_empty());
    }

    #[test]
    fn actually_parallel() {
        // All workers must participate: record thread ids.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let configs = vec![(); 64];
        sweep(&configs, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(seen.lock().unwrap().len() > 1, "sweep never parallelized");
    }

    #[test]
    fn worker_panic_propagates() {
        let configs: Vec<u64> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            sweep(&configs, 4, |&c| {
                if c == 17 {
                    panic!("boom at {c}");
                }
                c
            })
        });
        assert!(caught.is_err(), "panic in sweep closure must propagate");
    }

    #[test]
    fn moves_non_copy_results() {
        let out = sweep(&[1u64, 2, 3], 2, |&c| vec![c; c as usize]);
        assert_eq!(out, vec![vec![1], vec![2, 2], vec![3, 3, 3]]);
    }
}
