//! The trace "compiler": walk-path memoization for batched replay.
//!
//! A radix page-table walk touches up to four table pages per
//! translation, and real traces re-translate the same few pages over and
//! over inside any reasonable window. [`TraceCompiler`] wraps a
//! [`PageTable`] and *pre-resolves* repeated translations: the first
//! resolve of a page does the real walk and memoizes the result; further
//! resolves inside the window are served from the memo with **zero table
//! touches** — the batched engine's amortization of the walk stage.
//!
//! Correctness is an invalidation discipline, property-tested in
//! `atp-check` against linear-scan oracles:
//!
//! * **remap** ([`TraceCompiler::map`]) and **unmap**
//!   ([`TraceCompiler::unmap`]) invalidate the page's memo entry before
//!   mutating the table. An unmap that tears out more than one base page
//!   (a huge leaf) conservatively flushes the whole memo — the span is
//!   not observable through the [`PageTable`] trait.
//! * **shootdown** ([`TraceCompiler::shootdown`]) invalidates one page on
//!   external notice (another core remapped it) without touching the
//!   table.
//! * **flush** ([`TraceCompiler::flush`]) drops every memoized path; any
//!   table mutation done behind the compiler's back
//!   ([`TraceCompiler::mutate_table`]) flushes conservatively.
//!
//! The memo is bounded: at most `window` entries, evicted FIFO — the
//! "window" in which repeats are pre-resolved. [`TenantCompiler`] layers
//! per-ASID compilers for multi-tenant (v2 `TenantOp`) traces, where
//! `flush_asid` and tenant retirement invalidate exactly one space.

use std::collections::VecDeque;

use atp_hash::FxHashMap;
use atp_pagetable::{PageTable, WalkStats};
use atp_types::{Asid, PhysPage, VirtPage};

/// Outcome of one [`TraceCompiler::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolved {
    /// The translation (`None` = unmapped), identical to what
    /// [`PageTable::translate`] would return right now.
    pub phys: Option<PhysPage>,
    /// Table memory locations touched by *this* resolve: the real walk's
    /// touches on a memo miss, 0 on a memo hit.
    pub touches: u64,
    /// Whether the walk was skipped (served from the memo).
    pub memoized: bool,
}

/// Counters for one compiler (monotonic, never reset by flushes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Resolves served from the memo (walk skipped).
    pub memo_hits: u64,
    /// Resolves that performed a real walk.
    pub walks: u64,
    /// Table touches actually paid by real walks.
    pub walk_touches: u64,
    /// Table touches avoided by memo hits (what the walks they replaced
    /// cost the first time).
    pub touches_saved: u64,
    /// Memo entries dropped by targeted invalidation (unmap/remap/
    /// shootdown) or FIFO window eviction.
    pub invalidations: u64,
    /// Whole-memo flushes (huge-leaf unmaps, explicit flush,
    /// out-of-band table mutation).
    pub flushes: u64,
}

/// A [`PageTable`] wrapper memoizing resolved walk paths within a bounded
/// window. See the module docs for the invalidation rules.
#[derive(Debug)]
pub struct TraceCompiler<T: PageTable> {
    table: T,
    /// page id → (translation, touches the original walk cost).
    memo: FxHashMap<u64, (Option<PhysPage>, u64)>,
    /// FIFO of memoized page ids bounding the memo to `window` entries.
    order: VecDeque<u64>,
    window: usize,
    stats: CompileStats,
}

impl<T: PageTable> TraceCompiler<T> {
    /// Wraps `table`, memoizing at most `window` pre-resolved pages.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(table: T, window: usize) -> Self {
        assert!(window > 0, "compiler window must be nonzero");
        Self {
            table,
            memo: FxHashMap::default(),
            order: VecDeque::new(),
            window,
            stats: CompileStats::default(),
        }
    }

    /// The wrapped table (read-only; mutate via the compiler's methods or
    /// [`TraceCompiler::mutate_table`]).
    pub fn table(&self) -> &T {
        &self.table
    }

    /// Counters.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Number of currently memoized pages.
    pub fn memoized(&self) -> usize {
        self.memo.len()
    }

    /// Whether `v`'s walk path is currently pre-resolved.
    pub fn is_memoized(&self, v: VirtPage) -> bool {
        self.memo.contains_key(&v.0)
    }

    /// Translates `v`: a real walk on the first resolve in the window,
    /// the memoized path (0 touches) on repeats.
    pub fn resolve(&mut self, v: VirtPage) -> Resolved {
        if let Some(&(phys, cost)) = self.memo.get(&v.0) {
            self.stats.memo_hits += 1;
            self.stats.touches_saved += cost;
            return Resolved {
                phys,
                touches: 0,
                memoized: true,
            };
        }
        let (phys, walk) = self.table.translate(v);
        self.stats.walks += 1;
        self.stats.walk_touches += walk.touches;
        if self.memo.len() == self.window {
            // atp-lint: allow(unwrap-policy, reason = "invariant: memo and its FIFO order queue grow and shrink in lockstep, so a full memo has a front")
            let oldest = self.order.pop_front().expect("window order nonempty");
            self.memo.remove(&oldest);
            self.stats.invalidations += 1;
        }
        self.memo.insert(v.0, (phys, walk.touches));
        self.order.push_back(v.0);
        Resolved {
            phys,
            touches: walk.touches,
            memoized: false,
        }
    }

    /// Resolves a window of accesses in order (the batched driver's
    /// "compile" pass), returning how many were served from the memo.
    pub fn resolve_window(&mut self, pages: &[VirtPage], out: &mut Vec<Resolved>) -> u64 {
        out.clear();
        out.reserve(pages.len());
        let mut memoized = 0;
        for &v in pages {
            let r = self.resolve(v);
            memoized += u64::from(r.memoized);
            out.push(r);
        }
        memoized
    }

    /// Drops `v` from the memo (if present), keeping the FIFO queue lazy:
    /// stale queue entries are skipped when they surface. Counts one
    /// invalidation when something was actually dropped.
    fn invalidate(&mut self, v: VirtPage) {
        if self.memo.remove(&v.0).is_some() {
            self.stats.invalidations += 1;
            self.order.retain(|&p| p != v.0);
        }
    }

    /// Maps (or remaps) `v → p` through the compiler: the memoized path
    /// for `v` is invalidated first, then the table is updated.
    pub fn map(&mut self, v: VirtPage, p: PhysPage) -> WalkStats {
        self.invalidate(v);
        self.table.map(v, p)
    }

    /// Unmaps `v` through the compiler. A single-page unmap invalidates
    /// only `v`'s memo entry; an unmap that removed more than one base
    /// page (a huge leaf — unobservable through the trait) flushes the
    /// whole memo.
    pub fn unmap(&mut self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        self.invalidate(v);
        let before = self.table.mapped();
        let out = self.table.unmap(v);
        if before.saturating_sub(self.table.mapped()) > 1 {
            self.flush();
        }
        out
    }

    /// External invalidation of `v` (another core's remap / a TLB
    /// shootdown): drops the memoized path without touching the table.
    pub fn shootdown(&mut self, v: VirtPage) {
        self.invalidate(v);
    }

    /// Drops every memoized walk path.
    pub fn flush(&mut self) {
        self.memo.clear();
        self.order.clear();
        self.stats.flushes += 1;
    }

    /// Runs an arbitrary mutation against the wrapped table, conservatively
    /// flushing the memo first (the compiler cannot see what changed).
    /// This is the escape hatch for operations outside the [`PageTable`]
    /// trait — e.g. `RadixPageTable::map_huge`.
    pub fn mutate_table<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        self.flush();
        f(&mut self.table)
    }
}

/// Per-tenant trace compilation: one [`TraceCompiler`] per address space,
/// created on first use from `T::default()`. `flush_asid` and retirement
/// invalidate exactly one tenant's memo, mirroring the ASID-tagged TLB's
/// targeted invalidation.
#[derive(Debug, Default)]
pub struct TenantCompiler<T: PageTable + Default> {
    spaces: FxHashMap<u32, TraceCompiler<T>>,
    window: usize,
}

impl<T: PageTable + Default> TenantCompiler<T> {
    /// Creates an empty tenant compiler; each tenant's memo is bounded by
    /// `window` entries.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "compiler window must be nonzero");
        Self {
            spaces: FxHashMap::default(),
            window,
        }
    }

    /// The compiler for `asid`, created on first use.
    pub fn space(&mut self, asid: Asid) -> &mut TraceCompiler<T> {
        let window = self.window;
        self.spaces
            .entry(asid.0)
            .or_insert_with(|| TraceCompiler::new(T::default(), window))
    }

    /// Read-only view of an existing tenant's compiler.
    pub fn peek(&self, asid: Asid) -> Option<&TraceCompiler<T>> {
        self.spaces.get(&asid.0)
    }

    /// Number of live address spaces.
    pub fn tenants(&self) -> usize {
        self.spaces.len()
    }

    /// Resolves `v` in `asid`'s space.
    pub fn resolve(&mut self, asid: Asid, v: VirtPage) -> Resolved {
        self.space(asid).resolve(v)
    }

    /// Drops `asid`'s memoized paths (its table is untouched) — the
    /// context-switch-storm analog for untagged setups. No-op for unknown
    /// tenants.
    pub fn flush_asid(&mut self, asid: Asid) {
        if let Some(c) = self.spaces.get_mut(&asid.0) {
            c.flush();
        }
    }

    /// Tears down `asid` entirely: memo *and* table are dropped, so a
    /// recycled ASID starts from an empty space.
    pub fn retire(&mut self, asid: Asid) {
        self.spaces.remove(&asid.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_pagetable::RadixPageTable;

    fn compiler(window: usize) -> TraceCompiler<RadixPageTable> {
        TraceCompiler::new(RadixPageTable::new(), window)
    }

    #[test]
    fn repeat_resolves_skip_the_walk() {
        let mut c = compiler(16);
        c.map(VirtPage(5), PhysPage(50));
        let first = c.resolve(VirtPage(5));
        assert!(!first.memoized);
        assert_eq!(first.phys, Some(PhysPage(50)));
        assert!(first.touches > 0, "real walk touches table pages");
        let again = c.resolve(VirtPage(5));
        assert_eq!(
            again,
            Resolved {
                phys: Some(PhysPage(50)),
                touches: 0,
                memoized: true
            }
        );
        let s = c.stats();
        assert_eq!((s.walks, s.memo_hits), (1, 1));
        assert_eq!(s.touches_saved, first.touches);
    }

    #[test]
    fn unmapped_pages_memoize_their_miss() {
        let mut c = compiler(16);
        assert_eq!(c.resolve(VirtPage(9)).phys, None);
        let again = c.resolve(VirtPage(9));
        assert!(again.memoized);
        assert_eq!(again.phys, None);
        // …and a later map must invalidate that memoized miss.
        c.map(VirtPage(9), PhysPage(90));
        let after = c.resolve(VirtPage(9));
        assert!(!after.memoized);
        assert_eq!(after.phys, Some(PhysPage(90)));
    }

    #[test]
    fn remap_and_unmap_invalidate() {
        let mut c = compiler(16);
        c.map(VirtPage(1), PhysPage(10));
        c.resolve(VirtPage(1));
        c.map(VirtPage(1), PhysPage(11)); // remap
        assert!(!c.is_memoized(VirtPage(1)));
        assert_eq!(c.resolve(VirtPage(1)).phys, Some(PhysPage(11)));
        assert_eq!(c.unmap(VirtPage(1)).0, Some(PhysPage(11)));
        assert_eq!(c.resolve(VirtPage(1)).phys, None);
    }

    #[test]
    fn shootdown_invalidates_without_table_change() {
        let mut c = compiler(16);
        c.map(VirtPage(2), PhysPage(20));
        c.resolve(VirtPage(2));
        c.shootdown(VirtPage(2));
        assert!(!c.is_memoized(VirtPage(2)));
        let r = c.resolve(VirtPage(2));
        assert!(!r.memoized, "shootdown forces a re-walk");
        assert_eq!(r.phys, Some(PhysPage(20)));
    }

    #[test]
    fn window_evicts_fifo() {
        let mut c = compiler(2);
        for v in 0..3u64 {
            c.resolve(VirtPage(v));
        }
        assert!(!c.is_memoized(VirtPage(0)), "FIFO evicted the oldest");
        assert!(c.is_memoized(VirtPage(1)));
        assert!(c.is_memoized(VirtPage(2)));
        assert_eq!(c.memoized(), 2);
    }

    #[test]
    fn huge_leaf_unmap_flushes_conservatively() {
        let mut c = compiler(64);
        c.mutate_table(|t| t.map_huge(VirtPage(0), 1, PhysPage(0)));
        c.map(VirtPage(4096), PhysPage(1));
        c.resolve(VirtPage(3)); // inside the huge leaf
        c.resolve(VirtPage(4096));
        // Unmapping any page of the huge leaf removes 512 mappings.
        c.unmap(VirtPage(7));
        assert_eq!(c.memoized(), 0, "span unmap must flush the whole memo");
        assert_eq!(c.resolve(VirtPage(3)).phys, None);
        assert_eq!(c.resolve(VirtPage(4096)).phys, Some(PhysPage(1)));
    }

    #[test]
    fn resolve_window_counts_memo_hits() {
        let mut c = compiler(16);
        c.map(VirtPage(1), PhysPage(10));
        let mut out = Vec::new();
        let pages = [VirtPage(1), VirtPage(2), VirtPage(1), VirtPage(2)];
        let memoized = c.resolve_window(&pages, &mut out);
        assert_eq!(memoized, 2, "second lap over both pages is pre-resolved");
        assert_eq!(out.len(), 4);
        assert_eq!(out[2].phys, Some(PhysPage(10)));
        assert!(out[2].memoized && out[3].memoized);
    }

    #[test]
    fn tenant_spaces_are_isolated() {
        let mut tc: TenantCompiler<RadixPageTable> = TenantCompiler::new(16);
        tc.space(Asid(1)).map(VirtPage(5), PhysPage(50));
        tc.space(Asid(2)).map(VirtPage(5), PhysPage(99));
        assert_eq!(tc.resolve(Asid(1), VirtPage(5)).phys, Some(PhysPage(50)));
        assert_eq!(tc.resolve(Asid(2), VirtPage(5)).phys, Some(PhysPage(99)));
        // flush_asid drops only tenant 1's memo.
        tc.flush_asid(Asid(1));
        assert!(tc.resolve(Asid(2), VirtPage(5)).memoized);
        assert!(!tc.resolve(Asid(1), VirtPage(5)).memoized);
        // Retirement drops the table too: a recycled ASID sees nothing.
        tc.retire(Asid(1));
        assert_eq!(tc.resolve(Asid(1), VirtPage(5)).phys, None);
        assert_eq!(tc.tenants(), 2);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_rejected() {
        compiler(0);
    }
}
