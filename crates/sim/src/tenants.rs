//! Context-switch-aware driver for multi-tenant traces.
//!
//! Mirrors [`crate::runner`]'s warmup/measure protocol, but over
//! [`TenantOp`] streams: `Access` records are replayed against the
//! current tenant, `Switch` records change the current tenant (free for
//! ASID-tagged managers, a shootdown storm for anything that must
//! flush), and `Retire` records tear a tenant down so its ASID can be
//! recycled. Only `Access` records count toward the warmup/measure
//! quotas — control records ride along with whatever access they
//! precede, so the same access sequence under different switch cadences
//! stays length-comparable.
//!
//! The current tenant starts at [`Asid::SINGLE`], so a stream with no
//! `Switch` records drives the manager exactly like the single-tenant
//! runner drives a [`atp_memmgmt::MemoryManager`].

use atp_memmgmt::TenantManager;
use atp_types::{Asid, Costs, TenantOp};

use crate::runner::DEFAULT_BATCH;

/// Result of one multi-tenant run.
///
/// Wall-clock-free like [`crate::runner::SimStats`]: a pure function of
/// (manager, ops, warmup, measure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStats {
    /// Manager description.
    pub name: String,
    /// Aggregate costs accumulated during the measurement phase.
    pub costs: Costs,
    /// Aggregate costs accumulated during warmup (informational).
    pub warmup_costs: Costs,
    /// Per-tenant measurement-phase costs, ascending by ASID.
    pub per_tenant: Vec<(Asid, Costs)>,
    /// Context switches replayed during measurement.
    pub switches: u64,
    /// Tenants retired during measurement.
    pub retirements: u64,
    /// TLB entries shot down by measurement-phase switches and
    /// retirements (the shootdown storm; 0 for tagged TLBs under pure
    /// switching).
    pub shootdowns: u64,
}

impl TenantStats {
    /// Distinct tenants that made at least one measured access.
    pub fn tenants_seen(&self) -> usize {
        self.per_tenant.len()
    }
}

/// Drives `mgr` over `ops` with the warmup/measure protocol and the
/// default batch size.
pub fn run_tenants<M: TenantManager + ?Sized>(
    mgr: &mut M,
    ops: impl IntoIterator<Item = TenantOp>,
    warmup: u64,
    measure: u64,
) -> TenantStats {
    run_tenants_batched(mgr, ops, warmup, measure, DEFAULT_BATCH)
}

/// [`run_tenants`] with an explicit batch size (accesses per
/// [`TenantManager::batch_boundary`] announcement).
///
/// # Panics
/// Panics if `batch` is zero.
pub fn run_tenants_batched<M: TenantManager + ?Sized>(
    mgr: &mut M,
    ops: impl IntoIterator<Item = TenantOp>,
    warmup: u64,
    measure: u64,
    batch: usize,
) -> TenantStats {
    assert!(batch > 0, "batch size must be positive");
    let mut iter = ops.into_iter();
    let mut current = Asid::SINGLE;

    drive(mgr, &mut iter, &mut current, warmup, batch);
    let warmup_costs = mgr.costs();
    mgr.reset_costs();
    let measured = drive(mgr, &mut iter, &mut current, measure, batch);

    TenantStats {
        name: mgr.name(),
        costs: mgr.costs(),
        warmup_costs,
        per_tenant: mgr.tenant_costs(),
        switches: measured.switches,
        retirements: measured.retirements,
        shootdowns: measured.shootdowns,
    }
}

#[derive(Default)]
struct PhaseCounts {
    switches: u64,
    retirements: u64,
    shootdowns: u64,
}

/// Replays ops until `quota` accesses have been made or the stream ends.
/// Control records (`Switch`, `Retire`) do not consume quota.
fn drive<M: TenantManager + ?Sized>(
    mgr: &mut M,
    iter: &mut impl Iterator<Item = TenantOp>,
    current: &mut Asid,
    quota: u64,
    batch: usize,
) -> PhaseCounts {
    let mut counts = PhaseCounts::default();
    let mut remaining = quota;
    let mut chunk = 0usize;
    while remaining > 0 {
        let Some(op) = iter.next() else { break };
        match op {
            TenantOp::Access(v) => {
                mgr.access(*current, v);
                remaining -= 1;
                chunk += 1;
                if chunk == batch {
                    mgr.batch_boundary(chunk);
                    chunk = 0;
                }
            }
            TenantOp::Switch(to) => {
                if to != *current {
                    counts.shootdowns += mgr.context_switch(*current, to);
                    counts.switches += 1;
                    *current = to;
                }
            }
            TenantOp::Retire(asid) => {
                counts.shootdowns += mgr.retire_tenant(asid);
                counts.retirements += 1;
            }
        }
    }
    if chunk > 0 {
        mgr.batch_boundary(chunk);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_memmgmt::classic::{ClassicConfig, ClassicMm};
    use atp_memmgmt::{TenantArena, TenantMm, TenantMmConfig};
    use atp_types::VirtPage;

    fn access_ops(n: u64, span: u64) -> impl Iterator<Item = TenantOp> {
        (0..n).map(move |i| TenantOp::Access(VirtPage((i * 13) % span)))
    }

    #[test]
    fn switchless_stream_matches_single_tenant_runner() {
        // No Switch records → TenantArena over ClassicMm must reproduce
        // the plain runner bit-for-bit.
        let trace: Vec<VirtPage> = (0..4000u64).map(|i| VirtPage((i * 13) % 700)).collect();
        let mut bare = ClassicMm::new(ClassicConfig::paper(4, 256));
        let bare_stats = crate::runner::run(&mut bare, trace.iter().copied(), 1000, 3000);

        let mut arena = TenantArena::new(ClassicMm::new(ClassicConfig::paper(4, 256)), 1 << 16);
        let stats = run_tenants(
            &mut arena,
            trace.iter().copied().map(TenantOp::Access),
            1000,
            3000,
        );
        assert_eq!(stats.costs, bare_stats.costs);
        assert_eq!(stats.warmup_costs, bare_stats.warmup_costs);
        assert_eq!(stats.per_tenant, vec![(Asid::SINGLE, bare_stats.costs)]);
        assert_eq!(stats.switches, 0);
        assert_eq!(stats.shootdowns, 0);
    }

    #[test]
    fn control_records_do_not_consume_quota() {
        let mut mm = TenantMm::new(TenantMmConfig::paper(4, 1 << 10));
        // 100 accesses interleaved with a switch before each one: all
        // 100 must land inside a 100-access measure phase.
        let ops: Vec<TenantOp> = (0..100u64)
            .flat_map(|i| {
                [
                    TenantOp::Switch(Asid((i % 4) as u32)),
                    TenantOp::Access(VirtPage(i)),
                ]
            })
            .collect();
        let stats = run_tenants(&mut mm, ops, 0, 100);
        assert_eq!(stats.costs.accesses, 100);
        assert_eq!(stats.tenants_seen(), 4);
        // First Switch(0) is a no-op (already current); the rest count.
        assert!(stats.switches > 0);
        assert_eq!(stats.shootdowns, 0, "tagged TLB: switches flush nothing");
    }

    #[test]
    fn retirement_storms_are_counted() {
        let mut mm = TenantMm::new(TenantMmConfig::paper(4, 1 << 10));
        let mut ops: Vec<TenantOp> = vec![TenantOp::Switch(Asid(1))];
        ops.extend(access_ops(64, 64));
        ops.push(TenantOp::Retire(Asid(1)));
        ops.push(TenantOp::Switch(Asid(2)));
        ops.extend(access_ops(8, 64));
        let stats = run_tenants(&mut mm, ops, 0, u64::MAX);
        assert_eq!(stats.retirements, 1);
        assert!(stats.shootdowns > 0, "retiring a warm tenant storms");
    }

    #[test]
    fn warmup_counts_are_excluded() {
        let mut mm = TenantMm::new(TenantMmConfig::paper(4, 1 << 10));
        // Switch + retire storm entirely inside warmup: the retirement
        // comes before warmup's access quota is exhausted.
        let mut ops: Vec<TenantOp> = vec![TenantOp::Switch(Asid(1))];
        ops.extend(access_ops(32, 64));
        ops.push(TenantOp::Retire(Asid(1)));
        ops.push(TenantOp::Switch(Asid(2)));
        ops.extend(access_ops(64, 64));
        let stats = run_tenants(&mut mm, ops, 64, 32);
        assert_eq!(stats.costs.accesses, 32);
        assert_eq!(stats.retirements, 0, "warmup retirement not reported");
        assert_eq!(stats.per_tenant.len(), 1, "only tenant 2 measured");
        assert_eq!(stats.per_tenant[0].0, Asid(2));
    }

    #[test]
    fn batching_preserves_costs() {
        let ops: Vec<TenantOp> = (0..3000u64)
            .map(|i| {
                if i % 97 == 0 {
                    TenantOp::Switch(Asid((i % 5) as u32))
                } else {
                    TenantOp::Access(VirtPage(i % 400))
                }
            })
            .collect();
        let mut a = TenantMm::new(TenantMmConfig::paper(4, 1 << 9));
        let mut b = TenantMm::new(TenantMmConfig::paper(4, 1 << 9));
        let sa = run_tenants_batched(&mut a, ops.iter().copied(), 500, 2000, 7);
        let sb = run_tenants_batched(&mut b, ops.iter().copied(), 500, 2000, 4096);
        assert_eq!(sa.costs, sb.costs);
        assert_eq!(sa.per_tenant, sb.per_tenant);
    }
}
