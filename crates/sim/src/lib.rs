//! Trace-driven simulation drivers.
//!
//! * [`run`] — drive one memory manager over a trace with the paper's
//!   warmup-then-measure protocol (Section 6);
//! * [`sweep`] — fan a family of configurations out over worker threads
//!   (used for the huge-page-size sweeps of Figure 1 and the parameter
//!   sweeps of the theorem-validation experiments);
//! * [`multicore`] — the Section 1 "trends" extension: per-core TLBs over a
//!   shared page cache, with TLB-shootdown accounting on evictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod epsilon;
pub mod multicore;
pub mod replicate;
pub mod runner;
pub mod sweep;
pub mod tenants;

pub use compile::{CompileStats, Resolved, TenantCompiler, TraceCompiler};
pub use epsilon::LatencyModel;
pub use multicore::{
    run_multicore, run_multicore_observed, CoreStats, MulticoreConfig, MulticoreResult,
    ShootdownTally,
};
pub use replicate::{replicate, Summary};
pub use runner::{run, run_batched, SimStats, DEFAULT_BATCH};
pub use sweep::{sweep, sweep_with_progress};
pub use tenants::{run_tenants, run_tenants_batched, TenantStats};
