//! Single-run driver with the paper's warmup/measure protocol.
//!
//! Traces are streamed in fixed-size batches through a reused buffer:
//! the driver pulls up to [`DEFAULT_BATCH`] pages from the trace iterator,
//! replays them against the manager, then announces the chunk via
//! [`MemoryManager::batch_boundary`] (pipelines forward it to their
//! observer). Batching keeps the iterator → manager handoff out of the
//! per-access hot path and gives observers natural flush points without
//! changing the access sequence in any way.

use atp_memmgmt::MemoryManager;
use atp_types::{Costs, VirtPage};

/// Default batch size for [`run`] (pages per chunk).
pub const DEFAULT_BATCH: usize = 4096;

/// Result of one simulation run.
///
/// Deliberately wall-clock-free: a `SimStats` is a pure function of
/// (manager, trace, warmup, measure), so goldens and observability
/// exports derived from it can be pinned byte-for-byte. Callers that
/// want to report elapsed time (CLI, benches) time around the call.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Manager description.
    pub name: String,
    /// Costs accumulated during the measurement phase.
    pub costs: Costs,
    /// Costs accumulated during warmup (informational).
    pub warmup_costs: Costs,
}

/// Drives `mgr` over `trace`: `warmup` accesses to fill caches (counters
/// then reset — "100 million accesses to warm up the cache"), then
/// `measure` accesses that are reported. Stops early if the trace ends.
/// Streams in [`DEFAULT_BATCH`]-sized chunks.
pub fn run<M: MemoryManager + ?Sized>(
    mgr: &mut M,
    trace: impl IntoIterator<Item = VirtPage>,
    warmup: u64,
    measure: u64,
) -> SimStats {
    run_batched(mgr, trace, warmup, measure, DEFAULT_BATCH)
}

/// [`run`] with an explicit batch size.
///
/// # Panics
/// Panics if `batch` is zero.
pub fn run_batched<M: MemoryManager + ?Sized>(
    mgr: &mut M,
    trace: impl IntoIterator<Item = VirtPage>,
    warmup: u64,
    measure: u64,
    batch: usize,
) -> SimStats {
    assert!(batch > 0, "batch size must be positive");
    let mut iter = trace.into_iter();
    let mut buf = Vec::with_capacity(batch);
    drive(mgr, &mut iter, warmup, batch, &mut buf);
    let warmup_costs = mgr.costs();
    mgr.reset_costs();
    drive(mgr, &mut iter, measure, batch, &mut buf);
    SimStats {
        name: mgr.name(),
        costs: mgr.costs(),
        warmup_costs,
    }
}

/// Replays up to `total` accesses in `batch`-sized chunks through the
/// reused `buf`, announcing each chunk boundary. Stops when the trace ends.
fn drive<M: MemoryManager + ?Sized>(
    mgr: &mut M,
    iter: &mut impl Iterator<Item = VirtPage>,
    total: u64,
    batch: usize,
    buf: &mut Vec<VirtPage>,
) {
    let mut remaining = total;
    while remaining > 0 {
        let want = remaining.min(batch as u64) as usize;
        buf.clear();
        buf.extend(iter.by_ref().take(want));
        if buf.is_empty() {
            break;
        }
        // Batched engines software-pipeline the chunk; the default is a
        // plain per-access loop. Either way the access sequence, and the
        // boundary emission below, are bit-for-bit the same — in
        // particular, an empty final chunk broke out above and announces
        // no boundary.
        mgr.access_batch(buf);
        mgr.batch_boundary(buf.len());
        remaining -= buf.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_memmgmt::classic::{ClassicConfig, ClassicMm, ClassicStages};
    use atp_memmgmt::{MemoryManager, Pipeline, Recorder};
    use atp_workloads::Sequential;

    #[test]
    fn warmup_is_excluded_from_measurement() {
        let mut m = ClassicMm::new(ClassicConfig::paper(1, 64));
        // 64-page cyclic scan over a 64-page RAM: warmup takes all the
        // compulsory misses; measurement sees none.
        let stats = run(&mut m, Sequential::new(64), 64, 128);
        assert_eq!(stats.warmup_costs.ios, 64);
        assert_eq!(stats.costs.ios, 0);
        assert_eq!(stats.costs.accesses, 128);
    }

    #[test]
    fn short_trace_stops_early() {
        let mut m = ClassicMm::new(ClassicConfig::paper(1, 16));
        let trace: Vec<_> = Sequential::new(8).take(10).collect();
        let stats = run(&mut m, trace, 4, 100);
        assert_eq!(stats.costs.accesses, 6);
    }

    #[test]
    fn name_propagates() {
        let mut m = ClassicMm::new(ClassicConfig::paper(4, 64));
        let stats = run(&mut m, Sequential::new(16), 0, 16);
        assert_eq!(stats.name, m.name());
    }

    #[test]
    fn batching_preserves_costs() {
        // Same trace, different chunkings: identical Costs.
        let trace: Vec<_> = Sequential::new(300).take(5000).collect();
        let mut a = ClassicMm::new(ClassicConfig::paper(4, 128));
        let mut b = ClassicMm::new(ClassicConfig::paper(4, 128));
        let sa = run_batched(&mut a, trace.iter().copied(), 1000, 4000, 7);
        let sb = run_batched(&mut b, trace.iter().copied(), 1000, 4000, 4096);
        assert_eq!(sa.costs, sb.costs);
        assert_eq!(sa.warmup_costs, sb.warmup_costs);
    }

    #[test]
    fn observers_see_batch_boundaries() {
        let mut m = Pipeline::with_observer(
            ClassicStages::new(ClassicConfig::paper(1, 64)),
            Recorder::new(),
        );
        // 10 accesses in chunks of 4 → boundaries after 4, 4, 2.
        let trace: Vec<_> = Sequential::new(8).take(10).collect();
        run_batched(&mut m, trace, 0, 100, 4);
        assert_eq!(m.observer().counters().batches, 3);
    }
}
