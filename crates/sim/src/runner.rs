//! Single-run driver with the paper's warmup/measure protocol.

use atp_memmgmt::MemoryManager;
use atp_types::{Costs, VirtPage};
use std::time::{Duration, Instant};

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Manager description.
    pub name: String,
    /// Costs accumulated during the measurement phase.
    pub costs: Costs,
    /// Costs accumulated during warmup (informational).
    pub warmup_costs: Costs,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// Drives `mgr` over `trace`: `warmup` accesses to fill caches (counters
/// then reset — "100 million accesses to warm up the cache"), then
/// `measure` accesses that are reported. Stops early if the trace ends.
pub fn run<M: MemoryManager + ?Sized>(
    mgr: &mut M,
    trace: impl IntoIterator<Item = VirtPage>,
    warmup: u64,
    measure: u64,
) -> SimStats {
    let start = Instant::now();
    let mut iter = trace.into_iter();
    for _ in 0..warmup {
        let Some(p) = iter.next() else { break };
        mgr.access(p);
    }
    let warmup_costs = mgr.costs();
    mgr.reset_costs();
    for _ in 0..measure {
        let Some(p) = iter.next() else { break };
        mgr.access(p);
    }
    SimStats {
        name: mgr.name(),
        costs: mgr.costs(),
        warmup_costs,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_memmgmt::classic::{ClassicConfig, ClassicMm};
    use atp_memmgmt::MemoryManager;
    use atp_workloads::Sequential;

    #[test]
    fn warmup_is_excluded_from_measurement() {
        let mut m = ClassicMm::new(ClassicConfig::paper(1, 64));
        // 64-page cyclic scan over a 64-page RAM: warmup takes all the
        // compulsory misses; measurement sees none.
        let stats = run(&mut m, Sequential::new(64), 64, 128);
        assert_eq!(stats.warmup_costs.ios, 64);
        assert_eq!(stats.costs.ios, 0);
        assert_eq!(stats.costs.accesses, 128);
    }

    #[test]
    fn short_trace_stops_early() {
        let mut m = ClassicMm::new(ClassicConfig::paper(1, 16));
        let trace: Vec<_> = Sequential::new(8).take(10).collect();
        let stats = run(&mut m, trace, 4, 100);
        assert_eq!(stats.costs.accesses, 6);
    }

    #[test]
    fn name_propagates() {
        let mut m = ClassicMm::new(ClassicConfig::paper(4, 64));
        let stats = run(&mut m, Sequential::new(16), 0, 16);
        assert_eq!(stats.name, m.name());
    }
}
