//! Grounding ε: from hardware latencies to the cost-model parameter.
//!
//! The paper treats ε ∈ (0,1) — the cost of a TLB miss relative to an IO —
//! as abstract. This module derives it from first principles so experiments
//! can run at *defensible* ε values:
//!
//! ```text
//! ε = (page-walk latency) / (IO latency)
//!   = walk_touches × memory_latency / io_latency
//! ```
//!
//! With the substrate's own numbers: a 4-level radix walk touches 4 table
//! pages (24 when virtualized — see `atp_pagetable::nested`), each costing
//! roughly a DRAM access unless caught by the paging-structure caches, and
//! IO latency spans 4 decades from Optane-class (~10 µs) to spinning disk
//! (~10 ms). The resulting ε ranges from ~10⁻⁵ (disk) to ~10⁻¹ (fast NVMe,
//! virtualized walk) — exactly the sensitivity band the `crossover` bench
//! sweeps.

use atp_types::CostModel;

/// Hardware latency assumptions (defaults are contemporary server-class).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Nanoseconds per memory touch during a page walk (DRAM + cache mix).
    pub walk_touch_ns: f64,
    /// Number of memory touches per walk (4 native radix; 24 virtualized;
    /// fewer with paging-structure caches or huge leaves).
    pub walk_touches: f64,
    /// IO latency in nanoseconds (device read of one 4 kB page).
    pub io_ns: f64,
}

impl LatencyModel {
    /// Native 4-level walk over DRAM (~80 ns/touch) against a fast NVMe
    /// device (~20 µs).
    pub fn nvme_native() -> Self {
        Self {
            walk_touch_ns: 80.0,
            walk_touches: 4.0,
            io_ns: 20_000.0,
        }
    }

    /// Virtualized (2D) walk against fast NVMe — the worst translation case
    /// the paper's Section 1 highlights.
    pub fn nvme_virtualized() -> Self {
        Self {
            walk_touch_ns: 80.0,
            walk_touches: 24.0,
            io_ns: 20_000.0,
        }
    }

    /// Native walk against a spinning disk (~10 ms): paging dominates.
    pub fn disk_native() -> Self {
        Self {
            walk_touch_ns: 80.0,
            walk_touches: 4.0,
            io_ns: 10_000_000.0,
        }
    }

    /// The derived ε.
    pub fn epsilon(&self) -> f64 {
        (self.walk_touch_ns * self.walk_touches) / self.io_ns
    }

    /// A [`CostModel`] at the derived ε (clamped into the model's open
    /// interval).
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.epsilon().clamp(1e-9, 1.0 - 1e-9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvme_native_epsilon_is_percent_scale() {
        let e = LatencyModel::nvme_native().epsilon();
        assert!((0.01..0.03).contains(&e), "ε = {e}");
    }

    #[test]
    fn virtualization_multiplies_epsilon_sixfold() {
        let native = LatencyModel::nvme_native().epsilon();
        let virt = LatencyModel::nvme_virtualized().epsilon();
        assert!((virt / native - 6.0).abs() < 1e-9, "24/4 touches");
    }

    #[test]
    fn disk_epsilon_is_negligible() {
        let e = LatencyModel::disk_native().epsilon();
        assert!(e < 1e-4, "ε = {e}");
    }

    #[test]
    fn cost_model_is_valid() {
        for m in [
            LatencyModel::nvme_native(),
            LatencyModel::nvme_virtualized(),
            LatencyModel::disk_native(),
        ] {
            let cm = m.cost_model();
            assert!(cm.epsilon > 0.0 && cm.epsilon < 1.0);
        }
    }

    #[test]
    fn faster_storage_raises_epsilon() {
        // The paper's trend: "trends towards faster storage devices lower
        // the cost of paging, which further increases the relative overhead
        // of address translation."
        let mut fast = LatencyModel::nvme_native();
        fast.io_ns /= 10.0; // CXL-class
        assert!(fast.epsilon() > LatencyModel::nvme_native().epsilon());
    }
}
