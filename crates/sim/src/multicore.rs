//! Multi-core TLBs with shootdown accounting.
//!
//! Section 1 motivates the model with hardware trends: per-core TLBs whose
//! effective size shrinks as threads share them, and whose entries must be
//! *shot down* (invalidated via inter-processor interrupts) whenever a page
//! they translate is evicted from RAM. This extension quantifies that cost:
//! `N` cores each run their own request stream against a private TLB and a
//! shared page cache; every RAM eviction broadcasts an invalidation of the
//! victim's translation to all cores.
//!
//! Lock discipline: a core never holds its TLB lock while acquiring the RAM
//! lock, and the RAM lock may be held while briefly taking any TLB lock —
//! a strict two-level hierarchy, so the system is deadlock-free.

use atp_memmgmt::{AccessReport, EvictionEvent, NoopObserver, SimObserver, TlbEvent};
use atp_replacement::{AccessResult, AnyPolicy, CacheSim, PolicyKind};
use atp_tlb::Tlb;
use atp_types::{Costs, HugePageGeometry, VirtHugePage, VirtPage};
use std::sync::Mutex;

/// Per-core [`SimObserver`] tallying the shootdown traffic a core *causes*
/// (its RAM evictions and the remote TLB entries they invalidate). Each
/// worker owns one — no shared counters — and the tallies are summed when
/// the threads join.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShootdownTally {
    events: u64,
    invalidations: u64,
}

impl ShootdownTally {
    /// RAM evictions that triggered shootdown broadcasts.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// TLB entries actually invalidated across all cores.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

impl SimObserver for ShootdownTally {
    fn on_eviction(&mut self, _event: EvictionEvent) {
        self.events += 1;
    }

    fn on_tlb_event(&mut self, event: TlbEvent) {
        if event == TlbEvent::Shootdown {
            self.invalidations += 1;
        }
    }
}

/// Configuration for a multicore run.
#[derive(Clone, Copy, Debug)]
pub struct MulticoreConfig {
    /// Number of cores (one worker thread each).
    pub cores: usize,
    /// Huge-page size `h` (classic physically contiguous semantics).
    pub huge_pages: u64,
    /// Shared physical memory in base pages.
    pub phys_pages: u64,
    /// Private TLB entries per core.
    pub tlb_entries: u64,
    /// Replacement policy for RAM and TLBs.
    pub policy: PolicyKind,
    /// Seed.
    pub seed: u64,
}

/// Per-core result.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Cost tally of this core's stream.
    pub costs: Costs,
}

/// Aggregate result of a multicore run.
#[derive(Clone, Debug)]
pub struct MulticoreResult {
    /// Per-core tallies, in core order.
    pub per_core: Vec<CoreStats>,
    /// RAM evictions that triggered shootdown broadcasts.
    pub shootdown_events: u64,
    /// TLB entries actually invalidated across all cores.
    pub shootdown_invalidations: u64,
}

impl MulticoreResult {
    /// Sum of all cores' costs.
    pub fn total_costs(&self) -> Costs {
        let mut out = Costs::default();
        for c in &self.per_core {
            out.merge(&c.costs);
        }
        out
    }
}

/// Runs `traces[i]` on core `i` (threads run concurrently; per-core results
/// are deterministic only for `cores = 1` since RAM interleaving is
/// scheduling-dependent).
///
/// # Panics
/// Panics if `traces.len() != cfg.cores` or any parameter is degenerate.
pub fn run_multicore(cfg: &MulticoreConfig, traces: &[Vec<VirtPage>]) -> MulticoreResult {
    run_multicore_observed(cfg, traces, |_| NoopObserver).0
}

/// [`run_multicore`] with an observer per core: `make_obs(core)` builds
/// core `i`'s observer before its thread starts, and the observers are
/// returned in core order after the join. Each core reports through the
/// same [`SimObserver`] vocabulary the pipelines use — TLB hit/miss/fill
/// per access, `on_access` with the access's [`AccessReport`], and the
/// evictions/shootdowns *this core caused* — so a per-core
/// `Recorder::without_reuse_tracking()` yields per-core TLB stats, while
/// clones of one `Mutex`-backed recorder (`atp_obs::SyncRecorder`) yield a
/// machine-wide tally.
///
/// # Panics
/// Panics if `traces.len() != cfg.cores` or any parameter is degenerate.
pub fn run_multicore_observed<O: SimObserver + Send>(
    cfg: &MulticoreConfig,
    traces: &[Vec<VirtPage>],
    make_obs: impl Fn(usize) -> O,
) -> (MulticoreResult, Vec<O>) {
    assert_eq!(traces.len(), cfg.cores, "one trace per core required");
    assert!(cfg.cores > 0, "at least one core");
    // atp-lint: allow(unwrap-policy, reason = "constructor contract: documented # Panics on invalid (non-power-of-two) huge-page config")
    let geom = HugePageGeometry::new(cfg.huge_pages).expect("h power of two");
    let ram_units = (cfg.phys_pages / cfg.huge_pages).max(1) as usize;

    let ram: Mutex<CacheSim<u64, AnyPolicy>> = Mutex::new(CacheSim::new(
        ram_units,
        AnyPolicy::new(cfg.policy, ram_units, cfg.seed),
    ));
    let tlbs: Vec<Mutex<Tlb<(), AnyPolicy>>> = (0..cfg.cores)
        .map(|i| Mutex::new(Tlb::new(cfg.tlb_entries, cfg.policy, cfg.seed + i as u64)))
        .collect();
    let mut per_core = vec![CoreStats::default(); cfg.cores];
    let mut observers: Vec<Option<O>> = Vec::new();
    let mut shootdown_events = 0;
    let mut shootdown_invalidations = 0;

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (core, trace) in traces.iter().enumerate() {
            let ram = &ram;
            let tlbs = &tlbs;
            let mut obs = make_obs(core);
            handles.push(s.spawn(move || {
                let mut costs = Costs::default();
                // Shootdowns this core *caused*, routed through the same
                // observer vocabulary the pipelines use.
                let mut tally = ShootdownTally::default();
                for &p in trace {
                    let u = geom.huge_of(p);
                    costs.accesses += 1;

                    // 1. Private TLB lookup (lock released before RAM).
                    // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
                    let tlb_hit = { tlbs[core].lock().expect("tlb lock").lookup(u).is_some() };

                    // 2. Shared RAM access; evictions broadcast shootdowns.
                    let mut report = AccessReport {
                        tlb_miss: !tlb_hit,
                        ..AccessReport::default()
                    };
                    let evicted = {
                        // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
                        let mut ram = ram.lock().expect("ram lock");
                        match ram.access(u.id()) {
                            AccessResult::Hit => None,
                            AccessResult::Miss { evicted } => {
                                costs.ios += cfg.huge_pages;
                                report.ios = cfg.huge_pages;
                                evicted
                            }
                        }
                    };
                    if let Some(victim) = evicted {
                        let ev = EvictionEvent {
                            unit: victim,
                            pages: cfg.huge_pages,
                        };
                        tally.on_eviction(ev);
                        obs.on_eviction(ev);
                        for t in tlbs.iter() {
                            // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
                            let mut t = t.lock().expect("tlb lock");
                            if t.invalidate(VirtHugePage(victim)).is_some() {
                                tally.on_tlb_event(TlbEvent::Shootdown);
                                obs.on_tlb_event(TlbEvent::Shootdown);
                            }
                        }
                    }

                    // 3. Fill own TLB on miss.
                    if tlb_hit {
                        costs.tlb_hits += 1;
                        obs.on_tlb_event(TlbEvent::Hit);
                    } else {
                        costs.tlb_misses += 1;
                        obs.on_tlb_event(TlbEvent::Miss);
                        // atp-lint: allow(unwrap-policy, reason = "a poisoned lock means a sibling thread already panicked; propagating that panic is the intended behavior")
                        let mut t = tlbs[core].lock().expect("tlb lock");
                        if !t.contains(u) {
                            t.insert(u, ());
                            obs.on_tlb_event(TlbEvent::Fill);
                        }
                    }
                    obs.on_access(p, report);
                }
                (core, costs, tally, obs)
            }));
        }
        observers = (0..cfg.cores).map(|_| None).collect();
        for h in handles {
            // atp-lint: allow(unwrap-policy, reason = "join fails only when a core thread panicked; propagate the panic")
            let (core, costs, tally, obs) = h.join().expect("core thread panicked");
            per_core[core] = CoreStats { costs };
            observers[core] = Some(obs);
            shootdown_events += tally.events();
            shootdown_invalidations += tally.invalidations();
        }
    });

    (
        MulticoreResult {
            per_core,
            shootdown_events,
            shootdown_invalidations,
        },
        observers
            .into_iter()
            // atp-lint: allow(unwrap-policy, reason = "invariant: the join loop above filled every core's slot exactly once")
            .map(|o| o.expect("every core joined"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_workloads::{Sequential, UniformRandom};

    fn cfg(cores: usize, h: u64, phys: u64, tlb: u64) -> MulticoreConfig {
        MulticoreConfig {
            cores,
            huge_pages: h,
            phys_pages: phys,
            tlb_entries: tlb,
            policy: PolicyKind::Lru,
            seed: 1,
        }
    }

    #[test]
    fn single_core_matches_classic() {
        use atp_memmgmt::classic::{ClassicConfig, ClassicMm};
        use atp_memmgmt::MemoryManager;
        let trace: Vec<VirtPage> = UniformRandom::new(3, 512).take(20_000).collect();
        let mc = run_multicore(&cfg(1, 4, 256, 16), std::slice::from_ref(&trace));
        let mut classic = ClassicMm::new(ClassicConfig {
            huge_pages: 4,
            phys_pages: 256,
            tlb_entries: 16,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 1,
        });
        for &p in &trace {
            classic.access(p);
        }
        let mc_costs = mc.total_costs();
        assert_eq!(mc_costs.ios, classic.costs().ios);
        assert_eq!(mc_costs.tlb_misses, classic.costs().tlb_misses);
    }

    #[test]
    fn shootdowns_happen_under_contention() {
        // Working set ≫ RAM: constant evictions; entries resident in other
        // cores' TLBs get invalidated.
        let traces: Vec<Vec<VirtPage>> = (0..4)
            .map(|i| UniformRandom::new(i, 2048).take(5_000).collect())
            .collect();
        let r = run_multicore(&cfg(4, 4, 512, 64), &traces);
        assert!(r.shootdown_events > 0);
        assert!(
            r.shootdown_invalidations > 0,
            "shared hot pages must get shot down"
        );
        assert!(r.shootdown_invalidations <= r.shootdown_events * 4);
    }

    #[test]
    fn disjoint_streams_have_no_invalidations() {
        // Cores touch disjoint address regions that FIT in RAM: no
        // evictions, hence no shootdowns at all.
        let traces: Vec<Vec<VirtPage>> = (0..2)
            .map(|i| {
                Sequential::new(64)
                    .map(|p| VirtPage(p.0 + i * 64))
                    .take(4000)
                    .collect()
            })
            .collect();
        let r = run_multicore(&cfg(2, 1, 256, 32), &traces);
        assert_eq!(r.shootdown_events, 0);
        assert_eq!(r.shootdown_invalidations, 0);
    }

    #[test]
    fn observed_recorders_match_core_costs() {
        use atp_memmgmt::Recorder;
        let traces: Vec<Vec<VirtPage>> = (0..3)
            .map(|i| UniformRandom::new(i + 5, 1024).take(4_000).collect())
            .collect();
        let (r, recs) = run_multicore_observed(&cfg(3, 4, 256, 16), &traces, |_| {
            Recorder::without_reuse_tracking()
        });
        assert_eq!(recs.len(), 3);
        let mut shootdowns_seen = 0;
        for (core, rec) in recs.iter().enumerate() {
            let c = r.per_core[core].costs;
            let sc = rec.counters();
            assert_eq!(rec.accesses(), c.accesses);
            assert_eq!(sc.tlb_hits, c.tlb_hits);
            assert_eq!(sc.tlb_misses, c.tlb_misses);
            assert_eq!(sc.ios, c.ios);
            assert!(!rec.tracks_reuse());
            shootdowns_seen += sc.tlb_shootdowns;
        }
        // The per-core observers see exactly the shootdowns their core
        // caused, which sum to the machine-wide tally.
        assert_eq!(shootdowns_seen, r.shootdown_invalidations);
    }

    #[test]
    fn observed_wrapper_matches_plain_run() {
        // `run_multicore` is the NoopObserver special case; on one core the
        // access stream is deterministic, so both paths agree exactly.
        let trace: Vec<VirtPage> = UniformRandom::new(11, 512).take(10_000).collect();
        let plain = run_multicore(&cfg(1, 2, 128, 8), std::slice::from_ref(&trace));
        let (obs, _) =
            run_multicore_observed(&cfg(1, 2, 128, 8), std::slice::from_ref(&trace), |_| {
                NoopObserver
            });
        assert_eq!(plain.total_costs().ios, obs.total_costs().ios);
        assert_eq!(plain.shootdown_events, obs.shootdown_events);
    }

    #[test]
    fn per_core_accesses_accounted() {
        let traces: Vec<Vec<VirtPage>> = (0..3)
            .map(|i| {
                UniformRandom::new(i + 9, 128)
                    .take(1000 + i as usize)
                    .collect()
            })
            .collect();
        let r = run_multicore(&cfg(3, 2, 128, 8), &traces);
        for (i, c) in r.per_core.iter().enumerate() {
            assert_eq!(c.costs.accesses, 1000 + i as u64);
            assert_eq!(c.costs.tlb_hits + c.costs.tlb_misses, c.costs.accesses);
        }
    }
}
