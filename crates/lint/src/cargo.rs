//! `no-external-deps`: the Cargo manifest audit.
//!
//! PR 1 made the build hermetic: every dependency in this workspace is an
//! in-tree path dependency, so the build needs no network, no registry,
//! and no lockfile trust. This rule keeps it that way by rejecting any
//! `[dependencies]`-family entry that is not a `path` dep or a
//! `workspace = true` reference.
//!
//! The parser is a deliberately small line-oriented TOML subset — enough
//! for the manifests this workspace actually writes (inline tables,
//! `key.workspace = true`, and `[dependencies.<name>]` subtables).

use crate::{Finding, Severity};

/// True if `section` is one of the dependency tables we audit.
fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || (section.starts_with("target.") && section.ends_with(".dependencies"))
}

/// Strips a trailing `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True if a dependency spec (the right-hand side of `name = …`, or the
/// body of a `[dependencies.name]` subtable line) pins the dep in-tree.
fn spec_is_hermetic(spec: &str) -> bool {
    spec.contains("path =")
        || spec.contains("path=")
        || spec.contains("workspace = true")
        || spec.contains("workspace=true")
}

/// Audits one `Cargo.toml`. `path` is the display path for findings.
pub fn analyze_cargo_toml(src: &str, path: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    // For `[dependencies.<name>]` subtables: (header line, dep name,
    // hermetic-key-seen).
    let mut subtable: Option<(u32, String, bool)> = None;

    let flush_subtable = |sub: &mut Option<(u32, String, bool)>, out: &mut Vec<Finding>| {
        if let Some((line, name, ok)) = sub.take() {
            if !ok {
                out.push(external_dep(path, line, &name));
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            flush_subtable(&mut subtable, &mut out);
            let header = header.trim_end_matches(']').trim();
            // `[dependencies.foo]` opens a per-dep subtable.
            if let Some((table, dep)) = header.rsplit_once('.') {
                if is_dep_section(table) {
                    section = String::new();
                    subtable = Some((line_no, dep.to_string(), false));
                    continue;
                }
            }
            section = header.to_string();
            continue;
        }
        if let Some((_, _, ok)) = subtable.as_mut() {
            *ok |= line.starts_with("path") && line.contains('=') || spec_is_hermetic(line);
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `name.workspace = true` or a spec containing path/workspace.
        if key.ends_with(".workspace") && value == "true" {
            continue;
        }
        if spec_is_hermetic(value) {
            continue;
        }
        out.push(external_dep(path, line_no, key));
    }
    flush_subtable(&mut subtable, &mut out);
    out
}

fn external_dep(path: &str, line: u32, name: &str) -> Finding {
    Finding {
        rule: "no-external-deps",
        severity: Severity::Warning,
        path: path.to_string(),
        line,
        col: 1,
        message: format!(
            "dependency `{name}` is not an in-tree path/workspace dep — the \
             build is hermetic by decision (PR 1); vendor the code or stub it"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = r#"
[package]
name = "x"

[dependencies]
atp-types = { path = "../types" }
atp-hash.workspace = true
atp-sim = { workspace = true }
"#;
        assert!(analyze_cargo_toml(toml, "Cargo.toml").is_empty());
    }

    #[test]
    fn registry_deps_flagged() {
        let toml = "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\" }\n";
        let f = analyze_cargo_toml(toml, "Cargo.toml");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("serde"));
        assert!(f[1].message.contains("rand"));
    }

    #[test]
    fn dev_and_build_sections_audited() {
        let toml = "[dev-dependencies]\nproptest = \"1\"\n[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(analyze_cargo_toml(toml, "Cargo.toml").len(), 2);
    }

    #[test]
    fn subtable_form() {
        let bad = "[dependencies.serde]\nversion = \"1\"\n";
        assert_eq!(analyze_cargo_toml(bad, "Cargo.toml").len(), 1);
        let good = "[dependencies.atp-types]\npath = \"../types\"\n";
        assert!(analyze_cargo_toml(good, "Cargo.toml").is_empty());
    }

    #[test]
    fn non_dep_sections_ignored() {
        let toml = "[package]\nname = \"atp\"\nversion = \"0.1.0\"\n[features]\nfoo = []\n";
        assert!(analyze_cargo_toml(toml, "Cargo.toml").is_empty());
    }

    #[test]
    fn comments_do_not_confuse() {
        let toml = "[dependencies] # the deps\natp-x = { path = \"crates/x\" } # in-tree\n";
        assert!(analyze_cargo_toml(toml, "Cargo.toml").is_empty());
    }
}
