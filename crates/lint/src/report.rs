//! Report rendering: human diagnostics and the `atp-lint-v1` JSON schema.
//!
//! JSON is hand-rolled (the workspace is dependency-free); output is
//! byte-deterministic for a given finding set — findings are pre-sorted
//! by the engine and all maps are emitted in fixed key order.

use crate::{Finding, ScanStats, Severity};

/// Renders findings as `file:line:col`-style human diagnostics.
pub fn render_text(findings: &[Finding], stats: &ScanStats) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n",
            f.severity.name(),
            f.rule,
            f.message,
            f.path,
            f.line,
            f.col
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    out.push_str(&format!(
        "atp-lint: {} file(s), {} manifest(s) scanned — {errors} error(s), {warnings} warning(s)\n",
        stats.rust_files, stats.manifests
    ));
    out
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders findings as the machine-readable `atp-lint-v1` document.
pub fn render_json(findings: &[Finding], stats: &ScanStats) -> String {
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"atp-lint-v1\",\n");
    out.push_str(&format!(
        "  \"summary\": {{\"rust_files\": {}, \"manifests\": {}, \"errors\": {errors}, \"warnings\": {warnings}}},\n",
        stats.rust_files, stats.manifests
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_str(f.rule),
            json_str(f.severity.name()),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "no-wall-clock",
            severity: Severity::Warning,
            path: "crates/sim/src/runner.rs".to_string(),
            line: 56,
            col: 17,
            message: "a \"quoted\" message\nwith newline".to_string(),
        }]
    }

    #[test]
    fn text_contains_span() {
        let t = render_text(
            &sample(),
            &ScanStats {
                rust_files: 1,
                manifests: 0,
            },
        );
        assert!(t.contains("crates/sim/src/runner.rs:56:17"), "{t}");
        assert!(t.contains("warning[no-wall-clock]"), "{t}");
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = render_json(
            &sample(),
            &ScanStats {
                rust_files: 1,
                manifests: 0,
            },
        );
        assert!(j.contains("\"schema\": \"atp-lint-v1\""), "{j}");
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\"warnings\": 1"), "{j}");
    }

    #[test]
    fn empty_findings_is_valid() {
        let j = render_json(&[], &ScanStats::default());
        assert!(j.contains("\"findings\": []"), "{j}");
    }
}
