//! `atp-lint` CLI.
//!
//! ```text
//! cargo run -p atp-lint -- [--format text|json] [--deny-warnings] [--rules] [paths…]
//! ```
//!
//! With no paths, lints the enclosing workspace. Exit codes: `0` clean
//! (or warnings without `--deny-warnings`), `1` findings gate, `2` usage
//! or I/O error.

use atp_lint::{analyze_paths, find_workspace_root, render_json, render_text, Severity, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: atp-lint [--format text|json] [--deny-warnings] [--rules] [paths…]";

fn main() -> ExitCode {
    let mut format_json = false;
    let mut deny_warnings = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("atp-lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "--rules" => {
                for r in RULES {
                    println!("{:<22} {}", r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("atp-lint: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("atp-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
    if paths.is_empty() {
        paths.push(root.clone());
    }

    let (findings, stats) = match analyze_paths(&root, &paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("atp-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", render_json(&findings, &stats));
    } else {
        print!("{}", render_text(&findings, &stats));
    }

    let errors = findings.iter().any(|f| f.severity == Severity::Error);
    let warnings = !findings.is_empty();
    if errors || (deny_warnings && warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
