//! `atp-lint`: the workspace's determinism & hygiene analyzer.
//!
//! Every claim this reproduction makes — bit-for-bit golden parity,
//! seed-replayable property counterexamples, byte-deterministic
//! observability exports — rests on contracts that rustc does not check:
//! no wall-clock time in simulation paths, no ambient randomness, no
//! `RandomState` iteration order leaking into results, no external
//! dependencies, no panicking shortcuts in library code, and documented
//! public APIs in the core crates. This crate checks them mechanically.
//!
//! It is deliberately dependency-free: a small lexer ([`lexer`]) feeds a
//! rule engine ([`rules`]) that understands per-crate scoping,
//! `#[cfg(test)]` regions, and inline suppressions. Reports come out as
//! human diagnostics or machine-readable JSON (schema `atp-lint-v1`).
//!
//! # Suppressions
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above, with a mandatory reason:
//!
//! ```text
//! // atp-lint: allow(no-random-state, reason = "defines FxHashMap itself")
//! use std::collections::{HashMap, HashSet};
//! ```
//!
//! Suppressions without a reason are themselves errors, and suppressions
//! that suppress nothing are warnings — the suppression inventory can
//! only shrink truthfully.
//!
//! # Fixture files
//!
//! Files under a `fixtures/` directory are skipped by workspace scans but
//! can be linted by passing them explicitly. A fixture pins its pretended
//! location with a `pretend` directive so crate-scoped rules apply:
//!
//! ```text
//! // atp-lint: pretend(crate = "sim", class = "lib")
//! ```

pub mod lexer;

mod cargo;
mod report;
mod rules;
mod walk;

pub use cargo::analyze_cargo_toml;
pub use report::{render_json, render_text};
pub use walk::collect_files;

use lexer::{lex, Token, TokenKind};
use std::path::{Path, PathBuf};

/// Severity of a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Gate only under `--deny-warnings`.
    Warning,
    /// Always gates.
    Error,
}

impl Severity {
    /// Lowercase name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule that fired (e.g. `no-wall-clock`).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Display path (relative, forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation, specific to the site.
    pub message: String,
}

/// What kind of source file this is, by its path within the crate.
/// Several rules only apply to library code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// `src/**` excluding binaries: the code other code links against.
    Lib,
    /// `src/main.rs`, `src/bin/**`.
    Bin,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**`.
    Example,
    /// `build.rs`.
    Build,
}

impl FileClass {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lib" => FileClass::Lib,
            "bin" => FileClass::Bin,
            "test" => FileClass::Test,
            "bench" => FileClass::Bench,
            "example" => FileClass::Example,
            "build" => FileClass::Build,
            _ => return None,
        })
    }
}

/// Static description of one rule, for reports and docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Kebab-case rule name used in diagnostics and suppressions.
    pub name: &'static str,
    /// One-line contract statement.
    pub summary: &'static str,
}

/// The rule inventory. `bad-directive` and `unused-suppression` are meta
/// rules emitted by the engine itself and cannot be suppressed.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "no-wall-clock",
        summary: "Instant/SystemTime banned in deterministic crates (sim, types, ballsbins, tlb, pagetable, replacement, memmgmt, obs, trace, workloads, core)",
    },
    RuleInfo {
        name: "no-ambient-randomness",
        summary: "thread_rng/from_entropy/OsRng/rand:: banned everywhere; all randomness flows from explicit seeds",
    },
    RuleInfo {
        name: "no-random-state",
        summary: "std HashMap/HashSet without an explicit deterministic hasher banned in result-affecting crates; use atp_hash::FxHashMap",
    },
    RuleInfo {
        name: "no-external-deps",
        summary: "Cargo.toml dependencies must be path or workspace deps; the build stays hermetic",
    },
    RuleInfo {
        name: "unwrap-policy",
        summary: "no .unwrap()/.expect() in library code outside #[cfg(test)]; return Result or allow with a reason",
    },
    RuleInfo {
        name: "pub-api-docs",
        summary: "doc comments required on pub items in types, ballsbins, tlb",
    },
    RuleInfo {
        name: "bad-directive",
        summary: "malformed atp-lint comment (unknown rule, missing reason, bad syntax)",
    },
    RuleInfo {
        name: "unused-suppression",
        summary: "an allow(...) that suppressed nothing",
    },
];

fn rule_exists(name: &str) -> bool {
    // The two meta rules cannot be allowed away.
    RULES
        .iter()
        .any(|r| r.name == name && r.name != "bad-directive" && r.name != "unused-suppression")
}

/// Where a Rust source lives, for rule scoping. Fixtures override this
/// with a `pretend` directive.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Display path used in findings.
    pub path: String,
    /// Crate directory name under `crates/` (`"sim"`, `"types"`, …);
    /// `"."` for the workspace root package.
    pub crate_dir: String,
    /// File class.
    pub class: FileClass,
}

impl FileCtx {
    /// Derives crate and class from a workspace-relative path like
    /// `crates/sim/src/runner.rs`.
    pub fn from_rel_path(rel: &str) -> Self {
        let norm = rel.replace('\\', "/");
        let (crate_dir, in_crate) = match norm.strip_prefix("crates/") {
            Some(rest) => match rest.split_once('/') {
                Some((dir, tail)) => (dir.to_string(), tail.to_string()),
                None => (rest.to_string(), String::new()),
            },
            None => (".".to_string(), norm.clone()),
        };
        let class = if in_crate == "build.rs" {
            FileClass::Build
        } else if in_crate.starts_with("tests/") {
            FileClass::Test
        } else if in_crate.starts_with("benches/") {
            FileClass::Bench
        } else if in_crate.starts_with("examples/") {
            FileClass::Example
        } else if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
            FileClass::Bin
        } else {
            FileClass::Lib
        };
        FileCtx {
            path: norm,
            crate_dir,
            class,
        }
    }
}

/// A parsed `atp-lint:` comment.
enum Directive {
    Allow {
        rule: &'static str,
    },
    Pretend {
        krate: Option<String>,
        class: Option<FileClass>,
    },
}

/// Splits `args` on top-level commas, respecting double quotes.
fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in args.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
            cur.push(c);
        } else if c == ',' {
            out.push(cur.trim().to_string());
            cur.clear();
        } else {
            cur.push(c);
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Extracts the string value of a `key = "value"` argument.
fn kv_string<'a>(arg: &'a str, key: &str) -> Option<&'a str> {
    let rest = arg.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim();
    rest.strip_prefix('"')?.strip_suffix('"')
}

/// Parses one comment's text. `Ok(None)` if it is not an atp-lint
/// directive at all; `Err(msg)` if it tries to be one and fails.
fn parse_directive(comment: &str) -> Result<Option<Directive>, String> {
    let Some(at) = comment.find("atp-lint:") else {
        return Ok(None);
    };
    let body = comment[at + "atp-lint:".len()..].trim();
    if let Some(rest) = body.strip_prefix("allow") {
        let inner = rest
            .trim_start()
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|i| &r[..i]))
            .ok_or("allow: expected `allow(<rule>, reason = \"...\")`")?;
        let args = split_args(inner);
        let Some(rule_name) = args.first() else {
            return Err("allow: missing rule name".to_string());
        };
        let Some(rule) = RULES.iter().find(|r| r.name == rule_name.as_str()) else {
            return Err(format!("allow: unknown rule `{rule_name}`"));
        };
        if !rule_exists(rule.name) {
            return Err(format!("allow: rule `{rule_name}` cannot be suppressed"));
        }
        let reason = args.iter().skip(1).find_map(|a| kv_string(a, "reason"));
        match reason {
            Some(r) if !r.trim().is_empty() => Ok(Some(Directive::Allow { rule: rule.name })),
            _ => Err(format!(
                "allow({rule_name}): a non-empty `reason = \"...\"` is mandatory"
            )),
        }
    } else if let Some(rest) = body.strip_prefix("pretend") {
        let inner = rest
            .trim_start()
            .strip_prefix('(')
            .and_then(|r| r.rfind(')').map(|i| &r[..i]))
            .ok_or("pretend: expected `pretend(crate = \"...\", class = \"...\")`")?;
        let mut krate = None;
        let mut class = None;
        for arg in split_args(inner) {
            if let Some(v) = kv_string(&arg, "crate") {
                krate = Some(v.to_string());
            } else if let Some(v) = kv_string(&arg, "class") {
                class = Some(
                    FileClass::parse(v).ok_or_else(|| format!("pretend: unknown class `{v}`"))?,
                );
            } else {
                return Err(format!("pretend: unknown argument `{arg}`"));
            }
        }
        Ok(Some(Directive::Pretend { krate, class }))
    } else {
        Err(format!(
            "unknown directive `{}` (expected `allow` or `pretend`)",
            body.split('(').next().unwrap_or(body).trim()
        ))
    }
}

/// Everything the rules need to know about one lexed source file.
pub(crate) struct FileInfo<'a> {
    pub src: &'a str,
    pub tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens.
    pub sig: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    pub crate_dir: &'a str,
    pub class: FileClass,
    pub path: &'a str,
}

impl FileInfo<'_> {
    pub(crate) fn text(&self, tok: &Token) -> &str {
        tok.text(self.src)
    }

    pub(crate) fn in_test(&self, tok: &Token) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| tok.start >= s && tok.start < e)
    }

    pub(crate) fn finding(&self, rule: &'static str, tok: &Token, message: String) -> Finding {
        Finding {
            rule,
            severity: Severity::Warning,
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        }
    }
}

/// Computes the byte ranges of items annotated `#[cfg(test)]` (or any
/// `cfg(...)` mentioning `test`): from the attribute to the end of the
/// item — the matching `}` of its first brace, or the first `;` if the
/// item has no body (e.g. a `use`).
fn test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment(_) | TokenKind::BlockComment(_)
            )
        })
        .collect();
    let mut i = 0;
    while i + 1 < sig.len() {
        let t = &tokens[sig[i]];
        if t.kind == TokenKind::Punct(b'#') && tokens[sig[i + 1]].kind == TokenKind::Punct(b'[') {
            // Scan the attribute body up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_cfg = false;
            let mut mentions_test = false;
            while j < sig.len() && depth > 0 {
                let tj = &tokens[sig[j]];
                match tj.kind {
                    TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b']') => depth -= 1,
                    TokenKind::Ident => {
                        let txt = tj.text(src);
                        if txt == "cfg" {
                            mentions_cfg = true;
                        }
                        if txt == "test" {
                            mentions_test = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if mentions_cfg && mentions_test {
                // The region runs from the attribute to the end of the
                // annotated item.
                let start = t.start;
                let mut k = j;
                let mut brace = 0usize;
                let mut end = src.len();
                while k < sig.len() {
                    match tokens[sig[k]].kind {
                        TokenKind::Punct(b'{') => brace += 1,
                        TokenKind::Punct(b'}') => {
                            brace = brace.saturating_sub(1);
                            if brace == 0 {
                                end = tokens[sig[k]].end;
                                break;
                            }
                        }
                        TokenKind::Punct(b';') if brace == 0 => {
                            end = tokens[sig[k]].end;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                regions.push((start, end));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Analyzes one Rust source. `ctx` says where the file (claims to) live;
/// a `pretend` directive inside the file overrides it.
pub fn analyze_rust_source(src: &str, ctx: &FileCtx) -> Vec<Finding> {
    let tokens = lex(src);
    let mut crate_dir = ctx.crate_dir.clone();
    let mut class = ctx.class;

    // Pass 1: directives (suppressions, pretend, malformed).
    struct Allow {
        rule: &'static str,
        line: u32,
        used: bool,
    }
    let mut allows: Vec<Allow> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    for t in &tokens {
        // Only plain comments carry directives: doc comments are prose
        // (and may legitimately *quote* directives, as this crate's do).
        if !matches!(
            t.kind,
            TokenKind::LineComment(lexer::Doc::No) | TokenKind::BlockComment(lexer::Doc::No)
        ) {
            continue;
        }
        match parse_directive(t.text(src)) {
            Ok(None) => {}
            Ok(Some(Directive::Allow { rule })) => allows.push(Allow {
                rule,
                line: t.line,
                used: false,
            }),
            Ok(Some(Directive::Pretend { krate, class: cl })) => {
                if let Some(k) = krate {
                    crate_dir = k;
                }
                if let Some(c) = cl {
                    class = c;
                }
            }
            Err(msg) => meta.push(Finding {
                rule: "bad-directive",
                severity: Severity::Error,
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                message: msg,
            }),
        }
    }

    let info = FileInfo {
        src,
        tokens: &tokens,
        sig: (0..tokens.len())
            .filter(|&i| {
                !matches!(
                    tokens[i].kind,
                    TokenKind::LineComment(_) | TokenKind::BlockComment(_)
                )
            })
            .collect(),
        test_regions: test_regions(src, &tokens),
        crate_dir: &crate_dir,
        class,
        path: &ctx.path,
    };

    // Pass 2: rules, then suppression matching (same line or line above).
    let mut findings = Vec::new();
    rules::run_all(&info, &mut findings);
    findings.retain(|f| {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    for a in &allows {
        if !a.used {
            meta.push(Finding {
                rule: "unused-suppression",
                severity: Severity::Warning,
                path: ctx.path.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "allow({}) suppresses nothing — delete it or move it next to the violation",
                    a.rule
                ),
            });
        }
    }

    findings.extend(meta);
    findings
}

/// Scan summary alongside the findings.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// Rust files analyzed.
    pub rust_files: usize,
    /// Cargo manifests audited.
    pub manifests: usize,
}

/// Analyzes files/directories. Directories are walked (skipping `target`,
/// `.git`, `fixtures`, hidden dirs); explicit file arguments are always
/// analyzed. Display paths are made relative to `root` when possible.
pub fn analyze_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<(Vec<Finding>, ScanStats)> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            files.extend(walk::collect_files(p)?);
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    let mut stats = ScanStats::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(file)?;
        if file.file_name().is_some_and(|n| n == "Cargo.toml") {
            stats.manifests += 1;
            findings.extend(analyze_cargo_toml(&text, &rel));
        } else {
            stats.rust_files += 1;
            let ctx = FileCtx::from_rel_path(&rel);
            findings.extend(analyze_rust_source(&text, &ctx));
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok((findings, stats))
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_dir: &str, class: FileClass) -> FileCtx {
        FileCtx {
            path: "test.rs".to_string(),
            crate_dir: crate_dir.to_string(),
            class,
        }
    }

    #[test]
    fn suppression_requires_reason() {
        let src = "// atp-lint: allow(no-wall-clock)\nfn f() {}\n";
        let f = analyze_rust_source(src, &ctx("sim", FileClass::Lib));
        assert!(f.iter().any(|x| x.rule == "bad-directive"), "{f:?}");
    }

    #[test]
    fn suppression_silences_same_and_next_line() {
        let src = "// atp-lint: allow(no-wall-clock, reason = \"test\")\nuse std::time::Instant;\n";
        let f = analyze_rust_source(src, &ctx("sim", FileClass::Lib));
        assert!(f.iter().all(|x| x.rule != "no-wall-clock"), "{f:?}");
        assert!(f.iter().all(|x| x.rule != "unused-suppression"), "{f:?}");
    }

    #[test]
    fn unused_suppression_warns() {
        let src = "// atp-lint: allow(no-wall-clock, reason = \"stale\")\nfn f() {}\n";
        let f = analyze_rust_source(src, &ctx("sim", FileClass::Lib));
        assert!(f.iter().any(|x| x.rule == "unused-suppression"), "{f:?}");
    }

    #[test]
    fn pretend_reassigns_scope() {
        let src =
            "// atp-lint: pretend(crate = \"sim\", class = \"lib\")\nuse std::time::Instant;\n";
        let f = analyze_rust_source(src, &ctx("lint", FileClass::Lib));
        assert!(f.iter().any(|x| x.rule == "no-wall-clock"), "{f:?}");
    }

    #[test]
    fn cfg_test_regions_cover_mod_tests() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  use std::time::Instant;\n}\n";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert_eq!(regions.len(), 1);
        let inst = src.find("Instant").unwrap();
        assert!(regions[0].0 < inst && inst < regions[0].1);
    }

    #[test]
    fn file_ctx_classification() {
        let c = FileCtx::from_rel_path("crates/sim/src/runner.rs");
        assert_eq!(c.crate_dir, "sim");
        assert_eq!(c.class, FileClass::Lib);
        let c = FileCtx::from_rel_path("crates/cli/src/main.rs");
        assert_eq!(c.class, FileClass::Bin);
        let c = FileCtx::from_rel_path("crates/check/tests/diff.rs");
        assert_eq!(c.class, FileClass::Test);
        let c = FileCtx::from_rel_path("tests/golden_parity.rs");
        assert_eq!(c.crate_dir, ".");
        assert_eq!(c.class, FileClass::Test);
        let c = FileCtx::from_rel_path("src/lib.rs");
        assert_eq!(c.crate_dir, ".");
        assert_eq!(c.class, FileClass::Lib);
    }
}
