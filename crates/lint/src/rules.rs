//! The rule set: each rule is a token-level scan over one file.
//!
//! Rules receive a [`FileInfo`] (tokens, significant-token index, test
//! regions, crate/class scope) and push [`Finding`]s. Suppressions are
//! applied by the engine afterwards, so rules stay oblivious to them.

use crate::lexer::{Doc, Token, TokenKind};
use crate::{FileClass, FileInfo, Finding};

/// Crates whose sources must never read a wall clock: everything that sits
/// between a trace and a reported cost, plus the observability layer whose
/// exports are pinned byte-for-byte.
const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "types",
    "ballsbins",
    "tlb",
    "pagetable",
    "replacement",
    "memmgmt",
    "obs",
    "trace",
    "workloads",
    "core",
];

/// Crates where a `HashMap` iteration order can reach a reported result
/// (costs, statistics, exports, placements).
const RESULT_AFFECTING_CRATES: &[&str] = &[
    "types",
    "hash",
    "ballsbins",
    "tlb",
    "pagetable",
    "replacement",
    "memmgmt",
    "sim",
    "trace",
    "core",
    "obs",
    "workloads",
];

/// Crates whose public API must be documented (the paper-facing surface).
const DOCS_CRATES: &[&str] = &["types", "ballsbins", "tlb"];

/// Identifiers that mean "ambient randomness" wherever they appear.
const AMBIENT_RANDOMNESS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "ThreadRng",
    "OsRng",
    "getrandom",
    "random_seed",
];

/// Runs every rule applicable to this file.
pub(crate) fn run_all(f: &FileInfo<'_>, out: &mut Vec<Finding>) {
    if DETERMINISTIC_CRATES.contains(&f.crate_dir) {
        no_wall_clock(f, out);
    }
    no_ambient_randomness(f, out);
    if RESULT_AFFECTING_CRATES.contains(&f.crate_dir)
        && matches!(f.class, FileClass::Lib | FileClass::Bin)
    {
        no_random_state(f, out);
    }
    if f.class == FileClass::Lib {
        unwrap_policy(f, out);
    }
    if DOCS_CRATES.contains(&f.crate_dir) && f.class == FileClass::Lib {
        pub_api_docs(f, out);
    }
}

/// `no-wall-clock`: any mention of `Instant` or `SystemTime` in a
/// deterministic crate, tests included — simulation results and their
/// tests must be pure functions of (seed, trace, config).
fn no_wall_clock(f: &FileInfo<'_>, out: &mut Vec<Finding>) {
    for &i in &f.sig {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let txt = f.text(t);
        if txt == "Instant" || txt == "SystemTime" {
            out.push(f.finding(
                "no-wall-clock",
                t,
                format!(
                    "`{txt}` in deterministic crate `{}` — results must be a pure \
                     function of (seed, trace, config); time at the CLI/bench boundary instead",
                    f.crate_dir
                ),
            ));
        }
    }
}

/// `no-ambient-randomness`: `thread_rng()`, `from_entropy()`, `OsRng`,
/// or any `rand::` path, anywhere in the workspace. All randomness flows
/// from explicit seeds through `atp_hash::CounterRng`.
fn no_ambient_randomness(f: &FileInfo<'_>, out: &mut Vec<Finding>) {
    for (si, &i) in f.sig.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let txt = f.text(t);
        if AMBIENT_RANDOMNESS.contains(&txt) {
            out.push(f.finding(
                "no-ambient-randomness",
                t,
                format!(
                    "`{txt}` draws entropy from the environment — seed a \
                     `CounterRng` explicitly so every run is replayable"
                ),
            ));
        } else if txt == "rand" && next_is_path_sep(f, si) {
            out.push(
                f.finding(
                    "no-ambient-randomness",
                    t,
                    "`rand::` path — the workspace is hermetic and seeds all \
                 randomness through `atp_hash::CounterRng`"
                        .to_string(),
                ),
            );
        }
    }
}

/// True if the significant tokens after index `si` are `::`.
fn next_is_path_sep(f: &FileInfo<'_>, si: usize) -> bool {
    matches!(
        (sig_kind(f, si + 1), sig_kind(f, si + 2)),
        (Some(TokenKind::Punct(b':')), Some(TokenKind::Punct(b':')))
    )
}

fn sig_tok<'a>(f: &'a FileInfo<'_>, si: usize) -> Option<&'a Token> {
    f.sig.get(si).map(|&i| &f.tokens[i])
}

fn sig_kind(f: &FileInfo<'_>, si: usize) -> Option<TokenKind> {
    sig_tok(f, si).map(|t| t.kind)
}

fn sig_text<'a>(f: &'a FileInfo<'_>, si: usize) -> Option<&'a str> {
    sig_tok(f, si).map(|t| t.text(f.src))
}

/// `no-random-state`: a bare `HashMap`/`HashSet` in a result-affecting
/// crate (outside `#[cfg(test)]`) uses std's `RandomState`, whose
/// per-process seed makes iteration order — and any float summation or
/// export driven by it — differ across runs. Escapes: an explicit third
/// (map) / second (set) type parameter, or `with_hasher` /
/// `with_capacity_and_hasher` construction.
fn no_random_state(f: &FileInfo<'_>, out: &mut Vec<Finding>) {
    for (si, &i) in f.sig.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident || f.in_test(t) {
            continue;
        }
        let txt = f.text(t);
        let hasher_params = match txt {
            "HashMap" => 2usize, // K, V, S → two commas
            "HashSet" => 1usize, // T, S → one comma
            _ => continue,
        };
        if has_explicit_hasher(f, si, hasher_params) {
            continue;
        }
        out.push(f.finding(
            "no-random-state",
            t,
            format!(
                "std `{txt}` defaults to RandomState (iteration order varies \
                 per process) — use `atp_hash::Fx{txt}` or pass an explicit \
                 deterministic hasher"
            ),
        ));
    }
}

/// Checks the tokens after a `HashMap`/`HashSet` ident for an explicit
/// hasher: `<…,…,S>` with `needed_commas` top-level commas, possibly
/// after a turbofish `::`, or a `::with_hasher(..)` call.
fn has_explicit_hasher(f: &FileInfo<'_>, si: usize, needed_commas: usize) -> bool {
    let mut j = si + 1;
    // Optional `::` (turbofish or constructor path).
    if next_is_path_sep(f, si) {
        j = si + 3;
        if let Some(name) = sig_text(f, j) {
            if name == "with_hasher" || name == "with_capacity_and_hasher" {
                return true;
            }
        }
    }
    if sig_kind(f, j) != Some(TokenKind::Punct(b'<')) {
        return false;
    }
    // Count top-level commas inside the angle brackets. `->`/`=>` are the
    // only places a `>` is not a closer in type position.
    let mut depth = 0usize;
    let mut commas = 0usize;
    for step in 0..512 {
        let Some(t) = sig_tok(f, j + step) else {
            return false;
        };
        match t.kind {
            TokenKind::Punct(b'<') => depth += 1,
            TokenKind::Punct(b'>') => {
                if let Some(prev) = sig_tok(f, j + step - 1) {
                    if matches!(prev.kind, TokenKind::Punct(b'-') | TokenKind::Punct(b'='))
                        && prev.end == t.start
                    {
                        continue;
                    }
                }
                depth -= 1;
                if depth == 0 {
                    return commas >= needed_commas;
                }
            }
            TokenKind::Punct(b',') if depth == 1 => commas += 1,
            _ => {}
        }
    }
    false
}

/// `unwrap-policy`: `.unwrap()` / `.expect(…)` (and their `::` path
/// forms) in library code outside `#[cfg(test)]`. Library panics turn a
/// caller's recoverable situation into an abort; return `Result`, use a
/// checked alternative, or allow with a reason.
fn unwrap_policy(f: &FileInfo<'_>, out: &mut Vec<Finding>) {
    for (si, &i) in f.sig.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident || f.in_test(t) {
            continue;
        }
        let txt = f.text(t);
        if txt != "unwrap" && txt != "expect" {
            continue;
        }
        // Preceded by `.` (method call) or `::` (path form)?
        let dotted = si > 0
            && matches!(sig_kind(f, si - 1), Some(TokenKind::Punct(b'.')))
            // Guard against `..` (range) followed by a call — `a..unwrap`
            // is not real Rust, but stay strict anyway.
            && !(si > 1 && matches!(sig_kind(f, si - 2), Some(TokenKind::Punct(b'.'))));
        let pathed = si > 1
            && matches!(sig_kind(f, si - 1), Some(TokenKind::Punct(b':')))
            && matches!(sig_kind(f, si - 2), Some(TokenKind::Punct(b':')));
        if !dotted && !pathed {
            continue;
        }
        // A method *call* needs parentheses; the path form is a panic
        // site even as a bare fn value (`.map(Option::unwrap)`).
        if dotted && sig_kind(f, si + 1) != Some(TokenKind::Punct(b'(')) {
            continue;
        }
        // `self.expect(…)` is a user-defined method (e.g. the obs JSON
        // parser's Result-returning `expect`), not Option/Result::expect
        // — impls directly on Option/Self=Option don't occur here.
        if dotted && si >= 2 && sig_text(f, si - 2) == Some("self") {
            continue;
        }
        out.push(f.finding(
            "unwrap-policy",
            t,
            format!(
                "`{txt}` in library code — propagate a `Result`, use a checked \
                 alternative, or add `// atp-lint: allow(unwrap-policy, reason = …)` \
                 stating why this cannot fail"
            ),
        ));
    }
}

/// Item keywords that can follow `pub`. `mod` is deliberately absent:
/// modules in this workspace are documented by `//!` inner docs in their
/// own files, which rustdoc attaches to the module.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "union",
];

/// Modifiers that may sit between `pub` and the item keyword.
const ITEM_MODIFIERS: &[&str] = &["unsafe", "async", "extern"];

/// `pub-api-docs`: every `pub` item (and named `pub` field) in the
/// paper-facing crates carries a doc comment. `pub(crate)`/`pub(super)`
/// are not public API; `pub use` re-exports inherit their target's docs;
/// `#[doc(hidden)]` opts out explicitly.
fn pub_api_docs(f: &FileInfo<'_>, out: &mut Vec<Finding>) {
    for (si, &i) in f.sig.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident || f.text(t) != "pub" || f.in_test(t) {
            continue;
        }
        // Restricted visibility is not public API.
        if sig_kind(f, si + 1) == Some(TokenKind::Punct(b'(')) {
            continue;
        }
        // Identify what is being made pub.
        let mut j = si + 1;
        let mut item_kw: Option<&str> = None;
        for _ in 0..4 {
            match sig_text(f, j) {
                Some(kw) if ITEM_KEYWORDS.contains(&kw) => {
                    item_kw = Some(kw);
                    break;
                }
                Some(m) if ITEM_MODIFIERS.contains(&m) => j += 1,
                // `extern "C" fn`: skip the ABI string.
                _ if sig_kind(f, j) == Some(TokenKind::Literal) => j += 1,
                _ => break,
            }
        }
        let described = match item_kw {
            Some(kw) => {
                let name = sig_text(f, j + 1).unwrap_or("?");
                format!("{kw} `{name}`")
            }
            None => {
                // `pub name: Type` — a named struct field.
                let is_field = matches!(sig_kind(f, si + 1), Some(TokenKind::Ident))
                    && sig_kind(f, si + 2) == Some(TokenKind::Punct(b':'))
                    && sig_kind(f, si + 3) != Some(TokenKind::Punct(b':'));
                if !is_field {
                    continue; // `pub use`, tuple fields, macro oddities
                }
                format!("field `{}`", sig_text(f, si + 1).unwrap_or("?"))
            }
        };
        if has_docs_before(f, i) {
            continue;
        }
        out.push(f.finding(
            "pub-api-docs",
            t,
            format!(
                "missing doc comment on public {described} — the {} crate is \
                 paper-facing API; document it or mark it #[doc(hidden)]",
                f.crate_dir
            ),
        ));
    }
}

/// Walks backwards from raw-token index `i` (the `pub`) over attributes
/// and plain comments, looking for an outer doc comment or a `#[doc…]`
/// attribute.
fn has_docs_before(f: &FileInfo<'_>, i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        let t = &f.tokens[k];
        match t.kind {
            TokenKind::LineComment(Doc::Outer) | TokenKind::BlockComment(Doc::Outer) => {
                return true;
            }
            TokenKind::LineComment(_) | TokenKind::BlockComment(_) => continue,
            TokenKind::Punct(b']') => {
                // Walk back across the attribute to its `#`, checking for
                // `doc` (covers #[doc = …] and #[doc(hidden)]).
                let mut depth = 1usize;
                let mut has_doc = false;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match f.tokens[k].kind {
                        TokenKind::Punct(b']') => depth += 1,
                        TokenKind::Punct(b'[') => depth -= 1,
                        TokenKind::Ident if f.text(&f.tokens[k]) == "doc" => has_doc = true,
                        _ => {}
                    }
                }
                if has_doc {
                    return true;
                }
                // Step over the `#`.
                if k > 0 && f.tokens[k - 1].kind == TokenKind::Punct(b'#') {
                    k -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_rust_source, FileCtx};

    fn run(src: &str, crate_dir: &str, class: FileClass) -> Vec<Finding> {
        analyze_rust_source(
            src,
            &FileCtx {
                path: "test.rs".to_string(),
                crate_dir: crate_dir.to_string(),
                class,
            },
        )
    }

    fn rules_fired(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn wall_clock_scoped_by_crate() {
        let src = "use std::time::Instant;\n";
        assert!(rules_fired(&run(src, "sim", FileClass::Lib)).contains(&"no-wall-clock"));
        assert!(!rules_fired(&run(src, "cli", FileClass::Lib)).contains(&"no-wall-clock"));
    }

    #[test]
    fn random_state_escapes() {
        // Bare map: flagged.
        let bad = "struct S { m: HashMap<u64, u64> }\n";
        assert!(rules_fired(&run(bad, "trace", FileClass::Lib)).contains(&"no-random-state"));
        // Explicit hasher: fine.
        let good = "struct S { m: HashMap<u64, u64, FxBuildHasher> }\n";
        assert!(!rules_fired(&run(good, "trace", FileClass::Lib)).contains(&"no-random-state"));
        // Nested generics don't confuse the comma count.
        let nested = "struct S { m: HashMap<Foo<u8, u8>, u64> }\n";
        assert!(rules_fired(&run(nested, "trace", FileClass::Lib)).contains(&"no-random-state"));
        // with_hasher constructor: fine.
        let ctor = "fn f() { let m = HashMap::with_hasher(FxBuildHasher::default()); }\n";
        assert!(!rules_fired(&run(ctor, "trace", FileClass::Lib)).contains(&"no-random-state"));
        // In cfg(test): fine.
        let test =
            "#[cfg(test)]\nmod tests { fn f() { let m: HashMap<u8,u8> = HashMap::new(); } }\n";
        assert!(!rules_fired(&run(test, "trace", FileClass::Lib)).contains(&"no-random-state"));
    }

    #[test]
    fn unwrap_policy_scoping() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(rules_fired(&run(src, "sim", FileClass::Lib)).contains(&"unwrap-policy"));
        // Not in tests, bins, or benches.
        assert!(!rules_fired(&run(src, "sim", FileClass::Test)).contains(&"unwrap-policy"));
        assert!(!rules_fired(&run(src, "sim", FileClass::Bin)).contains(&"unwrap-policy"));
        // unwrap_or and friends are fine.
        let or = "fn f() { x.unwrap_or(0); x.unwrap_or_default(); }\n";
        assert!(!rules_fired(&run(or, "sim", FileClass::Lib)).contains(&"unwrap-policy"));
        // Path form counts.
        let path = "fn f() { xs.map(Option::unwrap); }\n";
        assert!(rules_fired(&run(path, "sim", FileClass::Lib)).contains(&"unwrap-policy"));
        // A method *named* unwrap being defined is not a call site.
        let def = "impl S { fn unwrap(self) {} }\n";
        assert!(!rules_fired(&run(def, "sim", FileClass::Lib)).contains(&"unwrap-policy"));
        // Calling one's own Result-returning `expect` is not std expect.
        let own = "fn parse(&mut self) { self.expect(b'[')?; }\n";
        assert!(!rules_fired(&run(own, "obs", FileClass::Lib)).contains(&"unwrap-policy"));
    }

    #[test]
    fn pub_api_docs_basics() {
        let undocumented = "pub fn f() {}\n";
        assert!(rules_fired(&run(undocumented, "types", FileClass::Lib)).contains(&"pub-api-docs"));
        let documented = "/// Does f things.\npub fn f() {}\n";
        assert!(!rules_fired(&run(documented, "types", FileClass::Lib)).contains(&"pub-api-docs"));
        let attr_between = "/// Docs.\n#[inline]\npub fn f() {}\n";
        assert!(!rules_fired(&run(attr_between, "types", FileClass::Lib)).contains(&"pub-api-docs"));
        let hidden = "#[doc(hidden)]\npub fn f() {}\n";
        assert!(!rules_fired(&run(hidden, "types", FileClass::Lib)).contains(&"pub-api-docs"));
        let restricted = "pub(crate) fn f() {}\n";
        assert!(!rules_fired(&run(restricted, "types", FileClass::Lib)).contains(&"pub-api-docs"));
        let reexport = "pub use foo::Bar;\n";
        assert!(!rules_fired(&run(reexport, "types", FileClass::Lib)).contains(&"pub-api-docs"));
        let field = "pub struct S {\n    pub x: u64,\n}\n";
        let fired = run(field, "types", FileClass::Lib);
        // struct S undocumented + field x undocumented.
        assert_eq!(
            fired.iter().filter(|f| f.rule == "pub-api-docs").count(),
            2,
            "{fired:?}"
        );
        // Out of scope crate: quiet.
        assert!(!rules_fired(&run(undocumented, "sim", FileClass::Lib)).contains(&"pub-api-docs"));
    }

    #[test]
    fn ambient_randomness_everywhere() {
        let src = "fn f() { let r = thread_rng(); }\n";
        assert!(rules_fired(&run(src, "cli", FileClass::Bin)).contains(&"no-ambient-randomness"));
        let path = "use rand::Rng;\n";
        assert!(
            rules_fired(&run(path, "check", FileClass::Test)).contains(&"no-ambient-randomness")
        );
        // `rand` as a plain variable name is fine.
        let var = "fn f() { let rand = 3; }\n";
        assert!(!rules_fired(&run(var, "cli", FileClass::Lib)).contains(&"no-ambient-randomness"));
    }
}
