//! File discovery: a deterministic recursive walk.
//!
//! Skipped during traversal: `target/`, `.git/`, hidden directories, and
//! `fixtures/` directories (lint test corpora deliberately contain
//! violations — they are linted by passing them explicitly). Collected:
//! `*.rs` and `Cargo.toml`. Results are sorted so reports are stable.

use std::io;
use std::path::{Path, PathBuf};

fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

/// Recursively collects lintable files under `root`.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") || name == "Cargo.toml" {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_target_git_fixtures_hidden() {
        assert!(skip_dir("target"));
        assert!(skip_dir(".git"));
        assert!(skip_dir("fixtures"));
        assert!(skip_dir(".hidden"));
        assert!(!skip_dir("src"));
        assert!(!skip_dir("crates"));
    }
}
