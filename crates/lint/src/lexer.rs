//! A small, dependency-free Rust lexer — just enough fidelity for static
//! analysis over this workspace.
//!
//! The point of lexing (rather than substring search) is that rule matches
//! must never fire inside comments or string/char/byte literals, and must
//! never be *hidden* by text that merely looks like one. The tricky cases
//! are all here: nested block comments, raw strings (`r#"…"#` with any
//! number of hashes, possibly containing `//` or `"#`), byte and C string
//! prefixes, char literals that contain quotes (`'"'`, `'\''`), and the
//! char-literal/lifetime ambiguity (`'a'` vs `'a`).
//!
//! The lexer is lossless over *code* tokens (identifiers, numbers,
//! punctuation) and keeps comments as tokens too, because the rule engine
//! reads suppression directives and doc comments out of them. It never
//! fails: malformed input (unterminated literals, stray bytes) degrades to
//! best-effort tokens so the analyzer can still report on the rest of the
//! file.

/// Whether a comment is a doc comment, and which flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Doc {
    /// Plain comment (`//`, `/* */`, or `////`+ / `/***`+ degenerates).
    No,
    /// Outer doc (`///` or `/** */`) — documents the following item.
    Outer,
    /// Inner doc (`//!` or `/*! */`) — documents the enclosing item.
    Inner,
}

/// Lexical class of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `pub`, `fn`, …).
    Ident,
    /// Raw identifier (`r#type`).
    RawIdent,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`, `b'x'`, `'x'` — anything whose contents must be opaque to
    /// the rules.
    Literal,
    /// Line comment, with doc flavor.
    LineComment(Doc),
    /// Block comment (nesting handled), with doc flavor.
    BlockComment(Doc),
    /// Single punctuation byte (`.`, `<`, `:`, …). Multi-char operators
    /// arrive as adjacent single-byte tokens.
    Punct(u8),
}

/// One token with its byte span and 1-based position.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Advances while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if !pred(b) {
                break;
            }
            self.bump();
        }
    }
}

/// Lexes `src` into tokens. Never fails; unterminated literals and
/// comments extend to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    // A shebang line (`#!/usr/bin/env …`) is not Rust tokens.
    if src.starts_with("#!") && !src.starts_with("#![") {
        cur.eat_while(|b| b != b'\n');
    }
    while let Some(b) = cur.peek(0) {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' => match cur.peek(1) {
                Some(b'/') => lex_line_comment(&mut cur),
                Some(b'*') => lex_block_comment(&mut cur),
                _ => {
                    cur.bump();
                    TokenKind::Punct(b'/')
                }
            },
            b'"' => {
                lex_string(&mut cur);
                TokenKind::Literal
            }
            b'\'' => lex_quote(&mut cur),
            b'r' | b'b' | b'c' => lex_prefixed(&mut cur),
            b'0'..=b'9' => {
                lex_number(&mut cur);
                TokenKind::Number
            }
            _ if is_ident_start(b) => {
                cur.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            _ => {
                cur.bump();
                TokenKind::Punct(b)
            }
        };
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

/// At `//`: consumes to end of line, classifying the doc flavor.
fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    // `//` already peeked; classify by the third and fourth bytes:
    // `///x` is outer doc, `////` is plain, `//!` is inner doc.
    let doc = match (cur.peek(2), cur.peek(3)) {
        (Some(b'/'), Some(b'/')) => Doc::No,
        (Some(b'/'), _) => Doc::Outer,
        (Some(b'!'), _) => Doc::Inner,
        _ => Doc::No,
    };
    cur.eat_while(|b| b != b'\n');
    TokenKind::LineComment(doc)
}

/// At `/*`: consumes the comment, honoring nesting.
fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    // `/**x` (not `/***` or the empty `/**/`) is outer doc; `/*!` is inner.
    let doc = match (cur.peek(2), cur.peek(3)) {
        (Some(b'*'), Some(b'*')) | (Some(b'*'), Some(b'/')) => Doc::No,
        (Some(b'*'), _) => Doc::Outer,
        (Some(b'!'), _) => Doc::Inner,
        _ => Doc::No,
    };
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: extend to EOF
        }
    }
    TokenKind::BlockComment(doc)
}

/// At `"`: consumes a (possibly escaped) string literal.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump(); // skip the escaped byte (covers \" and \\)
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// At `r"`/`r#…#"` (already past any prefix letters): consumes a raw
/// string. `hashes` were counted by the caller; the cursor sits on `r`.
fn lex_raw_string(cur: &mut Cursor<'_>, prefix_len: usize, hashes: usize) {
    for _ in 0..prefix_len + hashes + 1 {
        cur.bump(); // prefix letters, hashes, opening quote
    }
    'scan: while let Some(b) = cur.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// At `'`: disambiguates char literal vs lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    match (cur.peek(1), cur.peek(2)) {
        // '\…' is always a char literal.
        (Some(b'\\'), _) => {
            lex_char(cur);
            TokenKind::Literal
        }
        // 'x' (ident-ish byte then closing quote) is a char literal;
        // 'xy… without a closing quote right there is a lifetime.
        (Some(b), Some(b'\'')) if b != b'\'' => {
            lex_char(cur);
            TokenKind::Literal
        }
        (Some(b), _) if is_ident_start(b) => {
            cur.bump(); // '
            cur.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        // Non-ident char like '"': char literal.
        (Some(_), _) => {
            lex_char(cur);
            TokenKind::Literal
        }
        (None, _) => {
            cur.bump();
            TokenKind::Punct(b'\'')
        }
    }
}

/// At `'` of a char (or byte-char) literal: consumes through the closing
/// quote, honoring escapes (`'\''`, `'\u{1F600}'`).
fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

/// At `r`, `b`, or `c`: dispatches between literal prefixes (`r"`, `r#"`,
/// `b"`, `b'`, `br"`, `c"`, `cr#"`, …), raw identifiers (`r#name`), and
/// plain identifiers that merely start with those letters.
fn lex_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    let b0 = cur.peek(0).unwrap_or(0);
    // Longest prefix first: two-letter raw forms.
    let (prefix_len, raw) = match (b0, cur.peek(1)) {
        (b'b', Some(b'r')) | (b'c', Some(b'r')) => (2, true),
        (b'r', _) => (1, true),
        (b'b', _) | (b'c', _) => (1, false),
        _ => (1, false),
    };
    if raw {
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while cur.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek(prefix_len + hashes) == Some(b'"') {
            lex_raw_string(cur, prefix_len, hashes);
            return TokenKind::Literal;
        }
        // `r#ident` (exactly one hash, then ident) is a raw identifier.
        if prefix_len == 1 && hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump(); // r
            cur.bump(); // #
            cur.eat_while(is_ident_continue);
            return TokenKind::RawIdent;
        }
    } else {
        match cur.peek(prefix_len) {
            Some(b'"') => {
                for _ in 0..prefix_len {
                    cur.bump();
                }
                lex_string(cur);
                return TokenKind::Literal;
            }
            Some(b'\'') if b0 == b'b' => {
                cur.bump(); // b
                lex_char(cur);
                return TokenKind::Literal;
            }
            _ => {}
        }
    }
    // Plain identifier starting with r/b/c.
    cur.eat_while(is_ident_continue);
    TokenKind::Ident
}

/// At a digit: consumes a numeric literal (covers hex/octal/binary,
/// underscores, floats with exponents, and type suffixes) without eating
/// range operators (`1..5`) or method calls on literals (`1.min(2)`).
fn lex_number(cur: &mut Cursor<'_>) {
    cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // Fractional part: only if `.` is followed by a digit (so `1..5` and
    // `1.min(2)` stop at the dot).
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    // Signed exponent (`1e-9`): the `e` was eaten above; a trailing sign
    // plus digits continues the same literal.
    if matches!(cur.peek(0), Some(b'+') | Some(b'-'))
        && cur
            .src
            .get(cur.pos - 1)
            .is_some_and(|&b| b == b'e' || b == b'E')
        && cur.peek(1).is_some_and(|b| b.is_ascii_digit())
    {
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| &src[t.start..t.end])
            .collect()
    }

    #[test]
    fn comments_hide_code() {
        assert_eq!(idents("// Instant\nfoo"), vec!["foo"]);
        assert_eq!(idents("/* Instant */ foo"), vec!["foo"]);
        assert_eq!(idents("/* a /* b */ Instant */ foo"), vec!["foo"]);
    }

    #[test]
    fn strings_hide_code() {
        assert_eq!(idents(r#"let s = "Instant"; foo"#), vec!["let", "s", "foo"]);
        assert_eq!(
            idents(r##"let s = r#"Instant"#; foo"##),
            vec!["let", "s", "foo"]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("'a 'x' '\\'' '\"'");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Lifetime,
                TokenKind::Literal,
                TokenKind::Literal,
                TokenKind::Literal
            ]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "1..5 1.5 1e-9 0xFFu64 1.min(2)";
        let nums: Vec<&str> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(nums, vec!["1", "5", "1.5", "1e-9", "0xFFu64", "1", "2"]);
    }
}
