// atp-lint: pretend(crate = "types", class = "lib")
// Fixed twin: every public item and named public field carries a doc
// comment.

/// Accumulated costs of one simulated run, in the paper's unit model.
pub struct CostVector {
    /// Number of IOs (each costs exactly 1).
    pub io_cost: u64,
}
