// atp-lint: pretend(crate = "types", class = "lib")
// Minimal violation: undocumented public API in a paper-facing crate —
// an item, and a named public field.

pub struct CostVector {
    pub io_cost: u64,
}
