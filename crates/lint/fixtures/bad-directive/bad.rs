// atp-lint: pretend(crate = "sim", class = "lib")
// Minimal violations: an allow without the mandatory reason, an unknown
// rule name, and an unknown directive verb.

// atp-lint: allow(no-wall-clock)
pub(crate) fn a() {}

// atp-lint: allow(no-such-rule, reason = "the rule does not exist")
pub(crate) fn b() {}

// atp-lint: permit(no-wall-clock, reason = "wrong verb")
pub(crate) fn c() {}
