// atp-lint: pretend(crate = "sim", class = "lib")
// Fixed twin: the one well-formed suppression, attached to the violation
// it suppresses, with a non-empty reason.

// atp-lint: allow(no-wall-clock, reason = "fixture: demonstrates a well-formed, used suppression")
pub(crate) fn deadline() -> std::time::Instant {
    unimplemented!()
}
