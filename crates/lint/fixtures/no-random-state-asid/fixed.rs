// atp-lint: pretend(crate = "memmgmt", class = "lib")
// Fixed twin: the deterministic hasher pins ASID iteration order, so
// per-tenant breakdowns are a pure function of the event stream (the
// exporters additionally sort by ASID before rendering).

pub(crate) fn per_tenant_costs(events: &[(u32, u64)]) -> FxHashMap<u32, u64> {
    let mut by_asid: FxHashMap<u32, u64> = FxHashMap::default();
    for &(asid, ios) in events {
        *by_asid.entry(asid).or_insert(0) += ios;
    }
    by_asid
}
