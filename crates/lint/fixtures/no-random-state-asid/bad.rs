// atp-lint: pretend(crate = "memmgmt", class = "lib")
// Multi-tenant violation: per-tenant cost maps keyed by ASID on the std
// HashMap inherit RandomState, so the order tenants are summed or
// exported in — and therefore every per-tenant report — varies across
// runs, breaking the N-tenant sweep's determinism contract.

pub(crate) fn per_tenant_costs(events: &[(u32, u64)]) -> HashMap<u32, u64> {
    let mut by_asid: HashMap<u32, u64> = HashMap::new();
    for &(asid, ios) in events {
        *by_asid.entry(asid).or_insert(0) += ios;
    }
    by_asid
}
