// atp-lint: pretend(crate = "sim", class = "lib")
// Lexer torture corpus, part 1: every banned name below sits inside a
// comment or a literal, so a correct lexer reports ZERO findings here.
// A substring-matcher would drown in false positives.

// line comment decoys: Instant::now() SystemTime thread_rng .unwrap() HashMap
//// degenerate four-slash comment: rand::thread_rng() from_entropy OsRng

/* block comment decoy: let t = std::time::Instant::now(); */
/* nested /* one level: SystemTime */ and /* two: /* thread_rng() */ */ still one comment: HashMap::new() */

/// Doc-comment prose may quote banned names (Instant, rand::) and even a
/// directive — `// atp-lint: allow(no-wall-clock, reason = "quoted")` —
/// without either firing or being parsed as a real suppression.
pub(crate) fn decoys() -> usize {
    let plain = "Instant::now() and x.unwrap() and HashMap::new()";
    let escaped = "a \"quoted\" Instant and a backslash \\ then SystemTime";
    let raw = r"raw with no hashes: thread_rng()";
    let raw_hash = r#"raw: "quotes" and // not a comment and Instant"#;
    let raw_two = r##"two hashes: "# inner hash-quote and rand::Rng and "## ;
    let byte = b"byte string: from_entropy() OsRng";
    let byte_raw = br#"raw byte: SystemTime::now() and .expect("boom")"#;
    let c_str = c"c string: thread_rng";
    let quote_char = '"';
    let escaped_quote = '\'';
    let backslash_char = '\\';
    let byte_char = b'\'';
    let newline = '\n';
    plain.len()
        + escaped.len()
        + raw.len()
        + raw_hash.len()
        + raw_two.len()
        + byte.len()
        + byte_raw.len()
        + (quote_char as usize)
        + (escaped_quote as usize)
        + (backslash_char as usize)
        + (byte_char as usize)
        + (newline as usize)
        + core::mem::size_of_val(c_str)
}

/// Lifetimes must not be mistaken for unterminated char literals: the
/// `'a` below must not swallow the rest of the file (which would hide
/// real code from the rules).
pub(crate) fn lifetimes<'a>(x: &'a u64, r#type: &'a u64) -> u64 {
    // Numbers next to ranges and method calls: `1..5`, `1.max(2)`.
    let sum: u64 = (1..5).sum::<u64>() + 1u64.max(2) + 0xFF + 1_000 + 2e3 as u64;
    x + r#type + sum
}
