// atp-lint: pretend(crate = "sim", class = "lib")
// Lexer torture corpus, part 2: real violations surrounded by literal
// decoys. A lexer that over-eats a raw string or comment would hide
// them; the meta-test pins each expected (rule, line) exactly.

pub(crate) fn hidden() -> u64 {
    let _decoy = "Instant::now() inside a string";
    let t = std::time::Instant::now(); // line 8: no-wall-clock
    let _raw = r#"thread_rng() inside a raw string"#;
    let r = thread_rng(); // line 10: no-ambient-randomness
    /* .unwrap() inside a block comment */
    let v = maybe().unwrap(); // line 12: unwrap-policy
    let _chars = ('"', '\'');
    let m: HashMap<u64, u64> = HashMap::new(); // line 14: no-random-state, twice
    t.elapsed().as_nanos() as u64 + r + v + m.len() as u64
}
