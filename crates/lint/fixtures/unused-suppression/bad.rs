// atp-lint: pretend(crate = "sim", class = "lib")
// Minimal violation: a well-formed allow that suppresses nothing — the
// code below it is already clean, so the suppression is stale.

// atp-lint: allow(no-wall-clock, reason = "stale: the Instant call was removed in a refactor")
pub(crate) fn logical_now(clock: u64) -> u64 {
    clock
}
