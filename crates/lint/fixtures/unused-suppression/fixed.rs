// atp-lint: pretend(crate = "sim", class = "lib")
// Fixed twin: the stale suppression is simply deleted.

pub(crate) fn logical_now(clock: u64) -> u64 {
    clock
}
