// atp-lint: pretend(crate = "trace", class = "lib")
// Minimal violation: std HashMap defaults to RandomState, whose
// per-process seed makes iteration order — and any statistic summed in
// that order — differ across runs.

pub(crate) fn page_counts(pages: &[u64]) -> HashMap<u64, u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for &p in pages {
        *counts.entry(p).or_insert(0) += 1;
    }
    counts
}
