// atp-lint: pretend(crate = "trace", class = "lib")
// Fixed twin: the in-tree deterministic hasher pins iteration order, so
// downstream statistics are a pure function of the input.

pub(crate) fn page_counts(pages: &[u64]) -> FxHashMap<u64, u64> {
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    for &p in pages {
        *counts.entry(p).or_insert(0) += 1;
    }
    counts
}
