// atp-lint: pretend(crate = "replacement", class = "lib")
// Minimal violation: library code panicking on a recoverable condition,
// in both the method-call and the path (fn-value) form.

pub(crate) fn first_victim(victims: &[u64]) -> u64 {
    let head = victims.first().unwrap();
    let doubled = victims.iter().map(Option::Some).map(Option::unwrap);
    head + doubled.count() as u64
}
