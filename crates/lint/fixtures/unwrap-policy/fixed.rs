// atp-lint: pretend(crate = "replacement", class = "lib")
// Fixed twin: the recoverable case is propagated (or defaulted), never
// panicked on.

pub(crate) fn first_victim(victims: &[u64]) -> Option<u64> {
    let head = victims.first()?;
    let doubled = victims.iter().map(|v| v.wrapping_mul(2));
    Some(head + doubled.count() as u64)
}
