// atp-lint: pretend(crate = "workloads", class = "lib")
// Fixed twin: all randomness flows from an explicit seed through the
// in-tree CounterRng, so every run replays bit-for-bit.

pub(crate) fn shuffle_seed(seed: u64) -> u64 {
    let mut rng = atp_hash::CounterRng::new(seed, 0);
    rng.next_u64()
}
