// atp-lint: pretend(crate = "workloads", class = "lib")
// Minimal violation: entropy drawn from the environment. A trace built
// from thread_rng can never be replayed from a seed.

pub(crate) fn shuffle_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
