// atp-lint: pretend(crate = "sim", class = "lib")
// Fixed twin: the sim reports logical cost only; callers that want wall
// time measure around the call at the CLI/bench boundary.

pub(crate) fn timed_run() -> u64 {
    let logical_cost = 0u64;
    logical_cost
}
