// atp-lint: pretend(crate = "sim", class = "lib")
// Minimal violation: a deterministic crate reading the wall clock. The
// elapsed time would leak into SimStats and break golden parity.

pub(crate) fn timed_run() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
