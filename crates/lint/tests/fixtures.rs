//! Fixture-corpus meta-tests: every rule fires on its minimal bad
//! fixture and stays quiet on the fixed twin; the lexer survives
//! adversarial Rust with zero false positives or negatives; and the
//! `atp-lint` binary's exit codes gate exactly when they should.

use atp_lint::{analyze_paths, find_workspace_root, Finding, RULES};
use std::path::{Path, PathBuf};
use std::process::Command;

/// `(rule, bad fixture, fixed twin)` — one pair per rule in [`RULES`].
/// The coverage test fails if a rule is added without a pair here.
const PAIRS: &[(&str, &str, &str)] = &[
    (
        "no-wall-clock",
        "no-wall-clock/bad.rs",
        "no-wall-clock/fixed.rs",
    ),
    (
        "no-ambient-randomness",
        "no-ambient-randomness/bad.rs",
        "no-ambient-randomness/fixed.rs",
    ),
    (
        "no-random-state",
        "no-random-state/bad.rs",
        "no-random-state/fixed.rs",
    ),
    (
        "no-external-deps",
        "no-external-deps/bad/Cargo.toml",
        "no-external-deps/fixed/Cargo.toml",
    ),
    (
        "unwrap-policy",
        "unwrap-policy/bad.rs",
        "unwrap-policy/fixed.rs",
    ),
    (
        "pub-api-docs",
        "pub-api-docs/bad.rs",
        "pub-api-docs/fixed.rs",
    ),
    (
        "bad-directive",
        "bad-directive/bad.rs",
        "bad-directive/fixed.rs",
    ),
    (
        "unused-suppression",
        "unused-suppression/bad.rs",
        "unused-suppression/fixed.rs",
    ),
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

fn analyze_fixture(rel: &str) -> Vec<Finding> {
    let path = fixtures_dir().join(rel);
    assert!(path.exists(), "fixture missing: {}", path.display());
    let (findings, _) = analyze_paths(&workspace_root(), &[path]).expect("fixture scan");
    findings
}

#[test]
fn every_rule_has_a_fixture_pair() {
    for rule in RULES {
        assert!(
            PAIRS.iter().any(|(r, _, _)| *r == rule.name),
            "rule `{}` has no fixture pair — add bad/fixed twins under crates/lint/fixtures/",
            rule.name
        );
    }
    assert_eq!(
        PAIRS.len(),
        RULES.len(),
        "stale fixture pair for a removed rule"
    );
}

#[test]
fn every_rule_fires_on_its_bad_fixture() {
    for (rule, bad, _) in PAIRS {
        let findings = analyze_fixture(bad);
        assert!(
            findings.iter().any(|f| f.rule == *rule),
            "`{rule}` did not fire on {bad}: {findings:?}"
        );
        // Minimality: a bad fixture demonstrates its own rule, nothing else.
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{bad} is not minimal — unrelated `{}` fired: {findings:?}",
                f.rule
            );
        }
    }
}

#[test]
fn every_fixed_twin_is_silent() {
    for (rule, _, fixed) in PAIRS {
        let findings = analyze_fixture(fixed);
        assert!(
            findings.is_empty(),
            "fixed twin for `{rule}` still fires: {findings:?}"
        );
    }
}

/// Scenario fixtures beyond the one-pair-per-rule corpus: concrete
/// violation shapes worth pinning that reuse an existing rule (so they
/// cannot live in [`PAIRS`], whose length must equal `RULES.len()`).
const SCENARIO_PAIRS: &[(&str, &str, &str)] = &[(
    "no-random-state",
    "no-random-state-asid/bad.rs",
    "no-random-state-asid/fixed.rs",
)];

#[test]
fn scenario_fixtures_fire_and_their_twins_are_silent() {
    for (rule, bad, fixed) in SCENARIO_PAIRS {
        let findings = analyze_fixture(bad);
        assert!(
            findings.iter().any(|f| f.rule == *rule),
            "`{rule}` did not fire on {bad}: {findings:?}"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{bad} is not minimal — unrelated `{}` fired: {findings:?}",
                f.rule
            );
        }
        let findings = analyze_fixture(fixed);
        assert!(
            findings.is_empty(),
            "fixed twin for `{rule}` scenario still fires: {findings:?}"
        );
    }
}

#[test]
fn lexer_adversarial_corpus_has_zero_false_positives() {
    let findings = analyze_fixture("lexer/adversarial.rs");
    assert!(
        findings.is_empty(),
        "banned names inside comments/literals leaked through: {findings:?}"
    );
}

#[test]
fn lexer_finds_violations_hidden_among_literals() {
    let findings = analyze_fixture("lexer/hidden_violations.rs");
    let mut got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    got.sort_unstable();
    let mut want = vec![
        ("no-wall-clock", 8),
        ("no-ambient-randomness", 10),
        ("unwrap-policy", 12),
        ("no-random-state", 14),
        ("no-random-state", 14),
    ];
    want.sort_unstable();
    assert_eq!(got, want, "false negative or spurious span: {findings:?}");
}

fn run_lint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_atp-lint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("spawn atp-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_gates_on_each_bad_fixture_and_passes_each_fixed_twin() {
    for (rule, bad, fixed) in PAIRS {
        let bad = fixtures_dir().join(bad);
        let fixed = fixtures_dir().join(fixed);
        let (ok, _) = run_lint(&["--deny-warnings", bad.to_str().expect("utf-8 path")]);
        assert!(!ok, "atp-lint exited 0 on bad fixture for `{rule}`");
        let (ok, out) = run_lint(&["--deny-warnings", fixed.to_str().expect("utf-8 path")]);
        assert!(ok, "atp-lint gated on fixed twin for `{rule}`:\n{out}");
    }
}

#[test]
fn binary_emits_the_json_schema() {
    let bad = fixtures_dir().join("no-wall-clock/bad.rs");
    let (ok, out) = run_lint(&[
        "--format",
        "json",
        "--deny-warnings",
        bad.to_str().expect("utf-8 path"),
    ]);
    assert!(!ok, "no-wall-clock is a finding; json mode must still gate");
    assert!(out.contains("\"schema\": \"atp-lint-v1\""), "{out}");
    assert!(out.contains("\"rule\": \"no-wall-clock\""), "{out}");
    assert!(out.contains("no-wall-clock/bad.rs"), "{out}");
}

#[test]
fn binary_self_hosts_clean_on_the_workspace() {
    let (ok, out) = run_lint(&["--deny-warnings"]);
    assert!(
        ok,
        "the workspace must lint clean (self-hosting included):\n{out}"
    );
}
