//! Property tests for the hashing substrate.

use atp_hash::mix::reduce;
use atp_hash::{splitmix64, CounterRng, PageHasher, XxHash64};
use atp_types::VirtPage;
use proptest::prelude::*;

proptest! {
    /// reduce maps any hash into [0, n) for any nonzero n.
    #[test]
    fn reduce_in_range(h in any::<u64>(), n in 1u64..u64::MAX) {
        prop_assert!(reduce(h, n) < n);
    }

    /// splitmix64 is injective (bijective mixer): distinct inputs give
    /// distinct outputs.
    #[test]
    fn splitmix_injective(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(splitmix64(a), splitmix64(b));
    }

    /// PageHasher choices are always within the bin count, for any geometry.
    #[test]
    fn page_hasher_in_range(seed in any::<u64>(), bins in 1u64..(1 << 40), k in 1u32..8, v in any::<u64>()) {
        let h = PageHasher::new(seed, bins, k);
        for i in 0..k {
            prop_assert!(h.bin(VirtPage(v), i) < bins);
        }
        // bins_of agrees with bin().
        for (i, b) in h.bins_of(VirtPage(v)).enumerate() {
            prop_assert_eq!(b, h.bin(VirtPage(v), i as u32));
        }
    }

    /// CounterRng streams are pure functions of (seed, key).
    #[test]
    fn counter_rng_reproducible(seed in any::<u64>(), key in any::<u64>()) {
        let mut a = CounterRng::new(seed, key);
        let mut b = CounterRng::new(seed, key);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// next_below stays below its bound.
    #[test]
    fn counter_rng_below(seed in any::<u64>(), key in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = CounterRng::new(seed, key);
        for _ in 0..8 {
            prop_assert!(r.next_below(n) < n);
        }
    }

    /// Streaming xxhash equals one-shot for arbitrary data and split points.
    #[test]
    fn xxhash_streaming_consistent(data in prop::collection::vec(any::<u8>(), 0..300), seed in any::<u64>(), split_frac in 0.0f64..1.0) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = XxHash64::with_seed(seed);
        h.update(&data[..split]);
        h.update(&data[split..]);
        let mut whole = XxHash64::with_seed(seed);
        whole.update(&data);
        prop_assert_eq!(h.digest(), whole.digest());
    }
}
