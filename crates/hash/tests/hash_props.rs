//! Randomized property tests for the hashing substrate, driven by the
//! crate's own deterministic counter RNG (no external test deps).

use atp_hash::mix::reduce;
use atp_hash::{splitmix64, CounterRng, PageHasher, XxHash64};
use atp_types::VirtPage;

const CASES: u64 = 512;

#[test]
fn reduce_in_range() {
    // reduce maps any hash into [0, n) for any nonzero n.
    let mut rng = CounterRng::new(0xA11CE, 1);
    for _ in 0..CASES {
        let h = rng.next_u64();
        let n = rng.next_u64().max(1);
        assert!(reduce(h, n) < n, "reduce({h}, {n}) out of range");
    }
    assert!(reduce(u64::MAX, 1) < 1);
    assert!(reduce(0, u64::MAX) < u64::MAX);
}

#[test]
fn splitmix_injective() {
    // splitmix64 is injective (bijective mixer): distinct inputs give
    // distinct outputs.
    let mut rng = CounterRng::new(0xA11CE, 2);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        if a != b {
            assert_ne!(splitmix64(a), splitmix64(b));
        }
    }
    assert_ne!(splitmix64(0), splitmix64(1));
    assert_ne!(splitmix64(u64::MAX), splitmix64(u64::MAX - 1));
}

#[test]
fn page_hasher_in_range() {
    // PageHasher choices are always within the bin count, for any geometry.
    let mut rng = CounterRng::new(0xA11CE, 3);
    for _ in 0..128 {
        let seed = rng.next_u64();
        let bins = rng.next_below(1 << 40) + 1;
        let k = rng.next_below(7) as u32 + 1;
        let v = rng.next_u64();
        let h = PageHasher::new(seed, bins, k);
        for i in 0..k {
            assert!(h.bin(VirtPage(v), i) < bins);
        }
        // bins_of agrees with bin().
        for (i, b) in h.bins_of(VirtPage(v)).enumerate() {
            assert_eq!(b, h.bin(VirtPage(v), i as u32));
        }
    }
}

#[test]
fn counter_rng_reproducible() {
    // CounterRng streams are pure functions of (seed, key).
    let mut meta = CounterRng::new(0xA11CE, 4);
    for _ in 0..64 {
        let seed = meta.next_u64();
        let key = meta.next_u64();
        let mut a = CounterRng::new(seed, key);
        let mut b = CounterRng::new(seed, key);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn counter_rng_below() {
    // next_below stays below its bound.
    let mut meta = CounterRng::new(0xA11CE, 5);
    for _ in 0..128 {
        let seed = meta.next_u64();
        let key = meta.next_u64();
        let n = meta.next_u64().max(1);
        let mut r = CounterRng::new(seed, key);
        for _ in 0..8 {
            assert!(r.next_below(n) < n);
        }
    }
}

#[test]
fn xxhash_streaming_consistent() {
    // Streaming xxhash equals one-shot for arbitrary data and split points.
    let mut rng = CounterRng::new(0xA11CE, 6);
    for _ in 0..128 {
        let len = rng.next_below(300) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let seed = rng.next_u64();
        let split = if len == 0 {
            0
        } else {
            rng.next_below(len as u64 + 1) as usize
        };
        let mut h = XxHash64::with_seed(seed);
        h.update(&data[..split]);
        h.update(&data[split..]);
        let mut whole = XxHash64::with_seed(seed);
        whole.update(&data);
        assert_eq!(h.digest(), whole.digest(), "len={len} split={split}");
    }
}
