//! Property tests for the hashing substrate, on the `atp-check` harness:
//! generated inputs shrink to minimal counterexamples and every failure
//! prints an `ATP_CHECK_SEED` replay command.

use atp_check::{check, check_config, ensure, ensure_eq, u64s, usizes, vecs, Config};
use atp_hash::mix::reduce;
use atp_hash::{splitmix64, CounterRng, PageHasher, XxHash64};
use atp_types::VirtPage;

#[test]
fn reduce_in_range() {
    // reduce maps any hash into [0, n) for any nonzero n.
    let gen = (u64s(0..=u64::MAX), u64s(1..=u64::MAX));
    let cfg = Config::for_property("reduce_in_range").with_cases(512);
    check_config("reduce_in_range", &gen, &cfg, |(h, n)| {
        ensure!(reduce(*h, *n) < *n, "reduce({h}, {n}) out of range");
        Ok(())
    });
}

#[test]
fn splitmix_injective() {
    // splitmix64 is injective (bijective mixer): distinct inputs give
    // distinct outputs.
    let gen = (u64s(0..=u64::MAX), u64s(0..=u64::MAX));
    let cfg = Config::for_property("splitmix_injective").with_cases(512);
    check_config("splitmix_injective", &gen, &cfg, |(a, b)| {
        if a != b {
            ensure!(
                splitmix64(*a) != splitmix64(*b),
                "splitmix64 collision: {a} and {b}"
            );
        }
        Ok(())
    });
    assert_ne!(splitmix64(0), splitmix64(1));
    assert_ne!(splitmix64(u64::MAX), splitmix64(u64::MAX - 1));
}

#[test]
fn page_hasher_in_range() {
    // PageHasher choices are always within the bin count, for any geometry.
    let gen = (
        u64s(0..=u64::MAX),
        u64s(1..=1 << 40),
        u64s(1..=7),
        u64s(0..=u64::MAX),
    );
    check("page_hasher_in_range", &gen, |(seed, bins, k, v)| {
        let k = *k as u32;
        let h = PageHasher::new(*seed, *bins, k);
        for i in 0..k {
            ensure!(
                h.bin(VirtPage(*v), i) < *bins,
                "choice {i} out of range for bins={bins}"
            );
        }
        // bins_of agrees with bin().
        for (i, b) in h.bins_of(VirtPage(*v)).enumerate() {
            ensure_eq!(b, h.bin(VirtPage(*v), i as u32), "bins_of vs bin at {i}");
        }
        Ok(())
    });
}

#[test]
fn counter_rng_reproducible() {
    // CounterRng streams are pure functions of (seed, key).
    let gen = (u64s(0..=u64::MAX), u64s(0..=u64::MAX));
    check("counter_rng_reproducible", &gen, |(seed, key)| {
        let mut a = CounterRng::new(*seed, *key);
        let mut b = CounterRng::new(*seed, *key);
        for i in 0..16 {
            ensure_eq!(a.next_u64(), b.next_u64(), "stream diverged at draw {i}");
        }
        Ok(())
    });
}

#[test]
fn counter_rng_below() {
    // next_below stays below its bound.
    let gen = (u64s(0..=u64::MAX), u64s(0..=u64::MAX), u64s(1..=u64::MAX));
    check("counter_rng_below", &gen, |(seed, key, n)| {
        let mut r = CounterRng::new(*seed, *key);
        for _ in 0..8 {
            let x = r.next_below(*n);
            ensure!(x < *n, "next_below({n}) returned {x}");
        }
        Ok(())
    });
}

#[test]
fn xxhash_streaming_consistent() {
    // Streaming xxhash equals one-shot for arbitrary data and split points.
    let gen = (
        u64s(0..=u64::MAX),
        vecs(u64s(0..=255), 0..=300),
        usizes(0..=300),
    );
    check(
        "xxhash_streaming_consistent",
        &gen,
        |(seed, bytes, split)| {
            let data: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            let split = (*split).min(data.len());
            let mut h = XxHash64::with_seed(*seed);
            h.update(&data[..split]);
            h.update(&data[split..]);
            let mut whole = XxHash64::with_seed(*seed);
            whole.update(&data);
            ensure_eq!(
                h.digest(),
                whole.digest(),
                "len={} split={split}",
                data.len()
            );
            Ok(())
        },
    );
}
