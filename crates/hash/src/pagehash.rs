//! The paper's `h_1, …, h_k`: `k` page→bin hash choices.
//!
//! Section 4 places each page into one of `k` randomly chosen buckets
//! ("we randomly choose k buckets by computing k hash functions of the
//! virtual page address"). We realize the family with seeded double hashing:
//!
//! ```text
//! h_i(v) = (a(v) + i · b(v)) mod n,    b(v) forced odd
//! ```
//!
//! where `a` and `b` are independent splitmix64 streams of the seed. Against
//! an *oblivious* adversary (the paper's model — the request sequence cannot
//! depend on the scheme's random bits) this family behaves like independent
//! uniform choices, and it is cheap: two mixes per page regardless of `k`.

use crate::mix::{mix2, reduce, splitmix64};
use atp_types::VirtPage;

/// A family of `k` page→bin hash functions over `n` bins.
#[derive(Clone, Copy, Debug)]
pub struct PageHasher {
    seed_a: u64,
    seed_b: u64,
    bins: u64,
    k: u32,
}

impl PageHasher {
    /// Creates a family of `k` hash functions mapping pages into `[0, bins)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `k == 0`.
    pub fn new(seed: u64, bins: u64, k: u32) -> Self {
        assert!(bins > 0, "bins must be nonzero");
        assert!(k > 0, "k must be nonzero");
        Self {
            seed_a: splitmix64(seed ^ 0xA5A5_A5A5_A5A5_A5A5),
            seed_b: splitmix64(seed.wrapping_add(0x0DDB_1A5E_5BAD_5EED)),
            bins,
            k,
        }
    }

    /// Number of bins.
    #[inline]
    pub const fn bins(&self) -> u64 {
        self.bins
    }

    /// Number of hash functions.
    #[inline]
    pub const fn k(&self) -> u32 {
        self.k
    }

    /// The `i`-th bin choice for page `v` (`i < k`).
    #[inline]
    pub fn bin(&self, v: VirtPage, i: u32) -> u64 {
        debug_assert!(i < self.k, "hash index {i} out of range (k={})", self.k);
        let a = mix2(self.seed_a, v.0);
        if i == 0 {
            return reduce(a, self.bins);
        }
        let b = mix2(self.seed_b, v.0) | 1; // odd stride
        reduce(a.wrapping_add((i as u64).wrapping_mul(b)), self.bins)
    }

    /// All `k` bin choices for `v`, in order.
    pub fn bins_of(&self, v: VirtPage) -> impl Iterator<Item = u64> + '_ {
        let a = mix2(self.seed_a, v.0);
        let b = mix2(self.seed_b, v.0) | 1;
        (0..self.k as u64).map(move |i| reduce(a.wrapping_add(i.wrapping_mul(b)), self.bins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choices_are_in_range() {
        let h = PageHasher::new(1, 97, 3);
        for v in 0..10_000u64 {
            for i in 0..3 {
                assert!(h.bin(VirtPage(v), i) < 97);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let h1 = PageHasher::new(9, 128, 2);
        let h2 = PageHasher::new(9, 128, 2);
        let h3 = PageHasher::new(10, 128, 2);
        let mut same = 0;
        for v in 0..1000u64 {
            assert_eq!(h1.bin(VirtPage(v), 0), h2.bin(VirtPage(v), 0));
            if h1.bin(VirtPage(v), 0) == h3.bin(VirtPage(v), 0) {
                same += 1;
            }
        }
        // Different seeds should agree only at the chance rate (~1/128).
        assert!(same < 40, "seeds look correlated: {same}/1000 agree");
    }

    #[test]
    fn bins_of_matches_bin() {
        let h = PageHasher::new(3, 1000, 4);
        for v in [0u64, 1, 99, 123_456] {
            let all: Vec<u64> = h.bins_of(VirtPage(v)).collect();
            for (i, &b) in all.iter().enumerate() {
                assert_eq!(b, h.bin(VirtPage(v), i as u32));
            }
        }
    }

    #[test]
    fn loads_are_roughly_balanced() {
        let n = 64u64;
        let h = PageHasher::new(5, n, 1);
        let mut counts = vec![0u64; n as usize];
        let total = 64_000u64;
        for v in 0..total {
            counts[h.bin(VirtPage(v), 0) as usize] += 1;
        }
        let expect = (total / n) as f64;
        for &c in &counts {
            assert!(
                (c as f64) > expect * 0.8 && (c as f64) < expect * 1.2,
                "bin load {c} far from {expect}"
            );
        }
    }

    #[test]
    fn k_choices_usually_distinct() {
        // With 1000 bins and k=3, all-distinct should be the overwhelming case.
        let h = PageHasher::new(11, 1000, 3);
        let mut all_distinct = 0;
        for v in 0..1000u64 {
            let c: Vec<u64> = h.bins_of(VirtPage(v)).collect();
            if c[0] != c[1] && c[1] != c[2] && c[0] != c[2] {
                all_distinct += 1;
            }
        }
        assert!(
            all_distinct > 950,
            "too many colliding choice sets: {all_distinct}"
        );
    }

    #[test]
    #[should_panic(expected = "bins must be nonzero")]
    fn zero_bins_rejected() {
        PageHasher::new(0, 0, 1);
    }
}
