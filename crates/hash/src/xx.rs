//! Streaming 64-bit hashing (the xxHash64 algorithm).
//!
//! Used where we need a high-quality seeded hash over multi-word inputs —
//! deriving per-experiment sub-seeds, hashing trace headers, and as the
//! reference hash in statistical tests. Implemented from scratch from the
//! public xxHash64 specification.

const PRIME1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME5: u64 = 0x27D4_EB2F_1656_67C5;

/// One-shot xxHash64 of `data` with `seed`.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let mut h = XxHash64::with_seed(seed);
    h.update(data);
    h.digest()
}

/// Streaming xxHash64 state.
#[derive(Clone, Debug)]
pub struct XxHash64 {
    seed: u64,
    total_len: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    v4: u64,
    buf: [u8; 32],
    buf_len: usize,
}

impl XxHash64 {
    /// Creates a hasher with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            total_len: 0,
            v1: seed.wrapping_add(PRIME1).wrapping_add(PRIME2),
            v2: seed.wrapping_add(PRIME2),
            v3: seed,
            v4: seed.wrapping_sub(PRIME1),
            buf: [0; 32],
            buf_len: 0,
        }
    }

    #[inline]
    fn round(acc: u64, input: u64) -> u64 {
        acc.wrapping_add(input.wrapping_mul(PRIME2))
            .rotate_left(31)
            .wrapping_mul(PRIME1)
    }

    #[inline]
    fn merge_round(acc: u64, val: u64) -> u64 {
        (acc ^ Self::round(0, val))
            .wrapping_mul(PRIME1)
            .wrapping_add(PRIME4)
    }

    fn consume_stripe(&mut self, stripe: &[u8]) {
        debug_assert_eq!(stripe.len(), 32);
        let w =
            // atp-lint: allow(unwrap-policy, reason = "consume_stripe receives exactly 32-byte stripes (debug_assert above); each i*8 slice is 8 bytes")
            |i: usize| u64::from_le_bytes(stripe[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        self.v1 = Self::round(self.v1, w(0));
        self.v2 = Self::round(self.v2, w(1));
        self.v3 = Self::round(self.v3, w(2));
        self.v4 = Self::round(self.v4, w(3));
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;

        // Fill a partially-filled buffer first.
        if self.buf_len > 0 {
            let need = 32 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 32 {
                let stripe = self.buf;
                self.consume_stripe(&stripe);
                self.buf_len = 0;
            }
        }

        // Whole stripes straight from the input.
        while data.len() >= 32 {
            let (stripe, rest) = data.split_at(32);
            let mut tmp = [0u8; 32];
            tmp.copy_from_slice(stripe);
            self.consume_stripe(&tmp);
            data = rest;
        }

        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalizes and returns the 64-bit digest.
    pub fn digest(&self) -> u64 {
        let mut h = if self.total_len >= 32 {
            let mut acc = self
                .v1
                .rotate_left(1)
                .wrapping_add(self.v2.rotate_left(7))
                .wrapping_add(self.v3.rotate_left(12))
                .wrapping_add(self.v4.rotate_left(18));
            acc = Self::merge_round(acc, self.v1);
            acc = Self::merge_round(acc, self.v2);
            acc = Self::merge_round(acc, self.v3);
            acc = Self::merge_round(acc, self.v4);
            acc
        } else {
            self.seed.wrapping_add(PRIME5)
        };

        h = h.wrapping_add(self.total_len);

        let mut tail = &self.buf[..self.buf_len];
        while tail.len() >= 8 {
            // atp-lint: allow(unwrap-policy, reason = "tail length was checked >= 8 on this branch")
            let k = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
            h ^= Self::round(0, k);
            h = h.rotate_left(27).wrapping_mul(PRIME1).wrapping_add(PRIME4);
            tail = &tail[8..];
        }
        if tail.len() >= 4 {
            // atp-lint: allow(unwrap-policy, reason = "tail length was checked >= 4 on this branch")
            let k = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) as u64;
            h ^= k.wrapping_mul(PRIME1);
            h = h.rotate_left(23).wrapping_mul(PRIME2).wrapping_add(PRIME3);
            tail = &tail[4..];
        }
        for &b in tail {
            h ^= (b as u64).wrapping_mul(PRIME5);
            h = h.rotate_left(11).wrapping_mul(PRIME1);
        }

        h ^= h >> 33;
        h = h.wrapping_mul(PRIME2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME3);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the xxHash specification test suite.
    #[test]
    fn empty_input_seed0() {
        assert_eq!(xxhash64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn known_ascii_vectors() {
        // Cross-checked against the reference C implementation.
        assert_eq!(xxhash64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxhash64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(xxhash64(b"hello world", 0), xxhash64(b"hello world", 1));
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 7, 31, 32, 33, 64, 500, 999, 1000] {
            let mut h = XxHash64::with_seed(42);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), xxhash64(&data, 42), "split at {split}");
        }
    }

    #[test]
    fn multi_chunk_streaming() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        let mut h = XxHash64::with_seed(7);
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.digest(), xxhash64(&data, 7));
    }

    #[test]
    fn short_inputs_all_lengths() {
        // Exercise every tail path (0..32 bytes).
        let data: Vec<u8> = (0..32).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=32 {
            assert!(
                seen.insert(xxhash64(&data[..len], 0)),
                "collision at len {len}"
            );
        }
    }
}
