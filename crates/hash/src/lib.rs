//! Deterministic hashing substrate for the Address-Translation Problem.
//!
//! Every randomized component in this workspace — the balls-and-bins games,
//! the low-associativity RAM allocators, the workload generators — draws its
//! randomness from seeded, *deterministic* hash functions so that experiments
//! are exactly reproducible. This crate provides:
//!
//! * [`mix::splitmix64`] and friends — 64-bit finalizers/mixers,
//! * [`xx::XxHash64`] — a streaming 64-bit hasher (xxHash64 algorithm),
//! * [`fx::FxHasher`] / [`fx::FxBuildHasher`] — the rustc-style fast hasher
//!   used for internal `HashMap`s (std's SipHash is a measured bottleneck in
//!   page-granular simulators; see the perf-book "Hashing" chapter),
//! * [`pagehash::PageHasher`] — `k` independent page→bin choices via
//!   seeded double hashing, the paper's `h_1, …, h_k`,
//! * [`counter::CounterRng`] — a counter-based deterministic RNG stream so
//!   that (e.g.) edge `j` of graph node `v` is a pure function of `(v, j)`,
//! * [`flat::SlotIndex`] — a fixed-geometry open-addressing `hash → slot`
//!   index with a precomputed-hash API and explicit bucket prefetch, the
//!   probe structure under the batched translation engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod flat;
pub mod fx;
pub mod mix;
pub mod pagehash;
pub mod xx;

pub use counter::CounterRng;
pub use flat::{fx_hash, SlotIndex};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use mix::{mix2, mix3, splitmix64};
pub use pagehash::PageHasher;
pub use xx::XxHash64;
