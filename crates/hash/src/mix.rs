//! 64-bit mixing primitives.
//!
//! [`splitmix64`] is the finalizer from Steele, Lea & Flood's SplitMix
//! generator: a bijective avalanche function on `u64` whose output bits each
//! depend on every input bit. It is the workhorse used to derive independent
//! hash functions from `(seed, index)` pairs.

/// SplitMix64 finalizer: a bijective 64-bit avalanche mix.
#[inline]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two words into one (order-sensitive).
#[inline]
pub const fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a).wrapping_add(b.rotate_left(32)))
}

/// Mixes three words into one (order-sensitive).
#[inline]
pub const fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(mix2(a, b).wrapping_add(c.rotate_left(17)))
}

/// Maps a 64-bit hash to a bucket in `[0, n)` without modulo bias, using
/// Lemire's multiply-shift reduction.
#[inline]
pub const fn reduce(hash: u64, n: u64) -> u64 {
    ((hash as u128 * n as u128) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_vectors() {
        // Reference values from the SplitMix64 specification
        // (seed 0 produces this first output).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn splitmix_is_injective_on_sample() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..100_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 100_000);
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn mix3_differs_from_mix2() {
        assert_ne!(mix3(1, 2, 0), mix2(1, 2));
    }

    #[test]
    fn reduce_is_in_range() {
        for h in [0u64, 1, u64::MAX, 0xDEADBEEF, 1 << 63] {
            for n in [1u64, 2, 3, 7, 1000, 1 << 40] {
                assert!(reduce(h, n) < n, "reduce({h},{n}) out of range");
            }
        }
    }

    #[test]
    fn reduce_is_roughly_uniform() {
        let n = 10u64;
        let mut counts = [0u64; 10];
        for i in 0..100_000u64 {
            counts[reduce(splitmix64(i), n) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should get ~10k; allow ±15%.
            assert!((8_500..=11_500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn avalanche_flips_many_bits() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let samples = 1000;
        for i in 0..samples {
            let a = splitmix64(i);
            let b = splitmix64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((24.0..40.0).contains(&avg), "weak avalanche: {avg}");
    }
}
