//! A rustc-style ("Fx") fast hasher for internal hash maps.
//!
//! Simulators in this workspace key hash maps almost exclusively by page ids
//! (single `u64`s). std's default SipHash is DoS-resistant but measurably
//! slow for such keys; the Fx algorithm (multiply-rotate per word) is the
//! standard replacement in performance-sensitive Rust (it is what rustc
//! itself uses). HashDoS is not a concern for offline simulations.

use core::hash::{BuildHasherDefault, Hasher};
// atp-lint: allow(no-random-state, reason = "this is the definition site of FxHashMap/FxHashSet; the aliases below pin the deterministic hasher")
use std::collections::{HashMap, HashSet};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx hasher state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // atp-lint: allow(unwrap-policy, reason = "chunks_exact(8) yields exactly 8-byte slices")
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use core::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);

        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn partial_byte_writes_hash() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 4]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn long_byte_writes_hash_all_chunks() {
        let mut a = vec![0u8; 64];
        let mut h1 = FxHasher::default();
        h1.write(&a);
        a[63] = 1; // flip a byte in the last chunk
        let mut h2 = FxHasher::default();
        h2.write(&a);
        assert_ne!(h1.finish(), h2.finish());
    }
}
