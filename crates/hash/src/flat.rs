//! A flat, open-addressing slot index with a precomputed-hash API.
//!
//! [`SlotIndex`] is the probe structure under the batched translation
//! engine: a linear-probing hash table mapping *full 64-bit hashes* to
//! `u32` slot ids. It deliberately does **not** store keys — key equality
//! is delegated to the caller through an `eq(slot)` callback, so the one
//! copy of each key stays in the caller's slot arena (SoA: the index is
//! two dense arrays, 12 bytes per bucket) and every entry point accepts a
//! hash the caller computed earlier. That split is what makes software
//! pipelining possible: a batch step can hash 8–16 keys up front (no
//! dependency chains), touch their buckets to pull the probe lines into
//! cache ([`SlotIndex::touch`]), and only then resolve the probes in
//! access order.
//!
//! Properties relied on by callers:
//!
//! * **Fixed geometry** — capacity is chosen at construction for a known
//!   maximum entry count (cache/TLB capacity); the table never rehashes,
//!   so bucket positions are stable between a `touch` and the probe that
//!   follows.
//! * **Determinism** — bucket placement is a pure function of the inserted
//!   hashes and the insertion/removal sequence. No `RandomState`, no
//!   ambient randomness.
//! * **Real deletion** — removal compacts displaced runs (backward-shift
//!   deletion), so long-lived churn (TLB shootdowns, tenant retirement)
//!   cannot accumulate tombstones and degrade probe lengths.
//!
//! Buckets are addressed by the *top* bits of the hash (Fibonacci-style),
//! which is the well-mixed end of [`crate::fx`]'s multiply-based hashes.

use core::hash::{BuildHasher, Hash};

use crate::fx::FxBuildHasher;

/// Sentinel marking a vacant bucket (slot ids must stay below it; the
/// cache simulators already cap capacity below `u32::MAX`).
const VACANT: u32 = u32::MAX;

/// Hashes one key with the workspace's deterministic Fx hasher.
///
/// This is the hash every [`SlotIndex`] entry point expects; callers batch
/// these up front and reuse one hash across probe, insert, and remove.
#[inline]
pub fn fx_hash<K: Hash + ?Sized>(k: &K) -> u64 {
    FxBuildHasher::default().hash_one(k)
}

/// A fixed-geometry, open-addressing `hash → u32` index with caller-side
/// key storage. See the module docs for the contract.
#[derive(Clone, Debug)]
pub struct SlotIndex {
    /// Full 64-bit hash per bucket; garbage where `slots` is [`VACANT`].
    hashes: Vec<u64>,
    /// Slot id per bucket; [`VACANT`] marks an empty bucket.
    slots: Vec<u32>,
    /// `buckets = 1 << (64 - shift)`; bucket of `h` is `h >> shift`.
    shift: u32,
    mask: usize,
    len: usize,
    max_entries: usize,
}

impl SlotIndex {
    /// Creates an index able to hold `max_entries` entries at a load
    /// factor of at most ½ (bucket count is the next power of two of
    /// `2 * max_entries`, minimum 8).
    ///
    /// # Panics
    /// Panics if `max_entries` is zero or does not fit `u32` slot ids.
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries > 0, "slot index capacity must be nonzero");
        assert!(
            max_entries < VACANT as usize,
            "slot index capacity exceeds u32 slot ids"
        );
        let buckets = (max_entries * 2).next_power_of_two().max(8);
        Self {
            hashes: vec![0; buckets],
            slots: vec![VACANT; buckets],
            shift: 64 - buckets.trailing_zeros(),
            mask: buckets - 1,
            len: 0,
            max_entries,
        }
    }

    /// Number of resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum entry count fixed at construction.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Home bucket of hash `h`.
    #[inline]
    fn bucket(&self, h: u64) -> usize {
        (h >> self.shift) as usize
    }

    /// Pulls the probe line for hash `h` into cache without resolving the
    /// probe — the "explicit arena prefetch" stage of a batched pipeline.
    /// A plain read forced to materialize; safe, side-effect-free, and a
    /// no-op semantically.
    #[inline]
    pub fn touch(&self, h: u64) {
        let b = self.bucket(h);
        std::hint::black_box(self.slots[b]);
        std::hint::black_box(self.hashes[b]);
    }

    /// Resolves hash `h` to its slot id, if present. `eq(slot)` must
    /// report whether the caller's arena holds the probed key at `slot`;
    /// it is only consulted on a full 64-bit hash match.
    #[inline]
    pub fn get(&self, h: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut b = self.bucket(h);
        loop {
            let s = self.slots[b];
            if s == VACANT {
                return None;
            }
            if self.hashes[b] == h && eq(s) {
                return Some(s);
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Inserts `h → slot`. The caller guarantees the key hashing to `h` is
    /// absent (the cache simulators probe first and treat insert-of-resident
    /// as a contract violation).
    ///
    /// # Panics
    /// Panics if the index is already at its fixed capacity.
    #[inline]
    pub fn insert(&mut self, h: u64, slot: u32) {
        assert!(self.len < self.max_entries, "slot index overfull");
        debug_assert_ne!(slot, VACANT, "slot id collides with vacancy sentinel");
        let mut b = self.bucket(h);
        while self.slots[b] != VACANT {
            b = (b + 1) & self.mask;
        }
        self.slots[b] = slot;
        self.hashes[b] = h;
        self.len += 1;
    }

    /// Removes the entry for hash `h` (with `eq` confirming the key),
    /// returning its slot id. Displaced probe runs are compacted
    /// (backward-shift deletion), so no tombstones accumulate.
    pub fn remove(&mut self, h: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut b = self.bucket(h);
        loop {
            let s = self.slots[b];
            if s == VACANT {
                return None;
            }
            if self.hashes[b] == h && eq(s) {
                self.compact_from(b);
                self.len -= 1;
                return Some(s);
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Vacates bucket `i`, then shifts any entry whose probe path passed
    /// through `i` backward so every surviving entry stays reachable from
    /// its home bucket.
    fn compact_from(&mut self, mut i: usize) {
        self.slots[i] = VACANT;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.slots[j] == VACANT {
                return;
            }
            let home = self.bucket(self.hashes[j]);
            // Entry `j` may move into the hole at `i` iff `i` lies on its
            // probe path, i.e. the cyclic distance home→j covers i→j.
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.slots[i] = self.slots[j];
                self.hashes[i] = self.hashes[j];
                self.slots[j] = VACANT;
                i = j;
            }
        }
    }

    /// Iterates resident `(hash, slot)` pairs in bucket order
    /// (deterministic, but arbitrary from the caller's point of view).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.slots
            .iter()
            .zip(&self.hashes)
            .filter(|(&s, _)| s != VACANT)
            .map(|(&s, &h)| (h, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterRng;
    use std::collections::HashMap;

    /// A keyless harness: keys ARE the slot ids (stored nowhere), so `eq`
    /// compares slot ids directly — exactly how the cache simulators use
    /// removal, and a faithful stand-in for arena-side key checks.
    fn get(ix: &SlotIndex, h: u64, slot: u32) -> bool {
        ix.get(h, |s| s == slot) == Some(slot)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut ix = SlotIndex::with_capacity(8);
        let h = fx_hash(&42u64);
        assert_eq!(ix.get(h, |_| true), None);
        ix.insert(h, 3);
        assert_eq!(ix.get(h, |_| true), Some(3));
        assert_eq!(ix.remove(h, |s| s == 3), Some(3));
        assert_eq!(ix.get(h, |_| true), None);
        assert!(ix.is_empty());
    }

    #[test]
    fn eq_disambiguates_full_hash_collisions() {
        let mut ix = SlotIndex::with_capacity(8);
        // Same hash, two different "keys" (slots 1 and 2).
        let h = fx_hash(&7u64);
        ix.insert(h, 1);
        ix.insert(h, 2);
        assert_eq!(ix.get(h, |s| s == 2), Some(2));
        assert_eq!(ix.remove(h, |s| s == 1), Some(1));
        assert_eq!(ix.get(h, |s| s == 2), Some(2));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn touch_is_semantically_inert() {
        let mut ix = SlotIndex::with_capacity(8);
        let h = fx_hash(&5u64);
        ix.touch(h);
        ix.insert(h, 0);
        ix.touch(h);
        ix.touch(fx_hash(&6u64));
        assert_eq!(ix.len(), 1);
        assert!(get(&ix, h, 0));
    }

    #[test]
    #[should_panic(expected = "overfull")]
    fn overfull_insert_panics() {
        let mut ix = SlotIndex::with_capacity(2);
        ix.insert(fx_hash(&1u64), 0);
        ix.insert(fx_hash(&2u64), 1);
        ix.insert(fx_hash(&3u64), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        SlotIndex::with_capacity(0);
    }

    #[test]
    fn backward_shift_keeps_displaced_entries_reachable() {
        // Force a displaced run by filling a small table, then delete from
        // the middle of runs repeatedly; everything left must stay findable.
        let mut ix = SlotIndex::with_capacity(16);
        let keys: Vec<u64> = (0..16).collect();
        for (i, k) in keys.iter().enumerate() {
            ix.insert(fx_hash(k), i as u32);
        }
        // Remove evens, then verify odds; re-insert evens, verify all.
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(ix.remove(fx_hash(k), |s| s == i as u32), Some(i as u32));
            }
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(get(&ix, fx_hash(k), i as u32), i % 2 == 1, "key {k}");
        }
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                ix.insert(fx_hash(k), i as u32);
            }
        }
        for (i, k) in keys.iter().enumerate() {
            assert!(get(&ix, fx_hash(k), i as u32));
        }
    }

    #[test]
    fn churn_matches_hashmap_oracle() {
        // Deterministic churn against std's HashMap: same membership after
        // every operation, across a range of occupancies.
        let mut rng = CounterRng::new(0xF1A7, 0);
        let mut ix = SlotIndex::with_capacity(64);
        let mut oracle: HashMap<u64, u32> = HashMap::new();
        let mut next_slot = 0u32;
        for step in 0..20_000u64 {
            let k = rng.next_below(96);
            let h = fx_hash(&k);
            let slot = oracle.get(&k).copied();
            match rng.next_below(3) {
                0 | 1 => {
                    // access-or-insert, bounded by capacity
                    match slot {
                        Some(s) => assert_eq!(ix.get(h, |x| x == s), Some(s), "step {step}"),
                        None if oracle.len() < 64 => {
                            ix.insert(h, next_slot);
                            oracle.insert(k, next_slot);
                            next_slot += 1;
                        }
                        None => assert_eq!(
                            ix.get(h, |x| oracle.values().any(|&v| v == x) && slot == Some(x)),
                            None
                        ),
                    }
                }
                _ => {
                    let removed = ix.remove(h, |x| slot == Some(x));
                    assert_eq!(removed, slot, "step {step}");
                    oracle.remove(&k);
                }
            }
            assert_eq!(ix.len(), oracle.len(), "step {step}");
        }
        // Full final audit.
        for (k, s) in &oracle {
            assert_eq!(ix.get(fx_hash(k), |x| x == *s), Some(*s));
        }
        assert_eq!(ix.iter().count(), oracle.len());
    }

    #[test]
    fn iter_lists_every_resident_pair() {
        let mut ix = SlotIndex::with_capacity(8);
        for k in 0..5u64 {
            ix.insert(fx_hash(&k), k as u32);
        }
        let mut pairs: Vec<(u64, u32)> = ix.iter().collect();
        pairs.sort_unstable();
        let mut expect: Vec<(u64, u32)> = (0..5u64).map(|k| (fx_hash(&k), k as u32)).collect();
        expect.sort_unstable();
        assert_eq!(pairs, expect);
    }
}
