//! Counter-based deterministic RNG.
//!
//! Workload generators need randomness that is a *pure function* of logical
//! coordinates — e.g. "edge `j` of graph node `v`" must be the same on every
//! visit without storing the graph. [`CounterRng`] provides an arbitrary-
//! length stream of uniform words derived from `(seed, key)` by counter-mode
//! application of splitmix64, plus the usual conversion helpers.

use crate::mix::{mix2, reduce, splitmix64};

/// A deterministic stream of pseudo-random words keyed by `(seed, key)`.
#[derive(Clone, Copy, Debug)]
pub struct CounterRng {
    state: u64,
    counter: u64,
}

impl CounterRng {
    /// Creates the stream for `(seed, key)`.
    #[inline]
    pub fn new(seed: u64, key: u64) -> Self {
        Self {
            state: mix2(seed, key),
            counter: 0,
        }
    }

    /// Creates the stream for a 2-component key.
    #[inline]
    pub fn new2(seed: u64, k1: u64, k2: u64) -> Self {
        Self {
            state: mix2(mix2(seed, k1), k2),
            counter: 0,
        }
    }

    /// Next uniform `u64`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(
            self.state
                .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        self.counter += 1;
        out
    }

    /// Next uniform value in `[0, n)` (unbiased multiply-shift reduction).
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        reduce(self.next_u64(), n)
    }

    /// Next uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next Bernoulli trial with success probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = CounterRng::new(1, 2);
        let mut b = CounterRng::new(1, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = CounterRng::new(1, 2);
        let mut b = CounterRng::new(1, 3);
        let matches = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn two_component_key_orders_matter() {
        let mut a = CounterRng::new2(0, 1, 2);
        let mut b = CounterRng::new2(0, 2, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = CounterRng::new(7, 7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = CounterRng::new(11, 0);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_uniform() {
        let mut r = CounterRng::new(13, 1);
        let mut counts = [0u64; 7];
        for _ in 0..70_000 {
            counts[r.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {c}");
        }
    }

    #[test]
    fn bernoulli_rate_tracks_p() {
        let mut r = CounterRng::new(17, 3);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
