//! Differential tests pinning the heap-based Belady implementation
//! (`atp_replacement::opt::opt_misses`) to the brute-force exhaustive
//! lookahead oracle on every generated trace of length ≤ 64 across cache
//! sizes 1..=8.

use atp_check::oracles::opt_misses_naive;
use atp_check::{check, ensure, ensure_eq, u64s, vecs};
use atp_replacement::opt::opt_misses;

#[test]
fn heap_opt_matches_brute_force_on_short_traces() {
    // Small page universe maximizes re-references, which is where eviction
    // choice (and thus any tie-break or lookahead bug) matters.
    let gen = vecs(u64s(0..=15), 0..=64);
    check(
        "heap_opt_matches_brute_force_on_short_traces",
        &gen,
        |trace| {
            for cap in 1..=8usize {
                ensure_eq!(
                    opt_misses(trace, cap).misses,
                    opt_misses_naive(trace, cap),
                    "OPT miss counts diverged at capacity {cap} on {trace:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn opt_never_beats_compulsory_bound_and_is_monotone() {
    let gen = vecs(u64s(0..=15), 0..=64);
    check(
        "opt_never_beats_compulsory_bound_and_is_monotone",
        &gen,
        |trace| {
            let distinct = {
                let mut s: Vec<u64> = trace.clone();
                s.sort_unstable();
                s.dedup();
                s.len() as u64
            };
            let mut prev = u64::MAX;
            for cap in 1..=8usize {
                let m = opt_misses_naive(trace, cap);
                ensure!(
                    m >= distinct,
                    "OPT undercounted compulsory misses: {m} < {distinct} at cap {cap}"
                );
                ensure!(
                    m <= trace.len() as u64,
                    "more misses than accesses at cap {cap}"
                );
                ensure!(m <= prev, "OPT misses grew with capacity at {cap}");
                prev = m;
            }
            Ok(())
        },
    );
}

/// Long traces and big caches for the dedicated `--ignored` CI step.
#[test]
#[ignore = "large oracle size (quadratic lookahead); run via the dedicated CI step"]
fn heap_opt_matches_brute_force_at_scale() {
    use atp_check::CounterRng;
    let mut rng = CounterRng::new(0x0B7A, 0);
    for round in 0..8u64 {
        let len = 2000 + rng.next_below(2000) as usize;
        let universe = 1 + rng.next_below(256);
        let trace: Vec<u64> = (0..len).map(|_| rng.next_below(universe)).collect();
        for cap in [1usize, 2, 7, 16, 63, 128] {
            assert_eq!(
                opt_misses(&trace, cap).misses,
                opt_misses_naive(&trace, cap),
                "round {round}, universe {universe}, cap {cap}"
            );
        }
    }
}
