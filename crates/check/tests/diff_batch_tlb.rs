//! Differential for the raw batched engine: `BatchTlb` (timestamp LRU,
//! software-pipelined `access_or_fill_batch`) against the fused
//! `Tlb<u64, Lru>` golden, over generated churn scripts of accesses and
//! invalidations flushed at batch sizes {1, 8, 13, 4096}. Hits, the full
//! counter block, and the resident set must stay identical at every
//! flush point; divergences shrink to a minimal script.

use atp_check::{check_config, ensure_eq, from_fn, vecs, Config, CounterRng, Gen};
use atp_tlb::{BatchTlb, Tlb};
use atp_types::VirtHugePage;

const ENTRIES: u64 = 16;
/// Page span ~3× capacity: plenty of hits, steady evictions.
const SPAN: u64 = 48;
const BATCHES: [usize; 4] = [1, 8, 13, 4096];

/// `(invalidate?, page)` scripts; shrinks toward plain accesses of 0.
fn script_gen() -> impl Gen<Value = Vec<(bool, u64)>> {
    let op = from_fn(
        |rng: &mut CounterRng| (rng.next_below(10) == 0, rng.next_below(SPAN)),
        |&(inv, v): &(bool, u64)| {
            let mut out = Vec::new();
            if inv {
                out.push((false, v));
            }
            if v > 0 {
                out.push((inv, 0));
                out.push((inv, v / 2));
            }
            out
        },
    );
    vecs(op, 0..=600)
}

fn diff_script(script: &[(bool, u64)], batch: usize) -> Result<(), String> {
    let mut fast: BatchTlb<u64> = BatchTlb::lru(ENTRIES);
    let mut gold: Tlb<u64> = Tlb::lru(ENTRIES);
    let mut pending: Vec<VirtHugePage> = Vec::new();
    let mut step = 0usize;
    let flush = |fast: &mut BatchTlb<u64>,
                 gold: &mut Tlb<u64>,
                 pending: &mut Vec<VirtHugePage>,
                 step: usize|
     -> Result<(), String> {
        let fast_hits = fast.access_or_fill_batch(pending, |u| u.0 * 3);
        let mut gold_hits = 0u64;
        for &u in pending.iter() {
            if gold.access_or_fill(u, || u.0 * 3) {
                gold_hits += 1;
            }
        }
        pending.clear();
        ensure_eq!(
            fast_hits,
            gold_hits,
            "batch hits diverged before step {step}"
        );
        ensure_eq!(
            fast.stats(),
            gold.stats(),
            "counters diverged before step {step}"
        );
        Ok(())
    };
    for &(invalidate, page) in script {
        let u = VirtHugePage(page);
        if invalidate {
            // Invalidations are synchronous events: drain the batch
            // first, exactly as a shootdown would interrupt a stream.
            flush(&mut fast, &mut gold, &mut pending, step)?;
            ensure_eq!(
                fast.invalidate(u),
                gold.invalidate(u),
                "invalidate({page}) diverged at step {step}"
            );
        } else {
            pending.push(u);
            if pending.len() == batch {
                flush(&mut fast, &mut gold, &mut pending, step)?;
            }
        }
        step += 1;
    }
    flush(&mut fast, &mut gold, &mut pending, step)?;
    ensure_eq!(fast.len(), gold.len(), "resident counts diverged at end");
    let mut a: Vec<(u64, u64)> = fast.iter().map(|(k, v)| (k.0, *v)).collect();
    let mut b: Vec<(u64, u64)> = gold.iter().map(|(k, v)| (k.0, *v)).collect();
    a.sort_unstable();
    b.sort_unstable();
    ensure_eq!(a, b, "resident sets diverged at end");
    Ok(())
}

#[test]
fn batch_tlb_matches_fused_lru_at_every_batch_size() {
    for batch in BATCHES {
        let name = format!("diff_batch_tlb_{batch}");
        let cfg = Config::for_property(&name).with_cases(8);
        check_config(&name, &script_gen(), &cfg, |script| {
            diff_script(script, batch)
        });
    }
}
