//! Differential tests: the real balls-and-bins [`Game`] against the
//! exhaustive-scan [`NaiveGame`] oracle, over generated adversary scripts
//! of interleaved inserts and removes under every placement rule.

use atp_ballsbins::{Game, Rule, Slot};
use atp_check::oracles::NaiveGame;
use atp_check::{check, differential, ensure_eq, from_fn, u64s, vecs, CounterRng, Gen};

/// Generates one of the three placement rules; shrinks toward
/// `OneChoice`, then toward the smallest parameter.
fn rules() -> impl Gen<Value = Rule> {
    from_fn(
        |rng: &mut CounterRng| match rng.next_below(3) {
            0 => Rule::OneChoice,
            1 => Rule::Greedy {
                d: rng.next_below(3) as u32 + 2,
            },
            _ => Rule::Iceberg {
                front_cap: rng.next_below(7) as u32 + 1,
            },
        },
        |r: &Rule| match *r {
            Rule::OneChoice => vec![],
            Rule::Greedy { d } if d > 2 => vec![Rule::OneChoice, Rule::Greedy { d: 2 }],
            Rule::Greedy { .. } => vec![Rule::OneChoice],
            Rule::Iceberg { front_cap } if front_cap > 1 => {
                vec![Rule::OneChoice, Rule::Iceberg { front_cap: 1 }]
            }
            Rule::Iceberg { .. } => vec![Rule::OneChoice],
        },
    )
}

/// Applies one `(ball, insert)` op, reporting the slot the op touched.
/// `None` means the op was a no-op (double insert / absent remove).
fn step(g: &mut Game, ball: u64, insert: bool) -> Option<Slot> {
    if insert {
        if g.contains(ball) {
            None
        } else {
            Some(g.insert(ball))
        }
    } else {
        g.remove(ball)
    }
}

fn naive_step(g: &mut NaiveGame, ball: u64, insert: bool) -> Option<Slot> {
    if insert {
        if g.contains(ball) {
            None
        } else {
            Some(g.insert(ball))
        }
    } else {
        g.remove(ball)
    }
}

#[test]
fn game_matches_naive_oracle_on_adversary_scripts() {
    // (seed, bins, rule, ops): every op's slot and every post-script load
    // must agree with the exhaustive-scan reference.
    let gen = (
        u64s(0..=u64::MAX),
        u64s(1..=32),
        rules(),
        vecs((u64s(0..=63), atp_check::bools()), 0..=200),
    );
    check(
        "game_matches_naive_oracle_on_adversary_scripts",
        &gen,
        |(seed, bins, rule, ops)| {
            let mut real = Game::new(*seed, *bins, *rule);
            let mut naive = NaiveGame::new(*seed, *bins, *rule);
            differential(
                "Game",
                "NaiveGame",
                ops.iter().copied(),
                |&(ball, ins)| step(&mut real, ball, ins),
                |&(ball, ins)| naive_step(&mut naive, ball, ins),
            )?;
            for b in 0..*bins {
                ensure_eq!(real.load(b), naive.load(b), "total load of bin {b}");
                ensure_eq!(
                    real.front_load(b),
                    naive.front_load(b),
                    "front load of bin {b}"
                );
                ensure_eq!(
                    real.back_load(b),
                    naive.back_load(b),
                    "back load of bin {b}"
                );
            }
            ensure_eq!(real.len(), naive.len(), "ball count");
            ensure_eq!(real.max_load(), naive.max_load(), "max load");
            Ok(())
        },
    );
}

#[test]
fn placement_is_a_pure_prediction_of_insert() {
    // placement() must not mutate: two calls then an insert agree.
    let gen = (
        u64s(0..=u64::MAX),
        u64s(1..=32),
        rules(),
        vecs(u64s(0..=999), 1..=100),
    );
    check(
        "placement_is_a_pure_prediction_of_insert",
        &gen,
        |(seed, bins, rule, balls)| {
            let mut g = Game::new(*seed, *bins, *rule);
            for &b in balls {
                if g.contains(b) {
                    continue;
                }
                let p1 = g.placement(b);
                let p2 = g.placement(b);
                ensure_eq!(p1, p2, "placement({b}) is not idempotent");
                ensure_eq!(g.insert(b), p1, "insert({b}) disagrees with placement");
            }
            Ok(())
        },
    );
}

/// Large-geometry sweep, kept out of the default run (`--ignored` CI step):
/// thousands of bins and balls per rule, still bit-compared per op.
#[test]
#[ignore = "large oracle size; run via the dedicated CI step"]
fn game_matches_naive_oracle_at_scale() {
    for rule in [
        Rule::OneChoice,
        Rule::Greedy { d: 2 },
        Rule::Greedy { d: 4 },
        Rule::Iceberg { front_cap: 8 },
    ] {
        let bins = 2048;
        let mut real = Game::new(0xA7C4, bins, rule);
        let mut naive = NaiveGame::new(0xA7C4, bins, rule);
        let mut rng = CounterRng::new(0x5CA1E, 0);
        for i in 0..50_000u64 {
            let ball = rng.next_below(30_000);
            let insert = rng.next_below(3) != 0;
            assert_eq!(
                step(&mut real, ball, insert),
                naive_step(&mut naive, ball, insert),
                "{rule:?} diverged at op {i} (ball {ball}, insert {insert})"
            );
        }
        assert_eq!(real.len(), naive.len(), "{rule:?} ball count");
        assert_eq!(real.max_load(), naive.max_load(), "{rule:?} max load");
    }
}
