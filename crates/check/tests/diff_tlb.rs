//! Differential tests: every TLB organization against the linear-scan
//! fully-associative LRU oracle [`LinearTlb`].
//!
//! The equivalences under test (argued in the oracle's module docs):
//! a `Tlb` with the LRU policy *is* the oracle; a single-set
//! `SetAssocTlb` is fully associative by construction; a `TwoLevelTlb`
//! with mostly-exclusive promote/demote movement holds exactly the
//! `ℓ₁+ℓ₂` most recently used entries, so its hit/miss stream matches an
//! `ℓ₁+ℓ₂`-entry LRU; a `SplitTlb` restricted to one size class is one
//! fully-associative structure.

use atp_check::oracles::LinearTlb;
use atp_check::{bools, check, differential, ensure_eq, u64s, usizes, vecs};
use atp_replacement::PolicyKind;
use atp_tlb::{Level, SetAssocTlb, SplitTlb, Tlb, TwoLevelTlb};
use atp_types::VirtHugePage;

/// Adversary scripts: `(page, invalidate)` ops over a small page universe
/// so residency churns hard against tiny capacities.
fn scripts() -> impl atp_check::Gen<Value = Vec<(u64, bool)>> {
    vecs((u64s(0..=16), bools()), 0..=300)
}

#[test]
fn full_lru_tlb_matches_linear_oracle() {
    let gen = (usizes(1..=8), scripts());
    check("full_lru_tlb_matches_linear_oracle", &gen, |(cap, ops)| {
        let mut sut: Tlb<u64> = Tlb::lru(*cap as u64);
        let mut oracle: LinearTlb<u64> = LinearTlb::new(*cap);
        differential(
            "Tlb::lru",
            "LinearTlb",
            ops.iter().copied(),
            |&(p, inv)| {
                let u = VirtHugePage(p);
                if inv {
                    (sut.invalidate(u), None)
                } else {
                    let hit = sut.access_or_fill(u, || p * 10);
                    (None, Some(hit))
                }
            },
            |&(p, inv)| {
                let u = VirtHugePage(p);
                if inv {
                    (oracle.invalidate(u), None)
                } else {
                    let hit = oracle.access_or_fill(u, || p * 10);
                    (None, Some(hit))
                }
            },
        )?;
        ensure_eq!(sut.len(), oracle.len(), "resident entry count");
        Ok(())
    });
}

#[test]
fn single_set_assoc_tlb_matches_linear_oracle() {
    // One set of `ways` ways: the set index is constant, so per-set LRU is
    // global LRU. Victims must agree entry-for-entry.
    let gen = (usizes(1..=8), u64s(0..=u64::MAX), scripts());
    check(
        "single_set_assoc_tlb_matches_linear_oracle",
        &gen,
        |(ways, seed, ops)| {
            let mut sut: SetAssocTlb<u64> = SetAssocTlb::new(1, *ways, *seed);
            let mut oracle: LinearTlb<u64> = LinearTlb::new(*ways);
            differential(
                "SetAssocTlb(1 set)",
                "LinearTlb",
                ops.iter().copied(),
                |&(p, inv)| {
                    let u = VirtHugePage(p);
                    if inv {
                        (sut.invalidate(u), false, None)
                    } else if sut.lookup(u).is_some() {
                        (None, true, None)
                    } else {
                        (None, false, sut.insert(u, p))
                    }
                },
                |&(p, inv)| {
                    let u = VirtHugePage(p);
                    if inv {
                        (oracle.invalidate(u), false, None)
                    } else if oracle.lookup(u).is_some() {
                        (None, true, None)
                    } else {
                        (None, false, oracle.insert(u, p))
                    }
                },
            )?;
            ensure_eq!(sut.len(), oracle.len(), "resident entry count");
            Ok(())
        },
    );
}

#[test]
fn two_level_tlb_hit_stream_matches_combined_lru() {
    // Mostly-exclusive promote/demote: the hierarchy retains exactly the
    // ℓ₁+ℓ₂ most recently used pages, so hit/miss (and shootdown
    // residency) streams match one big LRU.
    let gen = (u64s(1..=4), u64s(1..=8), scripts());
    check(
        "two_level_tlb_hit_stream_matches_combined_lru",
        &gen,
        |(l1, l2, ops)| {
            let mut sut: TwoLevelTlb<u64> = TwoLevelTlb::new(*l1, *l2, PolicyKind::Lru, 77);
            let mut oracle: LinearTlb<u64> = LinearTlb::new((*l1 + *l2) as usize);
            differential(
                "TwoLevelTlb",
                "LinearTlb(l1+l2)",
                ops.iter().copied(),
                |&(p, inv)| {
                    let u = VirtHugePage(p);
                    if inv {
                        sut.invalidate(u)
                    } else {
                        sut.access(u, || p) != Level::Miss
                    }
                },
                |&(p, inv)| {
                    let u = VirtHugePage(p);
                    if inv {
                        oracle.invalidate(u).is_some()
                    } else {
                        oracle.access_or_fill(u, || p)
                    }
                },
            )?;
            ensure_eq!(sut.len(), oracle.len(), "combined resident count");
            Ok(())
        },
    );
}

#[test]
fn split_tlb_single_class_matches_linear_oracle() {
    // One size class covering every access: the split TLB degenerates to
    // one fully-associative LRU structure.
    let gen = (u64s(1..=8), scripts());
    check(
        "split_tlb_single_class_matches_linear_oracle",
        &gen,
        |(entries, ops)| {
            let mut sut: SplitTlb<u64> = SplitTlb::new(&[(&[1u64], *entries)], PolicyKind::Lru, 5);
            let mut oracle: LinearTlb<u64> = LinearTlb::new(*entries as usize);
            differential(
                "SplitTlb(single class)",
                "LinearTlb",
                ops.iter().copied(),
                |&(p, inv)| {
                    let u = VirtHugePage(p);
                    if inv {
                        (sut.invalidate(u, 1), None)
                    } else if sut.lookup(u, 1).is_some() {
                        (None, Some(true))
                    } else {
                        sut.insert(u, 1, p);
                        (None, Some(false))
                    }
                },
                |&(p, inv)| {
                    let u = VirtHugePage(p);
                    if inv {
                        (oracle.invalidate(u), None)
                    } else {
                        (None, Some(oracle.access_or_fill(u, || p)))
                    }
                },
            )?;
            Ok(())
        },
    );
}

/// Long-trace, larger-capacity sweep for the dedicated `--ignored` CI step.
#[test]
#[ignore = "large oracle size; run via the dedicated CI step"]
fn tlb_organizations_match_linear_oracle_at_scale() {
    use atp_check::CounterRng;
    let mut rng = CounterRng::new(0x71B, 0);
    let ops: Vec<(u64, bool)> = (0..200_000)
        .map(|_| (rng.next_below(3000), rng.next_below(16) == 0))
        .collect();
    let mut full: Tlb<u64> = Tlb::lru(1024);
    let mut two: TwoLevelTlb<u64> = TwoLevelTlb::new(64, 960, PolicyKind::Lru, 9);
    let mut oracle_full: LinearTlb<u64> = LinearTlb::new(1024);
    let mut oracle_two: LinearTlb<u64> = LinearTlb::new(1024);
    for (i, &(p, inv)) in ops.iter().enumerate() {
        let u = VirtHugePage(p);
        if inv {
            assert_eq!(
                full.invalidate(u).is_some(),
                oracle_full.invalidate(u).is_some(),
                "Tlb invalidate diverged at op {i}"
            );
            assert_eq!(
                two.invalidate(u),
                oracle_two.invalidate(u).is_some(),
                "TwoLevelTlb invalidate diverged at op {i}"
            );
        } else {
            assert_eq!(
                full.access_or_fill(u, || p),
                oracle_full.access_or_fill(u, || p),
                "Tlb access diverged at op {i}"
            );
            assert_eq!(
                two.access(u, || p) != Level::Miss,
                oracle_two.access_or_fill(u, || p),
                "TwoLevelTlb access diverged at op {i}"
            );
        }
    }
}
