//! Differential tests pinning `run_batched` to the single-step unbatched
//! oracle across every manager and batch sizes {1, 3, 4096}: batching is a
//! driver-side streaming optimization and must not change any cost, in
//! either the warmup or the measurement phase. Observer stage counters
//! must also agree except for the driver-owned `batches` field.

use atp_check::oracles::{counters_modulo_batches, run_single_step};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::classic::{ClassicConfig, ClassicMm, ClassicStages};
use atp_memmgmt::decoupled::{DecoupledConfig, DecoupledStages};
use atp_memmgmt::{
    DecoupledMm, HybridMm, MemoryManager, PagingOnlyMm, Pipeline, Recorder, SparseConfig,
    SparseDecoupledMm, ThpConfig, ThpMm, VirtualOnlyMm,
};
use atp_replacement::PolicyKind;
use atp_sim::run_batched;
use atp_types::VirtPage;
use atp_workloads::Zipfian;

const PHYS: u64 = 1 << 10;
const TLB: u64 = 64;
const WARMUP: u64 = 2000;
const MEASURE: u64 = 3000;

fn trace() -> Vec<VirtPage> {
    Zipfian::new(42, 1 << 12, 1.1).take(6000).collect()
}

fn decoupled_cfg(params: &IcebergParams, seed: u64) -> DecoupledConfig {
    DecoupledConfig {
        tlb_value_bits: 64,
        tlb_entries: TLB,
        tlb_policy: PolicyKind::Lru,
        resident_pages: params.max_resident,
        ram_policy: PolicyKind::Lru,
        seed,
    }
}

/// Fresh instances of all seven managers; a factory because the
/// differential needs two identically-constructed copies per comparison.
fn managers() -> Vec<Box<dyn MemoryManager>> {
    let params = IcebergParams::derive(PHYS);
    vec![
        Box::new(ClassicMm::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: PolicyKind::Lru,
            ram_policy: PolicyKind::Lru,
            seed: 11,
        })),
        Box::new(VirtualOnlyMm::new(8, TLB, PolicyKind::Lru, 11)),
        Box::new(PagingOnlyMm::new(PHYS, PolicyKind::Lru, 11)),
        Box::new(DecoupledMm::new(
            IcebergAlloc::new(&params, 11),
            decoupled_cfg(&params, 11),
        )),
        Box::new(HybridMm::new(
            IcebergAlloc::new(&params, 13),
            decoupled_cfg(&params, 13),
            4,
        )),
        Box::new(SparseDecoupledMm::new(
            IcebergAlloc::new(&params, 17),
            SparseConfig {
                tlb_value_bits: 64,
                coverage: 64,
                tlb_entries: TLB,
                tlb_policy: PolicyKind::Lru,
                resident_pages: params.max_resident,
                ram_policy: PolicyKind::Lru,
                seed: 17,
            },
        )),
        Box::new(ThpMm::new(ThpConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            policy: PolicyKind::Lru,
            seed: 19,
        })),
    ]
}

#[test]
fn batched_costs_match_single_step_for_every_manager() {
    let trace = trace();
    let n_managers = managers().len();
    assert_eq!(n_managers, 7, "every manager family must be covered");
    for batch in [1usize, 3, 4096] {
        for slot in 0..n_managers {
            let mut batched = managers().remove(slot);
            let mut oracle = managers().remove(slot);
            let name = batched.name();
            let stats = run_batched(
                batched.as_mut(),
                trace.iter().copied(),
                WARMUP,
                MEASURE,
                batch,
            );
            let (warmup_costs, costs) =
                run_single_step(oracle.as_mut(), trace.iter().copied(), WARMUP, MEASURE);
            assert_eq!(
                stats.warmup_costs, warmup_costs,
                "{name}: warmup costs diverged at batch size {batch}"
            );
            assert_eq!(
                stats.costs, costs,
                "{name}: measured costs diverged at batch size {batch}"
            );
        }
    }
}

#[test]
fn observer_counters_match_single_step_modulo_batches() {
    // The recorder sees identical per-stage event streams regardless of
    // chunking; only the driver-owned `batches` count may differ.
    let trace = trace();
    let cfg = || ClassicConfig {
        huge_pages: 8,
        phys_pages: PHYS,
        tlb_entries: TLB,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 11,
    };
    let mut oracle = Pipeline::with_observer(ClassicStages::new(cfg()), Recorder::new());
    run_single_step(&mut oracle, trace.iter().copied(), WARMUP, MEASURE);
    let oracle_counters = counters_modulo_batches(oracle.observer().counters());
    assert_eq!(
        oracle_counters.batches, 0,
        "single-step driver never announces batches"
    );
    for batch in [1usize, 3, 4096] {
        let mut sut = Pipeline::with_observer(ClassicStages::new(cfg()), Recorder::new());
        run_batched(&mut sut, trace.iter().copied(), WARMUP, MEASURE, batch);
        let counters = sut.observer().counters();
        // batch_boundary announcements: one per chunk in each phase.
        let expected_batches = WARMUP.div_ceil(batch as u64) + MEASURE.div_ceil(batch as u64);
        assert_eq!(
            counters.batches, expected_batches,
            "batch boundary count at batch size {batch}"
        );
        assert_eq!(
            counters_modulo_batches(counters),
            oracle_counters,
            "stage counters diverged at batch size {batch}"
        );
    }
}

#[test]
fn observer_counters_match_on_decoupled_pipeline() {
    // Same invariant through a decode-bearing pipeline (Z), where the
    // translate stage emits decode events the classic pipeline never does.
    let trace = trace();
    let params = IcebergParams::derive(PHYS);
    let fresh = || {
        Pipeline::with_observer(
            DecoupledStages::new(IcebergAlloc::new(&params, 11), decoupled_cfg(&params, 11)),
            Recorder::new(),
        )
    };
    let mut oracle = fresh();
    run_single_step(&mut oracle, trace.iter().copied(), WARMUP, MEASURE);
    for batch in [1usize, 3, 4096] {
        let mut sut = fresh();
        run_batched(&mut sut, trace.iter().copied(), WARMUP, MEASURE, batch);
        assert_eq!(
            counters_modulo_batches(sut.observer().counters()),
            counters_modulo_batches(oracle.observer().counters()),
            "decoupled stage counters diverged at batch size {batch}"
        );
    }
}

#[test]
fn exhausted_trace_emits_no_trailing_empty_boundary() {
    // Boundary emission must be exact: when the trace runs out on a
    // chunk edge, the driver's final (empty) pull must not announce a
    // phantom zero-length batch. Pinned here so the batched access_batch
    // refactor — and any future one — keeps the emission contract.
    let cfg = || ClassicConfig {
        huge_pages: 1,
        phys_pages: PHYS,
        tlb_entries: TLB,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 11,
    };
    for (trace_len, batch, expected) in [
        (12usize, 4usize, 3u64), // exact multiple: 4+4+4, no empty 4th pull
        (12, 5, 3),              // ragged tail: 5+5+2
        (12, 12, 1),             // single exact chunk
        (12, 4096, 1),           // one partial chunk
        (0, 4, 0),               // empty trace: no boundary at all
    ] {
        let mut m = Pipeline::with_observer(ClassicStages::new(cfg()), Recorder::new());
        let trace: Vec<VirtPage> = Zipfian::new(7, 1 << 10, 1.1).take(trace_len).collect();
        // measure >> trace so exhaustion, not the budget, ends the run.
        run_batched(&mut m, trace, 0, 1 << 20, batch);
        assert_eq!(
            m.observer().counters().batches,
            expected,
            "boundary count for trace_len={trace_len} batch={batch}"
        );
    }
}

#[test]
fn boundary_count_is_exact_when_the_budget_ends_the_run() {
    // The dual case: the warmup/measure budget (not trace exhaustion)
    // stops the driver, with the budget landing both on and off chunk
    // edges.
    let cfg = || ClassicConfig {
        huge_pages: 1,
        phys_pages: PHYS,
        tlb_entries: TLB,
        tlb_policy: PolicyKind::Lru,
        ram_policy: PolicyKind::Lru,
        seed: 11,
    };
    for (warmup, measure, batch) in [(8u64, 16u64, 4usize), (7, 9, 4), (0, 10, 3), (5, 0, 2)] {
        let mut m = Pipeline::with_observer(ClassicStages::new(cfg()), Recorder::new());
        let trace = Zipfian::new(9, 1 << 10, 1.1).take((warmup + measure) as usize * 2);
        run_batched(&mut m, trace, warmup, measure, batch);
        let expected = warmup.div_ceil(batch as u64) + measure.div_ceil(batch as u64);
        assert_eq!(
            m.observer().counters().batches,
            expected,
            "boundary count for warmup={warmup} measure={measure} batch={batch}"
        );
    }
}

#[test]
fn short_trace_early_stop_is_batch_invariant() {
    // Traces shorter than warmup+measure stop early; the early-stop point
    // must not depend on chunking.
    let short: Vec<VirtPage> = trace().into_iter().take(700).collect();
    for batch in [1usize, 3, 4096] {
        let mut batched = ClassicMm::new(ClassicConfig::paper(4, 256));
        let mut oracle = ClassicMm::new(ClassicConfig::paper(4, 256));
        let stats = run_batched(&mut batched, short.iter().copied(), 500, 1000, batch);
        let (w, m) = run_single_step(&mut oracle, short.iter().copied(), 500, 1000);
        assert_eq!(stats.warmup_costs, w, "warmup at batch {batch}");
        assert_eq!(stats.costs, m, "measure at batch {batch}");
        assert_eq!(stats.costs.accesses, 200, "early stop point moved");
    }
}
