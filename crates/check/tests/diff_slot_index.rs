//! Differential for the flat open-addressing `SlotIndex` (the probe core
//! under `CacheSim` and `BatchTlb`): against a `std` HashMap oracle over
//! generated insert/remove/lookup/touch churn, membership and key→slot
//! resolution must agree after every op — including through the
//! backward-shift deletions that keep probe chains compact.

use std::collections::HashMap;

use atp_check::{check, ensure, ensure_eq, from_fn, vecs, CounterRng, Gen};
use atp_hash::flat::{fx_hash, SlotIndex};

const CAPACITY: usize = 24;
/// Key span ~2× capacity so inserts regularly collide with residents.
const SPAN: u64 = 48;

/// One churn op; the index under test maps keys to the slots the arena
/// model assigns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    /// Insert the key if absent (and capacity remains).
    Insert(u64),
    /// Remove the key if present.
    Remove(u64),
    /// Probe the key (must agree with the oracle either way).
    Lookup(u64),
    /// Prefetch the key's bucket — must be semantically inert.
    Touch(u64),
}

fn ops_gen() -> impl Gen<Value = Vec<Op>> {
    let op = from_fn(
        |rng: &mut CounterRng| {
            let k = rng.next_below(SPAN);
            match rng.next_below(8) {
                0..=2 => Op::Insert(k),
                3 | 4 => Op::Remove(k),
                5 | 6 => Op::Lookup(k),
                _ => Op::Touch(k),
            }
        },
        |op: &Op| {
            let (ctor, k): (fn(u64) -> Op, u64) = match *op {
                Op::Insert(k) => (Op::Insert, k),
                Op::Remove(k) => (Op::Remove, k),
                Op::Lookup(k) => (Op::Lookup, k),
                Op::Touch(k) => (Op::Touch, k),
            };
            let mut out = Vec::new();
            if !matches!(op, Op::Lookup(0)) {
                out.push(Op::Lookup(0));
            }
            if k > 0 {
                out.push(ctor(0));
                out.push(ctor(k / 2));
            }
            out
        },
    );
    vecs(op, 0..=500)
}

#[test]
fn slot_index_matches_a_hashmap_oracle_under_churn() {
    check(
        "slot_index_matches_a_hashmap_oracle_under_churn",
        &ops_gen(),
        |ops| {
            let mut index = SlotIndex::with_capacity(CAPACITY);
            // Slot arena mirroring how CacheSim/BatchTlb use the index:
            // the arena owns the keys, the index only resolves hashes.
            let mut arena: Vec<u64> = Vec::new();
            let mut free: Vec<u32> = Vec::new();
            let mut oracle: HashMap<u64, u32> = HashMap::new();
            let probe = |index: &SlotIndex, arena: &[u64], k: u64| -> Option<u32> {
                index.get(fx_hash(&k), |s| arena[s as usize] == k)
            };
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Insert(k) => {
                        if oracle.contains_key(&k) || oracle.len() == CAPACITY {
                            continue;
                        }
                        let slot = free.pop().unwrap_or(arena.len() as u32);
                        if slot as usize == arena.len() {
                            arena.push(k);
                        } else {
                            arena[slot as usize] = k;
                        }
                        index.insert(fx_hash(&k), slot);
                        oracle.insert(k, slot);
                    }
                    Op::Remove(k) => {
                        let got = index.remove(fx_hash(&k), |s| arena[s as usize] == k);
                        let want = oracle.remove(&k);
                        ensure_eq!(got, want, "step {i}: remove({k}) diverged");
                        if let Some(slot) = got {
                            free.push(slot);
                        }
                    }
                    Op::Lookup(k) => {
                        ensure_eq!(
                            probe(&index, &arena, k),
                            oracle.get(&k).copied(),
                            "step {i}: lookup({k}) diverged"
                        );
                    }
                    Op::Touch(k) => index.touch(fx_hash(&k)),
                }
                ensure_eq!(index.len(), oracle.len(), "step {i}: len diverged");
            }
            // Closing sweep over the whole key space: every resident key
            // resolves to its slot, every absent key misses — the
            // backward-shift deletes left no unreachable or phantom keys.
            for k in 0..SPAN {
                ensure_eq!(
                    probe(&index, &arena, k),
                    oracle.get(&k).copied(),
                    "final sweep: key {k}"
                );
            }
            ensure!(
                index.iter().count() == oracle.len(),
                "iter() count disagrees with oracle size"
            );
            Ok(())
        },
    );
}
