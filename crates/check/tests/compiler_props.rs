//! Property tests for the trace-compiler memo (`atp_sim::TraceCompiler`):
//! under seeded churn scripts of accesses, maps, unmaps, shootdowns, and
//! flushes, the memoized walk paths must (a) never serve a stale
//! translation — every resolve agrees with a `MapPageTable` mirror of
//! the true mapping state — and (b) track an exact FIFO-window model of
//! which pages are memoized. A tenant-stream case (`TenantOp`) pins ASID
//! isolation, `flush_asid`, and retirement.

use std::collections::VecDeque;

use atp_check::oracles::MapPageTable;
use atp_check::{check, ensure, ensure_eq, from_fn, vecs, CounterRng, Gen};
use atp_pagetable::{PageTable, RadixPageTable};
use atp_sim::{TenantCompiler, TraceCompiler};
use atp_types::{Asid, PhysPage, TenantOp, VirtPage};

/// Small spaces keep collision pressure high: 32 virtual pages churned
/// through an 8-entry memo window.
const PAGES: u64 = 32;
const WINDOW: usize = 8;

/// One churn step against a compiled page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    /// Resolve a translation (the hot path the memo accelerates).
    Access(u64),
    /// Map or remap `v → p` through the compiler.
    Map(u64, u64),
    /// Unmap `v` through the compiler.
    Unmap(u64),
    /// Out-of-band invalidation of `v` (remote shootdown).
    Shootdown(u64),
    /// Drop every memoized path.
    Flush,
}

/// Access-heavy op mix; shrinks every op toward `Access(0)`.
fn ops_gen() -> impl Gen<Value = Vec<Op>> {
    let op = from_fn(
        |rng: &mut CounterRng| {
            let v = rng.next_below(PAGES);
            match rng.next_below(16) {
                0..=9 => Op::Access(v),
                10 | 11 => Op::Map(v, rng.next_below(1 << 20)),
                12 => Op::Unmap(v),
                13 => Op::Shootdown(v),
                _ => Op::Flush,
            }
        },
        |op: &Op| match *op {
            Op::Access(0) => Vec::new(),
            Op::Access(v) => vec![Op::Access(0), Op::Access(v / 2)],
            Op::Map(v, p) => vec![Op::Access(v), Op::Map(v / 2, p), Op::Map(v, p / 2)],
            Op::Unmap(v) => vec![Op::Access(v), Op::Unmap(v / 2)],
            Op::Shootdown(v) => vec![Op::Access(v), Op::Shootdown(v / 2)],
            Op::Flush => vec![Op::Access(0)],
        },
    );
    vecs(op, 0..=300)
}

#[test]
fn memo_never_serves_a_stale_translation() {
    check("memo_never_serves_a_stale_translation", &ops_gen(), |ops| {
        let mut c = TraceCompiler::new(RadixPageTable::new(), WINDOW);
        let mut truth = MapPageTable::new();
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Access(v) => {
                    let got = c.resolve(VirtPage(v)).phys;
                    let want = truth.translate(VirtPage(v)).0;
                    ensure_eq!(got, want, "step {i}: resolve({v}) diverged");
                }
                Op::Map(v, p) => {
                    c.map(VirtPage(v), PhysPage(p));
                    truth.map(VirtPage(v), PhysPage(p));
                    // A remap must be visible immediately, even if v was
                    // memoized a moment ago.
                    ensure_eq!(
                        c.resolve(VirtPage(v)).phys,
                        Some(PhysPage(p)),
                        "step {i}: remap of {v} not visible"
                    );
                }
                Op::Unmap(v) => {
                    let (got, _) = c.unmap(VirtPage(v));
                    let (want, _) = truth.unmap(VirtPage(v));
                    ensure_eq!(got, want, "step {i}: unmap({v}) diverged");
                    ensure_eq!(
                        c.resolve(VirtPage(v)).phys,
                        None,
                        "step {i}: stale path survived unmap of {v}"
                    );
                }
                Op::Shootdown(v) => c.shootdown(VirtPage(v)),
                Op::Flush => c.flush(),
            }
            ensure_eq!(
                c.table().mapped(),
                truth.mapped(),
                "step {i}: mapped-page counts diverged"
            );
        }
        Ok(())
    });
}

#[test]
fn memo_membership_follows_the_fifo_window_model() {
    // Mirror of the memo's residency discipline: resolves of absent
    // pages enter a FIFO bounded to WINDOW (memo hits do not refresh
    // position); map/unmap/shootdown evict the page; flush clears.
    check(
        "memo_membership_follows_the_fifo_window_model",
        &ops_gen(),
        |ops| {
            let mut c = TraceCompiler::new(RadixPageTable::new(), WINDOW);
            let mut fifo: VecDeque<u64> = VecDeque::new();
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Access(v) => {
                        c.resolve(VirtPage(v));
                        if !fifo.contains(&v) {
                            if fifo.len() == WINDOW {
                                fifo.pop_front();
                            }
                            fifo.push_back(v);
                        }
                    }
                    Op::Map(v, p) => {
                        c.map(VirtPage(v), PhysPage(p));
                        fifo.retain(|&q| q != v);
                    }
                    Op::Unmap(v) => {
                        c.unmap(VirtPage(v));
                        fifo.retain(|&q| q != v);
                    }
                    Op::Shootdown(v) => {
                        c.shootdown(VirtPage(v));
                        fifo.retain(|&q| q != v);
                    }
                    Op::Flush => {
                        c.flush();
                        fifo.clear();
                    }
                }
                ensure_eq!(c.memoized(), fifo.len(), "step {i}: memo size diverged");
                ensure!(c.memoized() <= WINDOW, "step {i}: memo exceeded its window");
                for &v in &fifo {
                    ensure!(
                        c.is_memoized(VirtPage(v)),
                        "step {i}: model says {v} is memoized, compiler disagrees"
                    );
                }
            }
            Ok(())
        },
    );
}

/// One step of a multi-tenant churn script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TenantStep {
    /// A v2 trace op: switch, access, or retire.
    Trace(TenantOp),
    /// Map `v → p` in the current tenant's space.
    Map(u64, u64),
    /// Drop the current tenant's memo, keeping its table.
    FlushAsid,
}

const TENANTS: u32 = 3;

fn tenant_gen() -> impl Gen<Value = Vec<TenantStep>> {
    let step = from_fn(
        |rng: &mut CounterRng| {
            let v = rng.next_below(PAGES);
            match rng.next_below(16) {
                0..=8 => TenantStep::Trace(TenantOp::Access(VirtPage(v))),
                9 | 10 => TenantStep::Trace(TenantOp::Switch(Asid(
                    rng.next_below(TENANTS as u64) as u32
                ))),
                11 => TenantStep::Trace(TenantOp::Retire(Asid(
                    rng.next_below(TENANTS as u64) as u32
                ))),
                12..=14 => TenantStep::Map(v, rng.next_below(1 << 20)),
                _ => TenantStep::FlushAsid,
            }
        },
        |s: &TenantStep| match *s {
            TenantStep::Trace(TenantOp::Access(VirtPage(0))) => Vec::new(),
            TenantStep::Trace(TenantOp::Access(VirtPage(v))) => vec![
                TenantStep::Trace(TenantOp::Access(VirtPage(0))),
                TenantStep::Trace(TenantOp::Access(VirtPage(v / 2))),
            ],
            _ => vec![TenantStep::Trace(TenantOp::Access(VirtPage(0)))],
        },
    );
    vecs(step, 0..=300)
}

#[test]
fn tenant_compilers_isolate_address_spaces() {
    check(
        "tenant_compilers_isolate_address_spaces",
        &tenant_gen(),
        |steps| {
            let mut tc: TenantCompiler<RadixPageTable> = TenantCompiler::new(WINDOW);
            let mut truth: Vec<MapPageTable> = (0..TENANTS).map(|_| MapPageTable::new()).collect();
            let mut current = Asid(0);
            for (i, &step) in steps.iter().enumerate() {
                match step {
                    TenantStep::Trace(TenantOp::Switch(a)) => current = a,
                    TenantStep::Trace(TenantOp::Access(v)) => {
                        let got = tc.resolve(current, v).phys;
                        let want = truth[current.0 as usize].translate(v).0;
                        ensure_eq!(
                            got,
                            want,
                            "step {i}: asid {} resolve({}) diverged",
                            current.0,
                            v.0
                        );
                    }
                    TenantStep::Trace(TenantOp::Retire(a)) => {
                        tc.retire(a);
                        truth[a.0 as usize] = MapPageTable::new();
                    }
                    TenantStep::Map(v, p) => {
                        tc.space(current).map(VirtPage(v), PhysPage(p));
                        truth[current.0 as usize].map(VirtPage(v), PhysPage(p));
                    }
                    TenantStep::FlushAsid => {
                        tc.flush_asid(current);
                        if let Some(space) = tc.peek(current) {
                            ensure_eq!(
                                space.memoized(),
                                0,
                                "step {i}: flush_asid left memo entries"
                            );
                        }
                    }
                }
            }
            // Final sweep: every tenant's every page agrees with its own
            // mirror — no cross-tenant leakage through the shared window
            // parameter.
            for a in 0..TENANTS {
                for v in 0..PAGES {
                    ensure_eq!(
                        tc.resolve(Asid(a), VirtPage(v)).phys,
                        truth[a as usize].translate(VirtPage(v)).0,
                        "final sweep: asid {a} page {v}"
                    );
                }
            }
            Ok(())
        },
    );
}
