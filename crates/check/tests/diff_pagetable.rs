//! Differential tests: every page-table substrate against the flat
//! `HashMap` oracle [`MapPageTable`]. Translation *results* must agree
//! everywhere; walk *costs* are substrate-specific and excluded.

use atp_check::oracles::MapPageTable;
use atp_check::{check, differential, ensure_eq, from_fn, u64s, vecs, CounterRng, Gen};
use atp_pagetable::{CachedWalker, HashPageTable, NestedTranslation, PageTable, RadixPageTable};
use atp_types::{PhysPage, VirtPage};

/// One page-table op over a small address universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Map(u64, u64),
    Translate(u64),
    Unmap(u64),
}

/// Generates op scripts; shrinking drops ops (via the vec combinator) and
/// simplifies each op toward `Translate(0)`.
fn scripts() -> impl Gen<Value = Vec<Op>> {
    let op = from_fn(
        |rng: &mut CounterRng| {
            let v = rng.next_below(64);
            match rng.next_below(4) {
                0 | 1 => Op::Map(v, rng.next_below(1 << 20)),
                2 => Op::Translate(v),
                _ => Op::Unmap(v),
            }
        },
        |op: &Op| match *op {
            Op::Translate(0) => vec![],
            Op::Translate(v) => vec![Op::Translate(v / 2)],
            Op::Map(v, p) => vec![Op::Translate(v), Op::Map(v / 2, p), Op::Map(v, p / 2)],
            Op::Unmap(v) => vec![Op::Translate(v), Op::Unmap(v / 2)],
        },
    );
    vecs(op, 0..=150)
}

/// Applies one op, returning the translation-relevant outcome only (walk
/// stats deliberately dropped).
fn apply<T: PageTable>(t: &mut T, op: Op) -> Option<PhysPage> {
    match op {
        Op::Map(v, p) => {
            t.map(VirtPage(v), PhysPage(p));
            None
        }
        Op::Translate(v) => t.translate(VirtPage(v)).0,
        Op::Unmap(v) => t.unmap(VirtPage(v)).0,
    }
}

#[test]
fn radix_table_matches_flat_map_oracle() {
    check("radix_table_matches_flat_map_oracle", &scripts(), |ops| {
        let mut sut = RadixPageTable::new();
        let mut oracle = MapPageTable::new();
        differential(
            "RadixPageTable",
            "MapPageTable",
            ops.iter().copied(),
            |&op| apply(&mut sut, op),
            |&op| apply(&mut oracle, op),
        )?;
        ensure_eq!(sut.mapped(), oracle.mapped(), "mapped page count");
        Ok(())
    });
}

#[test]
fn hash_table_matches_flat_map_oracle() {
    let gen = (u64s(0..=u64::MAX), scripts());
    check("hash_table_matches_flat_map_oracle", &gen, |(seed, ops)| {
        // Tiny expected size forces rehashing mid-script.
        let mut sut = HashPageTable::new(*seed, 4);
        let mut oracle = MapPageTable::new();
        differential(
            "HashPageTable",
            "MapPageTable",
            ops.iter().copied(),
            |&op| apply(&mut sut, op),
            |&op| apply(&mut oracle, op),
        )?;
        ensure_eq!(sut.mapped(), oracle.mapped(), "mapped page count");
        Ok(())
    });
}

#[test]
fn cached_walker_matches_flat_map_oracle() {
    // The walk cache accelerates translation but must never change its
    // result; unmaps are followed by a flush, as an OS would do alongside
    // a TLB shootdown.
    check("cached_walker_matches_flat_map_oracle", &scripts(), |ops| {
        let mut sut = CachedWalker::new(RadixPageTable::new(), 4);
        let mut oracle = MapPageTable::new();
        differential(
            "CachedWalker<RadixPageTable>",
            "MapPageTable",
            ops.iter().copied(),
            |&op| match op {
                Op::Map(v, p) => {
                    sut.table_mut().map(VirtPage(v), PhysPage(p));
                    None
                }
                Op::Translate(v) => sut.translate(VirtPage(v)).0,
                Op::Unmap(v) => {
                    let r = sut.table_mut().unmap(VirtPage(v)).0;
                    sut.flush();
                    r
                }
            },
            |&op| apply(&mut oracle, op),
        )?;
        Ok(())
    });
}

#[test]
fn nested_translation_matches_composed_flat_maps() {
    // A 2D walk resolves to host(guest(v)); the oracle composes two flat
    // maps by hand. Guest-physical ids are offset so host mappings for
    // table nodes never alias data mappings.
    let gen = vecs((u64s(0..=63), u64s(0..=63)), 0..=100);
    check(
        "nested_translation_matches_composed_flat_maps",
        &gen,
        |pairs| {
            let mut guest = RadixPageTable::new();
            let mut host = RadixPageTable::new();
            let mut oracle_guest = MapPageTable::new();
            let mut oracle_host = MapPageTable::new();
            for &(v, gp) in pairs {
                let gpa = gp + 1000;
                guest.map(VirtPage(v), PhysPage(gpa));
                oracle_guest.map(VirtPage(v), PhysPage(gpa));
                host.map(VirtPage(gpa), PhysPage(gpa + 1000));
                oracle_host.map(VirtPage(gpa), PhysPage(gpa + 1000));
            }
            let nested = NestedTranslation::new(guest, host);
            differential(
                "NestedTranslation",
                "compose(host, guest)",
                0..=127u64,
                |&v| nested.translate(VirtPage(v)).0,
                |&v| {
                    let gpa = oracle_guest.translate(VirtPage(v)).0?;
                    oracle_host.translate(VirtPage(gpa.0)).0
                },
            )?;
            Ok(())
        },
    );
}

/// Hundreds of thousands of mappings per substrate, for the dedicated
/// `--ignored` CI step.
#[test]
#[ignore = "large oracle size; run via the dedicated CI step"]
fn page_tables_match_flat_map_oracle_at_scale() {
    let mut rng = CounterRng::new(0x9A6E, 0);
    let mut radix = RadixPageTable::new();
    let mut hash = HashPageTable::new(3, 8);
    let mut oracle = MapPageTable::new();
    for i in 0..300_000u64 {
        let v = rng.next_below(1 << 22);
        match rng.next_below(4) {
            0 | 1 => {
                let p = rng.next_below(1 << 30);
                radix.map(VirtPage(v), PhysPage(p));
                hash.map(VirtPage(v), PhysPage(p));
                oracle.map(VirtPage(v), PhysPage(p));
            }
            2 => {
                let want = oracle.translate(VirtPage(v)).0;
                assert_eq!(radix.translate(VirtPage(v)).0, want, "radix at op {i}");
                assert_eq!(hash.translate(VirtPage(v)).0, want, "hash at op {i}");
            }
            _ => {
                let want = oracle.unmap(VirtPage(v)).0;
                assert_eq!(radix.unmap(VirtPage(v)).0, want, "radix unmap at op {i}");
                assert_eq!(hash.unmap(VirtPage(v)).0, want, "hash unmap at op {i}");
            }
        }
    }
    assert_eq!(radix.mapped(), oracle.mapped());
    assert_eq!(hash.mapped(), oracle.mapped());
}
