//! Meta-tests of the harness itself.
//!
//! 1. **Injected-failure shrinking** (the crate's acceptance bar): enable
//!    the deliberately wrong Greedy\[d\] tie-break hidden behind
//!    `Game::inject_greedy_tie_break_bug`, let the differential oracle
//!    catch it, and require the shrinker to minimize the adversary script
//!    to at most 8 accesses.
//! 2. **Failure reporting**: every failing property panics with the
//!    minimal counterexample and a copy-pasteable
//!    `ATP_CHECK_SEED=<seed> cargo test <property>` replay command.

use atp_ballsbins::{Game, Rule};
use atp_check::oracles::NaiveGame;
use atp_check::{check, check_result, differential, ensure, u64s, vecs, Config};

/// Runs a ball script through a tie-break-buggy `Game` and the correct
/// oracle, failing on the first diverging placement.
fn buggy_game_property(seed: u64, balls: &[u64]) -> Result<(), String> {
    let rule = Rule::Greedy { d: 2 };
    let mut sut = Game::new(seed, 8, rule);
    sut.inject_greedy_tie_break_bug(true);
    let mut oracle = NaiveGame::new(seed, 8, rule);
    differential(
        "Game(buggy tie-break)",
        "NaiveGame",
        balls.iter().copied(),
        |&b| {
            if sut.contains(b) {
                None
            } else {
                Some(sut.insert(b))
            }
        },
        |&b| {
            if oracle.contains(b) {
                None
            } else {
                Some(oracle.insert(b))
            }
        },
    )?;
    Ok(())
}

#[test]
fn injected_tie_break_bug_shrinks_to_a_tiny_counterexample() {
    let gen = (u64s(0..=u64::MAX), vecs(u64s(0..=63), 0..=400));
    let cfg = Config::for_property("injected_tie_break_bug_shrinks_to_a_tiny_counterexample");
    let failure = check_result(
        "injected_tie_break_bug_shrinks_to_a_tiny_counterexample",
        &gen,
        &cfg,
        |(seed, balls)| buggy_game_property(*seed, balls),
    )
    .expect_err("the injected tie-break bug must be caught by the oracle");
    let (seed, minimal_balls) = &failure.minimal;
    assert!(
        minimal_balls.len() <= 8,
        "shrinker left {} accesses (want ≤ 8): {minimal_balls:?}",
        minimal_balls.len()
    );
    // The minimal script must still reproduce the divergence.
    assert!(
        buggy_game_property(*seed, minimal_balls).is_err(),
        "minimal counterexample does not reproduce"
    );
    // And the divergence really is the injected bug: with the flag off,
    // the same script passes.
    let mut clean = Game::new(*seed, 8, Rule::Greedy { d: 2 });
    let mut oracle = NaiveGame::new(*seed, 8, Rule::Greedy { d: 2 });
    for &b in minimal_balls {
        if !clean.contains(b) {
            assert_eq!(clean.insert(b), oracle.insert(b), "clean Game must agree");
        }
    }
}

#[test]
fn sanity_clean_game_passes_the_same_property() {
    // The detector from the acceptance test reports nothing when the bug
    // flag is off — i.e. it detects the bug, not some unrelated mismatch.
    let gen = (u64s(0..=u64::MAX), vecs(u64s(0..=63), 0..=400));
    check(
        "sanity_clean_game_passes_the_same_property",
        &gen,
        |(seed, balls)| {
            let rule = Rule::Greedy { d: 2 };
            let mut sut = Game::new(*seed, 8, rule);
            let mut oracle = NaiveGame::new(*seed, 8, rule);
            for &b in balls.iter() {
                if sut.contains(b) {
                    continue;
                }
                let (s, o) = (sut.insert(b), oracle.insert(b));
                ensure!(s == o, "clean Game diverged on ball {b}: {s:?} vs {o:?}");
            }
            Ok(())
        },
    );
}

#[test]
fn failing_check_panics_with_counterexample_and_replay_command() {
    let result = std::panic::catch_unwind(|| {
        check(
            "failing_check_panics_with_counterexample_and_replay_command",
            &vecs(u64s(0..=100), 0..=50),
            |v: &Vec<u64>| {
                ensure!(v.len() < 3, "vector too long: {} elements", v.len());
                Ok(())
            },
        )
    });
    let payload = result.expect_err("the property must fail");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(
        msg.contains("minimal counterexample"),
        "report lacks the minimal counterexample: {msg}"
    );
    assert!(
        msg.contains("ATP_CHECK_SEED="),
        "report lacks the replay seed: {msg}"
    );
    assert!(
        msg.contains("cargo test failing_check_panics_with_counterexample_and_replay_command"),
        "report lacks the replay command: {msg}"
    );
    // The boundary case shrinks to exactly 3 elements.
    assert!(msg.contains("3 elements"), "shrinking stopped early: {msg}");
}
