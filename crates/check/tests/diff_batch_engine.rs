//! Differential suite for the batched software-pipelined engine: over
//! generated traces, `run_batched` (which routes every chunk through
//! `MemoryManager::access_batch` and the `Stages::prepare_batch`
//! prefetch hook) must be bit-for-bit equal to the single-step oracle —
//! same `Costs`, same observer stage counters modulo the driver-owned
//! `batches` field — for all seven managers × all four policies × batch
//! sizes {1, 8, 13, 4096}. On divergence the harness shrinks to a
//! minimal diverging trace and prints a replay seed.

use atp_check::oracles::{counters_modulo_batches, run_single_step};
use atp_check::{check_config, ensure_eq, u64s, vecs, Config, Gen};
use atp_core::{IcebergAlloc, IcebergParams};
use atp_memmgmt::classic::{ClassicConfig, ClassicMm, ClassicStages};
use atp_memmgmt::decoupled::DecoupledConfig;
use atp_memmgmt::{
    DecoupledMm, HybridMm, MemoryManager, PagingOnlyMm, Pipeline, Recorder, SparseConfig,
    SparseDecoupledMm, ThpConfig, ThpMm, VirtualOnlyMm,
};
use atp_replacement::PolicyKind;
use atp_sim::run_batched;
use atp_types::VirtPage;

const PHYS: u64 = 1 << 8;
const TLB: u64 = 16;
const BATCHES: [usize; 4] = [1, 8, 13, 4096];
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Lru,
    PolicyKind::Fifo,
    PolicyKind::Clock,
    PolicyKind::Sieve,
];

/// Fresh instances of all seven manager families under one policy kind.
fn managers(policy: PolicyKind) -> Vec<Box<dyn MemoryManager>> {
    let params = IcebergParams::derive(PHYS);
    let decoupled_cfg = |seed: u64| DecoupledConfig {
        tlb_value_bits: 64,
        tlb_entries: TLB,
        tlb_policy: policy,
        resident_pages: params.max_resident,
        ram_policy: policy,
        seed,
    };
    vec![
        Box::new(ClassicMm::new(ClassicConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: policy,
            ram_policy: policy,
            seed: 11,
        })),
        Box::new(VirtualOnlyMm::new(8, TLB, policy, 11)),
        Box::new(PagingOnlyMm::new(PHYS, policy, 11)),
        Box::new(DecoupledMm::new(
            IcebergAlloc::new(&params, 11),
            decoupled_cfg(11),
        )),
        Box::new(HybridMm::new(
            IcebergAlloc::new(&params, 13),
            decoupled_cfg(13),
            4,
        )),
        Box::new(SparseDecoupledMm::new(
            IcebergAlloc::new(&params, 17),
            SparseConfig {
                tlb_value_bits: 64,
                coverage: 64,
                tlb_entries: TLB,
                tlb_policy: policy,
                resident_pages: params.max_resident,
                ram_policy: policy,
                seed: 17,
            },
        )),
        Box::new(ThpMm::new(ThpConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            policy,
            seed: 19,
        })),
    ]
}

/// Generated traces: page ids over a space 16× physical memory, so every
/// manager sees a healthy mix of hits, capacity misses, and (for the
/// decoupled family) paging churn. Shrinks by deleting chunks.
fn trace_gen() -> impl Gen<Value = Vec<u64>> {
    vecs(u64s(0..=(PHYS * 16) - 1), 0..=900)
}

/// One full differential: batched vs single-step for every manager at
/// one (policy, batch) point, over one generated trace.
fn diff_all_managers(pages: &[u64], policy: PolicyKind, batch: usize) -> Result<(), String> {
    let trace: Vec<VirtPage> = pages.iter().map(|&p| VirtPage(p)).collect();
    let warmup = (trace.len() / 3) as u64;
    let measure = trace.len() as u64; // consume the remainder
    let n = managers(policy).len();
    for slot in 0..n {
        let mut batched = managers(policy).remove(slot);
        let mut oracle = managers(policy).remove(slot);
        let name = batched.name();
        let stats = run_batched(
            batched.as_mut(),
            trace.iter().copied(),
            warmup,
            measure,
            batch,
        );
        let (warmup_costs, costs) =
            run_single_step(oracle.as_mut(), trace.iter().copied(), warmup, measure);
        ensure_eq!(
            stats.warmup_costs,
            warmup_costs,
            "{name}: warmup costs diverged ({policy:?}, batch {batch})"
        );
        ensure_eq!(
            stats.costs,
            costs,
            "{name}: measured costs diverged ({policy:?}, batch {batch})"
        );
    }
    Ok(())
}

#[test]
fn batched_engine_matches_single_step_for_every_manager_policy_and_batch() {
    assert_eq!(managers(PolicyKind::Lru).len(), 7, "cover every family");
    for policy in POLICIES {
        for batch in BATCHES {
            let name = format!("diff_batch_engine_{policy:?}_{batch}").to_lowercase();
            let cfg = Config::for_property(&name).with_cases(2);
            check_config(&name, &trace_gen(), &cfg, |pages| {
                diff_all_managers(pages, policy, batch)
            });
        }
    }
}

#[test]
fn observer_counters_match_for_every_policy() {
    // The prepare_batch prefetch hook runs on the classic pipeline's own
    // structures; the recorder must see identical per-stage event
    // streams regardless of chunking, for every policy kind.
    for policy in POLICIES {
        let cfg = || ClassicConfig {
            huge_pages: 8,
            phys_pages: PHYS,
            tlb_entries: TLB,
            tlb_policy: policy,
            ram_policy: policy,
            seed: 11,
        };
        let name = format!("diff_batch_engine_counters_{policy:?}").to_lowercase();
        let run_cfg = Config::for_property(&name).with_cases(2);
        check_config(&name, &trace_gen(), &run_cfg, |pages| {
            let trace: Vec<VirtPage> = pages.iter().map(|&p| VirtPage(p)).collect();
            let warmup = (trace.len() / 3) as u64;
            let measure = trace.len() as u64;
            let mut oracle = Pipeline::with_observer(ClassicStages::new(cfg()), Recorder::new());
            run_single_step(&mut oracle, trace.iter().copied(), warmup, measure);
            let want = counters_modulo_batches(oracle.observer().counters());
            for batch in BATCHES {
                let mut sut = Pipeline::with_observer(ClassicStages::new(cfg()), Recorder::new());
                run_batched(&mut sut, trace.iter().copied(), warmup, measure, batch);
                ensure_eq!(
                    counters_modulo_batches(sut.observer().counters()),
                    want,
                    "stage counters diverged ({policy:?}, batch {batch})"
                );
            }
            Ok(())
        });
    }
}
