//! Differential tests: the fused slot-arena `Tlb`/`CacheSim` against the
//! linear-scan per-policy oracle [`LinearPolicyTlb`], for every policy
//! with a monomorphized fast path (LRU, FIFO, CLOCK, SIEVE).
//!
//! Scripts interleave `access_or_fill`, `invalidate`, and `update` so that
//! slot recycling, policy-metadata cleanup on explicit removal, and (for
//! SIEVE) hand maintenance are all exercised — the places where a fused
//! arena could silently diverge from the textbook policy description.
//! Victims are compared entry-for-entry, not just hit/miss streams.

use atp_check::oracles::{LinearPolicyTlb, RefPolicy};
use atp_check::{check, differential, ensure_eq, u64s, usizes, vecs};
use atp_replacement::{AnyPolicy, Clock, Fifo, Lru, Policy, PolicyBuild, PolicyKind, Sieve};
use atp_tlb::Tlb;
use atp_types::VirtHugePage;

/// Adversary scripts: `(page, op)` with op 0/1 = access, 2 = invalidate,
/// 3 = update — access-heavy so caches actually fill and evict.
fn scripts() -> impl atp_check::Gen<Value = Vec<(u64, u64)>> {
    vecs((u64s(0..=16), u64s(0..=3)), 0..=300)
}

/// Drives a fused `Tlb<u64, P>` and the oracle over one script, comparing
/// every observable: hit/miss, evicted victim entries, invalidated values,
/// update residency, and final entry counts.
fn run_policy_diff<P: Policy>(
    name: &'static str,
    sut: &mut Tlb<u64, P>,
    oracle: &mut LinearPolicyTlb<u64>,
    ops: &[(u64, u64)],
) -> Result<(), String> {
    differential(
        name,
        "LinearPolicyTlb",
        ops.iter().copied(),
        |&(p, op)| {
            let u = VirtHugePage(p);
            match op {
                2 => (sut.invalidate(u), None, None),
                3 => (None, Some(sut.update(u, |v| *v += 1)), None),
                _ => {
                    if sut.lookup(u).is_some() {
                        (None, None, Some(None))
                    } else {
                        (None, None, Some(Some(sut.insert(u, p * 10))))
                    }
                }
            }
        },
        |&(p, op)| {
            let u = VirtHugePage(p);
            match op {
                2 => (oracle.invalidate(u), None, None),
                3 => (None, Some(oracle.update(u, |v| *v += 1)), None),
                _ => {
                    if oracle.lookup(u).is_some() {
                        (None, None, Some(None))
                    } else {
                        (None, None, Some(Some(oracle.insert(u, p * 10))))
                    }
                }
            }
        },
    )?;
    ensure_eq!(sut.len(), oracle.len(), "resident entry count");
    Ok(())
}

fn check_monomorphized<P: Policy + PolicyBuild>(test: &'static str, refp: RefPolicy) {
    let gen = (usizes(1..=8), scripts());
    check(test, &gen, |(cap, ops)| {
        let mut sut: Tlb<u64, P> = Tlb::monomorphic(*cap as u64, 0);
        let mut oracle: LinearPolicyTlb<u64> = LinearPolicyTlb::new(*cap, refp);
        run_policy_diff(test, &mut sut, &mut oracle, ops)
    });
}

#[test]
fn fused_lru_tlb_matches_policy_oracle() {
    check_monomorphized::<Lru>("fused_lru_tlb_matches_policy_oracle", RefPolicy::Lru);
}

#[test]
fn fused_fifo_tlb_matches_policy_oracle() {
    check_monomorphized::<Fifo>("fused_fifo_tlb_matches_policy_oracle", RefPolicy::Fifo);
}

#[test]
fn fused_clock_tlb_matches_policy_oracle() {
    check_monomorphized::<Clock>("fused_clock_tlb_matches_policy_oracle", RefPolicy::Clock);
}

#[test]
fn fused_sieve_tlb_matches_policy_oracle() {
    check_monomorphized::<Sieve>("fused_sieve_tlb_matches_policy_oracle", RefPolicy::Sieve);
}

/// The runtime-dispatched path must be indistinguishable from the
/// monomorphized one: `Tlb<_, AnyPolicy>` against the same oracle.
#[test]
fn any_policy_tlb_matches_policy_oracle() {
    let kinds = [
        (PolicyKind::Lru, RefPolicy::Lru),
        (PolicyKind::Fifo, RefPolicy::Fifo),
        (PolicyKind::Clock, RefPolicy::Clock),
        (PolicyKind::Sieve, RefPolicy::Sieve),
    ];
    let gen = (usizes(1..=8), usizes(0..=3), scripts());
    check(
        "any_policy_tlb_matches_policy_oracle",
        &gen,
        |(cap, ki, ops)| {
            let (kind, refp) = kinds[*ki];
            let mut sut: Tlb<u64, AnyPolicy> = Tlb::new(*cap as u64, kind, 0);
            let mut oracle: LinearPolicyTlb<u64> = LinearPolicyTlb::new(*cap, refp);
            run_policy_diff("Tlb<AnyPolicy>", &mut sut, &mut oracle, ops)
        },
    );
}

/// Long-trace sweep at realistic TLB sizes for the `--ignored` CI step.
#[test]
#[ignore = "large oracle size; run via the dedicated CI step"]
fn fused_policies_match_oracle_at_scale() {
    use atp_check::CounterRng;
    let mut rng = CounterRng::new(0xF05E, 0);
    let ops: Vec<(u64, u64)> = (0..100_000)
        .map(|_| (rng.next_below(2000), rng.next_below(12)))
        .collect();
    fn drive<P: Policy + PolicyBuild>(refp: RefPolicy, ops: &[(u64, u64)]) {
        let mut sut: Tlb<u64, P> = Tlb::monomorphic(1024, 0);
        let mut oracle: LinearPolicyTlb<u64> = LinearPolicyTlb::new(1024, refp);
        for (i, &(p, op)) in ops.iter().enumerate() {
            let u = VirtHugePage(p);
            match op {
                10 => assert_eq!(
                    sut.invalidate(u),
                    oracle.invalidate(u),
                    "{refp:?}: invalidate diverged at op {i}"
                ),
                11 => assert_eq!(
                    sut.update(u, |v| *v ^= 1),
                    oracle.update(u, |v| *v ^= 1),
                    "{refp:?}: update diverged at op {i}"
                ),
                _ => {
                    let sut_hit = sut.lookup(u).is_some();
                    let oracle_hit = oracle.lookup(u).is_some();
                    assert_eq!(sut_hit, oracle_hit, "{refp:?}: hit/miss diverged at op {i}");
                    if !sut_hit {
                        assert_eq!(
                            sut.insert(u, p),
                            oracle.insert(u, p),
                            "{refp:?}: victim diverged at op {i}"
                        );
                    }
                }
            }
        }
        assert_eq!(sut.len(), oracle.len());
    }
    drive::<Lru>(RefPolicy::Lru, &ops);
    drive::<Fifo>(RefPolicy::Fifo, &ops);
    drive::<Clock>(RefPolicy::Clock, &ops);
    drive::<Sieve>(RefPolicy::Sieve, &ops);
}
