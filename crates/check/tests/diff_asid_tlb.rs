//! Differential tests: the ASID-tagged TLB against the tagged
//! linear-scan LRU oracle [`LinearAsidTlb`].
//!
//! The equivalence under test: `AsidTlb` with the LRU policy is one
//! fully-associative LRU cache over `(asid, huge)` keys with a
//! private-then-global probe on lookup, so every hit/miss decision,
//! eviction victim, invalidation result, and `flush_asid` count must
//! match the oracle step for step — across context switches, global
//! (kernel) entries shared by all tenants, and targeted ASID flushes.

use atp_check::oracles::LinearAsidTlb;
use atp_check::{check, differential, ensure_eq, u64s, usizes, vecs, Gen};
use atp_replacement::{AnyPolicy, PolicyKind};
use atp_tlb::AsidTlb;
use atp_types::{Asid, TaggedHugePage, VirtHugePage};

/// Adversary scripts: `(kind, asid, page)` ops over a small tenant pool
/// and page universe so cross-tenant churn hammers tiny capacities.
/// Kinds: 0 invalidate, 1 invalidate-global, 2 flush-asid, 3 fill a
/// global entry (guarded), otherwise access-or-fill.
fn scripts() -> impl Gen<Value = Vec<(u64, u64, u64)>> {
    vecs((u64s(0..=15), u64s(0..=3), u64s(0..=16)), 0..=300)
}

/// One comparable step outcome: `(invalidated value, global-fill victim,
/// hit?, flushed count)`.
type Step = (
    Option<u64>,
    Option<(TaggedHugePage, u64)>,
    Option<bool>,
    u64,
);

#[test]
fn asid_tlb_lru_matches_linear_oracle() {
    let gen = (usizes(1..=8), scripts());
    check("asid_tlb_lru_matches_linear_oracle", &gen, |(cap, ops)| {
        let mut sut: AsidTlb<u64> = AsidTlb::lru(*cap as u64);
        let mut oracle: LinearAsidTlb<u64> = LinearAsidTlb::new(*cap);
        differential(
            "AsidTlb::lru",
            "LinearAsidTlb",
            ops.iter().copied(),
            |&(kind, a, p)| -> Step {
                let (asid, u) = (Asid(a as u32), VirtHugePage(p));
                match kind {
                    0 => (sut.invalidate(asid, u), None, None, 0),
                    1 => (sut.invalidate_global(u), None, None, 0),
                    2 => (None, None, None, sut.flush_asid(asid)),
                    3 if !sut.contains(Asid::GLOBAL, u) => {
                        (None, sut.insert_global(u, p * 100), None, 0)
                    }
                    3 => (None, None, None, 0),
                    _ => (None, None, Some(sut.access_or_fill(asid, u, || p * 10)), 0),
                }
            },
            |&(kind, a, p)| -> Step {
                let (asid, u) = (Asid(a as u32), VirtHugePage(p));
                match kind {
                    0 => (oracle.invalidate(asid, u), None, None, 0),
                    1 => (oracle.invalidate_global(u), None, None, 0),
                    2 => (None, None, None, oracle.flush_asid(asid)),
                    3 if !oracle.contains(Asid::GLOBAL, u) => {
                        (None, oracle.insert_global(u, p * 100), None, 0)
                    }
                    3 => (None, None, None, 0),
                    _ => (
                        None,
                        None,
                        Some(oracle.access_or_fill(asid, u, || p * 10)),
                        0,
                    ),
                }
            },
        )?;
        ensure_eq!(sut.len(), oracle.len(), "resident entry count");
        Ok(())
    });
}

#[test]
fn asid_tlb_any_policy_lru_matches_linear_oracle() {
    // The runtime-dispatched (`AnyPolicy`) construction the tenant
    // manager uses must agree with the oracle too, not just the
    // monomorphic `AsidTlb::lru`.
    let gen = (usizes(1..=8), u64s(0..=u64::MAX), scripts());
    check(
        "asid_tlb_any_policy_lru_matches_linear_oracle",
        &gen,
        |(cap, seed, ops)| {
            let mut sut = AsidTlb::<u64, AnyPolicy>::new(*cap as u64, PolicyKind::Lru, *seed);
            let mut oracle: LinearAsidTlb<u64> = LinearAsidTlb::new(*cap);
            differential(
                "AsidTlb(AnyPolicy/Lru)",
                "LinearAsidTlb",
                ops.iter().copied(),
                |&(kind, a, p)| {
                    let (asid, u) = (Asid(a as u32), VirtHugePage(p));
                    match kind {
                        0..=1 => (sut.invalidate(asid, u), false, 0),
                        2 => (None, false, sut.flush_asid(asid)),
                        _ => (None, sut.access_or_fill(asid, u, || p), 0),
                    }
                },
                |&(kind, a, p)| {
                    let (asid, u) = (Asid(a as u32), VirtHugePage(p));
                    match kind {
                        0..=1 => (oracle.invalidate(asid, u), false, 0),
                        2 => (None, false, oracle.flush_asid(asid)),
                        _ => (None, oracle.access_or_fill(asid, u, || p), 0),
                    }
                },
            )?;
            ensure_eq!(sut.len(), oracle.len(), "resident entry count");
            Ok(())
        },
    );
}

/// Long-trace, larger-capacity sweep for the dedicated `--ignored` CI step.
#[test]
#[ignore = "large oracle size; run via the dedicated CI step"]
fn asid_tlb_matches_linear_oracle_at_scale() {
    use atp_check::CounterRng;
    let mut rng = CounterRng::new(0xA51D, 0);
    let mut sut: AsidTlb<u64> = AsidTlb::lru(1024);
    let mut oracle: LinearAsidTlb<u64> = LinearAsidTlb::new(1024);
    for i in 0..200_000u64 {
        let asid = Asid(rng.next_below(8) as u32);
        let u = VirtHugePage(rng.next_below(3000));
        match rng.next_below(64) {
            0 => assert_eq!(
                sut.flush_asid(asid),
                oracle.flush_asid(asid),
                "flush diverged at op {i}"
            ),
            1 => assert_eq!(
                sut.invalidate(asid, u),
                oracle.invalidate(asid, u),
                "invalidate diverged at op {i}"
            ),
            2 if !sut.contains(Asid::GLOBAL, u) && !oracle.contains(Asid::GLOBAL, u) => {
                assert_eq!(
                    sut.insert_global(u, u.0),
                    oracle.insert_global(u, u.0),
                    "global fill diverged at op {i}"
                );
            }
            _ => assert_eq!(
                sut.access_or_fill(asid, u, || u.0),
                oracle.access_or_fill(asid, u, || u.0),
                "access diverged at op {i}"
            ),
        }
    }
    assert_eq!(sut.len(), oracle.len(), "final resident counts differ");
}
