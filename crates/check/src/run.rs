//! The property runner: seeded cases, greedy integrated shrinking, and
//! replayable failure reports.
//!
//! [`check`] runs a property over [`Config::cases`] generated inputs. Each
//! case's input is a pure function of a 64-bit *case seed*, so a failure
//! is replayable forever: the report prints
//! `ATP_CHECK_SEED=<seed> cargo test <property>` and setting that
//! environment variable re-runs exactly the failing case. On failure the
//! runner shrinks greedily — it repeatedly adopts the first proposed
//! smaller input that still fails — and reports the minimal counterexample
//! alongside the original one.

use crate::gen::Gen;
use atp_hash::mix::mix2;
use atp_hash::{CounterRng, XxHash64};
use std::fmt::Debug;

/// Environment variable that pins the runner to a single case seed.
pub const SEED_ENV: &str = "ATP_CHECK_SEED";

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases (ignored when a replay seed is pinned).
    pub cases: u64,
    /// Base seed; per-case seeds are derived from it. Defaults to a hash
    /// of the property name so distinct properties explore distinct
    /// streams.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking one failure.
    pub max_shrink_evals: u64,
    /// Explicit replay seed; overrides case generation just like the
    /// `ATP_CHECK_SEED` environment variable (which takes precedence).
    pub replay: Option<u64>,
}

impl Config {
    /// The default configuration for a named property.
    pub fn for_property(name: &str) -> Self {
        let mut h = XxHash64::with_seed(0xC4EC);
        h.update(name.as_bytes());
        Self {
            cases: 64,
            seed: h.digest(),
            max_shrink_evals: 20_000,
            replay: None,
        }
    }

    /// Sets the case count.
    pub fn with_cases(mut self, cases: u64) -> Self {
        self.cases = cases;
        self
    }
}

/// A property failure: the original and minimal counterexamples plus the
/// seed that replays the case.
#[derive(Clone, Debug)]
pub struct Failure<T> {
    /// Property name (the `cargo test` filter for replay).
    pub property: String,
    /// Seed that regenerates the failing input.
    pub case_seed: u64,
    /// The input as generated.
    pub original: T,
    /// The input after greedy shrinking (== `original` if irreducible).
    pub minimal: T,
    /// Number of successful shrink steps taken.
    pub shrink_steps: u64,
    /// The property's error for the minimal input.
    pub message: String,
}

impl<T: Debug> Failure<T> {
    /// Renders the failure report: what diverged, the minimal
    /// counterexample, and the replay command.
    pub fn report(&self) -> String {
        format!(
            "property `{}` failed: {}\n\
             minimal counterexample ({} shrink steps): {:?}\n\
             original input: {:?}\n\
             replay: {}={} cargo test {}",
            self.property,
            self.message,
            self.shrink_steps,
            self.minimal,
            self.original,
            SEED_ENV,
            self.case_seed,
            self.property,
        )
    }
}

fn replay_seed(cfg: &Config) -> Option<u64> {
    if let Ok(s) = std::env::var(SEED_ENV) {
        match s.trim().parse::<u64>() {
            Ok(v) => return Some(v),
            Err(_) => panic!("{SEED_ENV}={s:?} is not a u64 case seed"),
        }
    }
    cfg.replay
}

/// Runs `prop` over generated inputs, returning the first (shrunk) failure
/// instead of panicking. Prefer [`check`] in tests; this entry point is for
/// meta-tests and tools that inspect failures programmatically.
pub fn check_result<G: Gen>(
    property: &str,
    gen: &G,
    cfg: &Config,
    prop: impl Fn(&G::Value) -> Result<(), String>,
) -> Result<(), Failure<G::Value>> {
    let case_seeds: Vec<u64> = match replay_seed(cfg) {
        Some(s) => vec![s],
        None => (0..cfg.cases).map(|i| mix2(cfg.seed, i)).collect(),
    };
    for case_seed in case_seeds {
        let mut rng = CounterRng::new(case_seed, 0);
        let original = gen.generate(&mut rng);
        let message = match prop(&original) {
            Ok(()) => continue,
            Err(m) => m,
        };
        let (minimal, message, shrink_steps) =
            shrink_greedily(gen, original.clone(), message, cfg.max_shrink_evals, &prop);
        return Err(Failure {
            property: property.to_string(),
            case_seed,
            original,
            minimal,
            shrink_steps,
            message,
        });
    }
    Ok(())
}

/// Greedy integrated shrinker: adopt the first proposed smaller input that
/// still fails; stop when no proposal fails (local minimum) or the
/// evaluation budget is spent.
fn shrink_greedily<G: Gen>(
    gen: &G,
    mut cur: G::Value,
    mut cur_msg: String,
    max_evals: u64,
    prop: &impl Fn(&G::Value) -> Result<(), String>,
) -> (G::Value, String, u64) {
    let mut evals = 0u64;
    let mut steps = 0u64;
    'outer: loop {
        for cand in gen.shrink(&cur) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if let Err(m) = prop(&cand) {
                cur = cand;
                cur_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // No proposal fails: `cur` is locally minimal.
    }
    (cur, cur_msg, steps)
}

/// Runs `prop` over generated inputs with the default [`Config`], panicking
/// on failure with the minimal counterexample and the replay command.
///
/// `property` must be the `#[test]` function's name (it is printed as the
/// `cargo test` filter of the replay command).
pub fn check<G: Gen>(property: &str, gen: &G, prop: impl Fn(&G::Value) -> Result<(), String>) {
    check_config(property, gen, &Config::for_property(property), prop)
}

/// [`check`] with an explicit configuration.
pub fn check_config<G: Gen>(
    property: &str,
    gen: &G,
    cfg: &Config,
    prop: impl Fn(&G::Value) -> Result<(), String>,
) {
    if let Err(failure) = check_result(property, gen, cfg, prop) {
        panic!("{}", failure.report());
    }
}

/// `ensure!(cond, "format", args…)` — early-returns `Err(String)` from a
/// property closure when `cond` is false.
#[macro_export]
macro_rules! ensure {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `ensure_eq!(left, right, "context", args…)` — early-returns
/// `Err(String)` showing both values when they differ.
#[macro_export]
macro_rules! ensure_eq {
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: left={:?} right={:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{u64s, vecs};

    #[test]
    fn passing_property_stays_quiet() {
        check("passing_property_stays_quiet", &u64s(0..=100), |&v| {
            ensure!(v <= 100, "generator out of range: {v}");
            Ok(())
        });
    }

    #[test]
    fn failure_is_shrunk_to_the_boundary() {
        // Property "all values < 10" over 0..=1000 must shrink exactly to
        // the boundary value 10.
        let cfg = Config::for_property("failure_is_shrunk_to_the_boundary");
        let r = check_result(
            "failure_is_shrunk_to_the_boundary",
            &u64s(0..=1000),
            &cfg,
            |&v| {
                ensure!(v < 10, "value {v} too large");
                Ok(())
            },
        );
        let f = r.expect_err("property must fail");
        assert_eq!(f.minimal, 10, "greedy shrink must land on the boundary");
        assert!(f.original >= 10);
    }

    #[test]
    fn vec_failures_shrink_to_singletons() {
        // Property "no element equals 7" shrinks to the one-element vector
        // [7].
        let gen = vecs(u64s(0..=9), 0..=100);
        let cfg = Config::for_property("vec_failures_shrink_to_singletons").with_cases(256);
        let r = check_result("vec_failures_shrink_to_singletons", &gen, &cfg, |v| {
            ensure!(!v.contains(&7), "found a 7 in {v:?}");
            Ok(())
        });
        let f = r.expect_err("a 7 must appear in 256 cases");
        assert_eq!(f.minimal, vec![7]);
    }

    #[test]
    fn replay_seed_reproduces_the_case() {
        let gen = u64s(0..=u64::MAX);
        let cfg = Config::for_property("replay_seed_reproduces_the_case");
        let f = check_result("replay_seed_reproduces_the_case", &gen, &cfg, |&v| {
            ensure!(v % 3 != 0, "multiple of three: {v}");
            Ok(())
        })
        .expect_err("a multiple of 3 appears quickly");
        // Pin the failing seed: the replayed run regenerates the same input.
        let pinned = Config {
            replay: Some(f.case_seed),
            ..cfg
        };
        let g = check_result("replay_seed_reproduces_the_case", &gen, &pinned, |&v| {
            ensure!(v % 3 != 0, "multiple of three: {v}");
            Ok(())
        })
        .expect_err("replay must fail again");
        assert_eq!(f.original, g.original);
        assert_eq!(f.minimal, g.minimal);
    }

    #[test]
    fn report_names_the_essentials() {
        let f = Failure {
            property: "some_property".to_string(),
            case_seed: 42,
            original: vec![1u64, 2, 3],
            minimal: vec![2u64],
            shrink_steps: 5,
            message: "boom".to_string(),
        };
        let r = f.report();
        assert!(r.contains("minimal counterexample"));
        assert!(r.contains("[2]"));
        assert!(r.contains("ATP_CHECK_SEED=42 cargo test some_property"));
    }

    #[test]
    fn shrink_budget_is_respected() {
        // A pathological property that always fails: the shrinker must
        // terminate within its budget.
        let gen = vecs(u64s(0..=u64::MAX), 0..=200);
        let cfg = Config {
            max_shrink_evals: 50,
            ..Config::for_property("shrink_budget_is_respected")
        };
        let f = check_result("shrink_budget_is_respected", &gen, &cfg, |_| {
            Err("always fails".to_string())
        })
        .expect_err("always fails");
        // Budget bounds the number of *successful* steps too.
        assert!(f.shrink_steps <= 50);
    }
}
