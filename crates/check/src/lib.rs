//! `atp-check` — property-testing and differential-oracle harness.
//!
//! PR 1 made the workspace hermetic by replacing proptest with hand-rolled
//! seeded loops; this crate gives those loops back their teeth. Three
//! pieces, all driven by the in-tree deterministic [`CounterRng`]:
//!
//! 1. **Generators** ([`gen`]) — [`Gen`] combinators ([`u64s`], [`vecs`],
//!    tuples, [`from_fn`]) that produce traces, parameter sets, and
//!    adversary scripts as pure functions of a 64-bit case seed.
//! 2. **Runner + shrinker** ([`run`]) — [`check`] executes a property over
//!    generated cases; on failure it greedily shrinks the input and panics
//!    with the minimal counterexample *and* a replay command
//!    (`ATP_CHECK_SEED=<seed> cargo test <property>`). Setting that
//!    environment variable pins the runner to the failing case.
//! 3. **Differential runner + oracles** ([`diff`], [`oracles`]) —
//!    [`differential`] executes a system-under-test against a naive
//!    reference model and reports the first diverging step; [`oracles`]
//!    ships the reference models for every randomized subsystem
//!    (balls-and-bins placement, fully-associative TLB, flat page table,
//!    brute-force Belady OPT, single-step trace driving).
//!
//! ```
//! use atp_check::{check, ensure, u64s, vecs, Gen};
//!
//! // Property: every generated trace round-trips through the codec.
//! let gen = vecs(u64s(0..=1 << 40), 0..=64);
//! check("doc_roundtrip", &gen, |trace| {
//!     let pages: Vec<_> = trace.iter().map(|&p| atp_types::VirtPage(p)).collect();
//!     let decoded = atp_trace_like_roundtrip(&pages);
//!     ensure!(decoded == pages, "codec dropped data");
//!     Ok(())
//! });
//! # fn atp_trace_like_roundtrip(p: &[atp_types::VirtPage]) -> Vec<atp_types::VirtPage> {
//! #     p.to_vec()
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod oracles;
pub mod run;

pub use atp_hash::CounterRng;
pub use diff::differential;
pub use gen::{bools, from_fn, u64s, usizes, vecs, BoolGen, FnGen, Gen, U64Gen, UsizeGen, VecGen};
pub use run::{check, check_config, check_result, Config, Failure, SEED_ENV};
