//! Deterministic input generators with integrated shrinking.
//!
//! A [`Gen`] produces a value from a [`CounterRng`] stream (so every case
//! is a pure function of its case seed) and knows how to propose *smaller*
//! variants of a failing value. Shrinking is structural — the runner never
//! re-derives values from mutated seeds, it mutates the failing value
//! directly — so a generator's `shrink` must only propose values it could
//! itself have produced.
//!
//! The combinators here cover the shapes the workspace's randomized tests
//! need: bounded integers, booleans, vectors (traces, adversary scripts),
//! tuples (parameter sets), and [`from_fn`] for bespoke enums like
//! placement rules.

use atp_hash::CounterRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::RangeInclusive;

/// A deterministic generator of test inputs, with integrated shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Produces one value from the case's RNG stream.
    fn generate(&self, rng: &mut CounterRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of `v`, most aggressive first.
    /// Every proposal must be a value this generator could produce. The
    /// default proposes nothing (no shrinking).
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Uniform `u64` in an inclusive range; shrinks toward the lower bound.
#[derive(Clone, Copy, Debug)]
pub struct U64Gen {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `range` (inclusive); shrinks toward `range.start()`.
///
/// # Panics
/// Panics if the range is empty.
pub fn u64s(range: RangeInclusive<u64>) -> U64Gen {
    assert!(range.start() <= range.end(), "empty range");
    U64Gen {
        lo: *range.start(),
        hi: *range.end(),
    }
}

impl Gen for U64Gen {
    type Value = u64;

    fn generate(&self, rng: &mut CounterRng) -> u64 {
        let span = self.hi - self.lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        self.lo + rng.next_below(span + 1)
    }

    fn shrink(&self, &v: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
            out.push(v - 1);
        }
        out.dedup();
        out
    }
}

/// Uniform `usize` in an inclusive range; shrinks toward the lower bound.
#[derive(Clone, Copy, Debug)]
pub struct UsizeGen(U64Gen);

/// Uniform `usize` in `range` (inclusive); shrinks toward `range.start()`.
pub fn usizes(range: RangeInclusive<usize>) -> UsizeGen {
    UsizeGen(u64s(*range.start() as u64..=*range.end() as u64))
}

impl Gen for UsizeGen {
    type Value = usize;

    fn generate(&self, rng: &mut CounterRng) -> usize {
        self.0.generate(rng) as usize
    }

    fn shrink(&self, &v: &usize) -> Vec<usize> {
        self.0
            .shrink(&(v as u64))
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
}

/// Fair coin; shrinks `true` to `false`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolGen;

/// A fair boolean; `true` shrinks to `false`.
pub fn bools() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut CounterRng) -> bool {
        rng.next_below(2) == 0
    }

    fn shrink(&self, &v: &bool) -> Vec<bool> {
        if v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Vector of values from an element generator; shrinks by deleting chunks
/// (halves, quarters, …, single elements) and then by shrinking elements
/// in place.
#[derive(Clone, Copy, Debug)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// A vector of `min..=max` elements drawn from `elem`.
///
/// # Panics
/// Panics if `min > max`.
pub fn vecs<G: Gen>(elem: G, len: RangeInclusive<usize>) -> VecGen<G> {
    assert!(len.start() <= len.end(), "empty length range");
    VecGen {
        elem,
        min_len: *len.start(),
        max_len: *len.end(),
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut CounterRng) -> Vec<G::Value> {
        let span = (self.max_len - self.min_len) as u64;
        let len = self.min_len + rng.next_below(span + 1) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let len = v.len();
        // Chunk deletions, most aggressive first: drop aligned windows of
        // len/2, len/4, …, 1 elements (respecting the minimum length).
        let mut chunk = len / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= len {
                if len - chunk >= self.min_len {
                    let mut smaller = Vec::with_capacity(len - chunk);
                    smaller.extend_from_slice(&v[..start]);
                    smaller.extend_from_slice(&v[start + chunk..]);
                    out.push(smaller);
                }
                start += chunk;
            }
            chunk /= 2;
        }
        // Element-wise shrinks, one position at a time.
        for (i, e) in v.iter().enumerate() {
            for cand in self.elem.shrink(e) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// A bespoke generator from a pair of closures (see [`from_fn`]).
pub struct FnGen<T, G, S> {
    generate: G,
    shrink: S,
    _marker: PhantomData<fn() -> T>,
}

impl<T, G, S> std::fmt::Debug for FnGen<T, G, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The closures are opaque; there is nothing more to show.
        f.debug_struct("FnGen").finish_non_exhaustive()
    }
}

/// Builds a generator from a `generate` closure and a `shrink` closure —
/// the escape hatch for domain enums (placement rules, op codes) that the
/// stock combinators don't cover.
pub fn from_fn<T, G, S>(generate: G, shrink: S) -> FnGen<T, G, S>
where
    T: Clone + Debug,
    G: Fn(&mut CounterRng) -> T,
    S: Fn(&T) -> Vec<T>,
{
    FnGen {
        generate,
        shrink,
        _marker: PhantomData,
    }
}

impl<T, G, S> Gen for FnGen<T, G, S>
where
    T: Clone + Debug,
    G: Fn(&mut CounterRng) -> T,
    S: Fn(&T) -> Vec<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut CounterRng) -> T {
        (self.generate)(rng)
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }
}

macro_rules! tuple_gen {
    ($($g:ident / $v:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut CounterRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A / a: 0, B / b: 1);
tuple_gen!(A / a: 0, B / b: 1, C / c: 2);
tuple_gen!(A / a: 0, B / b: 1, C / c: 2, D / d: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> CounterRng {
        CounterRng::new(7, 7)
    }

    #[test]
    fn u64_range_respected() {
        let g = u64s(5..=9);
        let mut r = rng();
        for _ in 0..1000 {
            let v = g.generate(&mut r);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn u64_shrinks_toward_lo() {
        let g = u64s(3..=100);
        let cands = g.shrink(&50);
        assert!(cands.contains(&3));
        assert!(cands.iter().all(|&c| (3..50).contains(&c)));
        assert!(g.shrink(&3).is_empty(), "lower bound is irreducible");
    }

    #[test]
    fn vec_len_respected() {
        let g = vecs(u64s(0..=9), 2..=5);
        let mut r = rng();
        for _ in 0..200 {
            let v = g.generate(&mut r);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrinks_remove_and_shrink_elements() {
        let g = vecs(u64s(0..=9), 0..=8);
        let v = vec![4u64, 5, 6, 7];
        let cands = g.shrink(&v);
        // Halving removals present.
        assert!(cands.contains(&vec![6, 7]));
        assert!(cands.contains(&vec![4, 5]));
        // Per-element removals present.
        assert!(cands.contains(&vec![4, 5, 6]));
        // Element shrinks present (first element toward 0).
        assert!(cands.contains(&vec![0, 5, 6, 7]));
        // Minimum length respected.
        let bounded = vecs(u64s(0..=9), 4..=8);
        assert!(bounded.shrink(&v).iter().all(|c| c.len() >= 4));
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let g = (u64s(0..=10), bools());
        let cands = g.shrink(&(6, true));
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(6, false)));
    }

    #[test]
    fn generation_is_deterministic() {
        let g = vecs((u64s(0..=999), bools()), 0..=50);
        let a = g.generate(&mut CounterRng::new(1, 2));
        let b = g.generate(&mut CounterRng::new(1, 2));
        assert_eq!(a, b);
    }
}
