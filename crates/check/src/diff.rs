//! The differential runner: execute a system-under-test and a naive
//! reference model over the same input sequence and report the **first
//! diverging step** — the step index, the input that triggered it, and
//! both outputs.
//!
//! Differential checking is the natural fit for the paper's guarantees
//! (Iceberg placement vs an exhaustive bin scan, the heap-based OPT vs
//! brute-force lookahead, batched vs single-step pipelines): the reference
//! is written for obviousness, the SUT for speed, and any behavioural gap
//! between them surfaces with its exact trigger.

use std::fmt::Debug;

/// Runs `inputs` through both systems step by step. Returns `Ok(steps)` on
/// full agreement, or an `Err(String)` describing the first diverging step
/// (ready to return from a [`check`](crate::check) property).
pub fn differential<I: Debug, O: PartialEq + Debug>(
    sut_name: &str,
    oracle_name: &str,
    inputs: impl IntoIterator<Item = I>,
    mut sut: impl FnMut(&I) -> O,
    mut oracle: impl FnMut(&I) -> O,
) -> Result<usize, String> {
    let mut steps = 0;
    for (i, input) in inputs.into_iter().enumerate() {
        let s = sut(&input);
        let o = oracle(&input);
        if s != o {
            return Err(format!(
                "`{sut_name}` diverged from `{oracle_name}` at step {i} \
                 on input {input:?}: sut={s:?} oracle={o:?}"
            ));
        }
        steps = i + 1;
    }
    Ok(steps)
}

/// [`differential`] with the closure expressions stringified as the system
/// names: `differential!(inputs, |i| sut.step(i), |i| oracle.step(i))`.
/// Evaluates to `Result<usize, String>`.
#[macro_export]
macro_rules! differential {
    ($inputs:expr, $sut:expr, $oracle:expr $(,)?) => {
        $crate::differential(
            stringify!($sut),
            stringify!($oracle),
            $inputs,
            $sut,
            $oracle,
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_counts_steps() {
        let r = differential("a", "b", 0..5u64, |&i| i * 2, |&i| i + i);
        assert_eq!(r, Ok(5));
    }

    #[test]
    fn first_divergence_is_reported() {
        let r = differential(
            "fast",
            "slow",
            0..10u64,
            |&i| i * i,
            |&i| i * i + u64::from(i == 3),
        );
        let msg = r.expect_err("must diverge at 3");
        assert!(msg.contains("step 3"), "{msg}");
        assert!(msg.contains("sut=9"), "{msg}");
        assert!(msg.contains("oracle=10"), "{msg}");
        assert!(msg.contains("fast"), "{msg}");
    }

    #[test]
    fn macro_stringifies_names() {
        let double = |&i: &u64| i * 2;
        let triple = |&i: &u64| i * 3;
        let msg = differential!(1..2u64, double, triple).expect_err("2 != 3");
        assert!(msg.contains("double"), "{msg}");
        assert!(msg.contains("triple"), "{msg}");
    }

    #[test]
    fn stateful_systems_compare_per_step() {
        // Two accumulators that agree until one saturates.
        let mut a = 0u64;
        let mut b = 0u64;
        let r = differential(
            "saturating",
            "wrapping",
            [100u64, 200, u64::MAX],
            move |&x| {
                a = a.saturating_add(x);
                a
            },
            move |&x| {
                b = b.wrapping_add(x);
                b
            },
        );
        let msg = r.expect_err("saturation diverges");
        assert!(msg.contains("step 2"), "{msg}");
    }
}
