//! Linear-scan fully-associative TLB oracle, parameterized by policy.
//!
//! [`LinearPolicyTlb`] generalizes [`super::LinearTlb`] from LRU to every
//! policy with a monomorphized fast path in the fused slot-arena core
//! (LRU, FIFO, CLOCK, SIEVE). It is written against the *published
//! descriptions* of those policies — one `Vec` ordered front-to-back from
//! newest to oldest, per-entry one-bit state, everything a linear scan —
//! with no code shared with `atp_replacement`'s intrusive-list
//! implementations. Differential tests drive both over identical scripts
//! and require bit-for-bit agreement on hits, victims, and residency.

use atp_types::VirtHugePage;

/// Which reference policy the oracle simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefPolicy {
    /// Least-recently used: hits move to front, evict the back.
    Lru,
    /// First-in first-out: hits do nothing, evict the back.
    Fifo,
    /// CLOCK / second chance: hits set a reference bit; the sweep takes the
    /// back, recycling referenced entries to the front with the bit
    /// cleared.
    Clock,
    /// SIEVE: hits set a visited bit; a persistent hand sweeps from oldest
    /// toward newest clearing bits, evicts the first unvisited entry, and
    /// stays where it stopped.
    Sieve,
}

/// One resident entry: key, payload, and the policy's one-bit state
/// (reference bit for CLOCK, visited bit for SIEVE, unused otherwise).
#[derive(Debug)]
struct Entry<V> {
    key: VirtHugePage,
    value: V,
    flag: bool,
}

/// A fully associative TLB under a configurable reference policy, as a
/// linearly scanned `Vec` (front = newest).
#[derive(Debug)]
pub struct LinearPolicyTlb<V> {
    entries: Vec<Entry<V>>,
    capacity: usize,
    policy: RefPolicy,
    /// SIEVE hand: the key the next sweep starts from, if still resident.
    hand: Option<VirtHugePage>,
}

impl<V> LinearPolicyTlb<V> {
    /// Creates an empty TLB with `capacity` entries under `policy`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: RefPolicy) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            policy,
            hand: None,
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `u` is resident (no recency effect).
    pub fn contains(&self, u: VirtHugePage) -> bool {
        self.entries.iter().any(|e| e.key == u)
    }

    /// Looks up `u`, applying the policy's hit rule.
    pub fn lookup(&mut self, u: VirtHugePage) -> Option<&V> {
        let pos = self.entries.iter().position(|e| e.key == u)?;
        match self.policy {
            RefPolicy::Lru => {
                let e = self.entries.remove(pos);
                self.entries.insert(0, e);
                Some(&self.entries[0].value)
            }
            RefPolicy::Fifo => Some(&self.entries[pos].value),
            RefPolicy::Clock | RefPolicy::Sieve => {
                self.entries[pos].flag = true;
                Some(&self.entries[pos].value)
            }
        }
    }

    /// Updates the value of a resident entry in place, with no policy
    /// effect. Returns whether the entry was resident.
    pub fn update(&mut self, u: VirtHugePage, f: impl FnOnce(&mut V)) -> bool {
        match self.entries.iter_mut().find(|e| e.key == u) {
            Some(e) => {
                f(&mut e.value);
                true
            }
            None => false,
        }
    }

    /// Chooses and removes the policy's victim. Caller guarantees the TLB
    /// is full (and therefore nonempty).
    fn evict(&mut self) -> (VirtHugePage, V) {
        match self.policy {
            RefPolicy::Lru | RefPolicy::Fifo => {
                // atp-lint: allow(unwrap-policy, reason = "oracle contract: evict is never called on an empty TLB")
                let e = self.entries.pop().expect("evict on empty TLB");
                (e.key, e.value)
            }
            RefPolicy::Clock => loop {
                let last = self.entries.len() - 1;
                if self.entries[last].flag {
                    // Second chance: recycle to the front, bit cleared.
                    let mut e = self.entries.remove(last);
                    e.flag = false;
                    self.entries.insert(0, e);
                } else {
                    let e = self.entries.remove(last);
                    return (e.key, e.value);
                }
            },
            RefPolicy::Sieve => {
                // Sweep from the hand (or the back) toward the front,
                // clearing visited bits; wrap to the back past the front.
                let mut pos = self
                    .hand
                    .and_then(|h| self.entries.iter().position(|e| e.key == h))
                    .unwrap_or(self.entries.len() - 1);
                while self.entries[pos].flag {
                    self.entries[pos].flag = false;
                    pos = if pos == 0 {
                        self.entries.len() - 1
                    } else {
                        pos - 1
                    };
                }
                // Hand rests one step past the victim, toward the front.
                self.hand = pos.checked_sub(1).map(|p| self.entries[p].key);
                let e = self.entries.remove(pos);
                (e.key, e.value)
            }
        }
    }

    /// Inserts `u → value` at the front, returning the victim if full.
    ///
    /// # Panics
    /// Panics if `u` is already resident.
    pub fn insert(&mut self, u: VirtHugePage, value: V) -> Option<(VirtHugePage, V)> {
        assert!(!self.contains(u), "insert of resident TLB entry");
        let victim = if self.entries.len() == self.capacity {
            Some(self.evict())
        } else {
            None
        };
        self.entries.insert(
            0,
            Entry {
                key: u,
                value,
                flag: false,
            },
        );
        victim
    }

    /// Invalidates `u`, returning its value if resident. If the SIEVE hand
    /// pointed at `u`, it moves one step toward the front.
    pub fn invalidate(&mut self, u: VirtHugePage) -> Option<V> {
        let pos = self.entries.iter().position(|e| e.key == u)?;
        if self.hand == Some(u) {
            self.hand = pos.checked_sub(1).map(|p| self.entries[p].key);
        }
        Some(self.entries.remove(pos).value)
    }

    /// Looks up `u`, filling from `fill` on a miss. Returns whether it hit.
    pub fn access_or_fill(&mut self, u: VirtHugePage, fill: impl FnOnce() -> V) -> bool {
        if self.lookup(u).is_some() {
            return true;
        }
        self.insert(u, fill());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(x: u64) -> VirtHugePage {
        VirtHugePage(x)
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut t: LinearPolicyTlb<u64> = LinearPolicyTlb::new(2, RefPolicy::Fifo);
        t.insert(u(1), 10);
        t.insert(u(2), 20);
        t.lookup(u(1)); // no refresh under FIFO
        assert_eq!(t.insert(u(3), 30), Some((u(1), 10)));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut t: LinearPolicyTlb<u64> = LinearPolicyTlb::new(2, RefPolicy::Clock);
        t.insert(u(1), 10);
        t.insert(u(2), 20);
        t.lookup(u(1)); // set 1's bit
        assert_eq!(t.insert(u(3), 30), Some((u(2), 20)));
        assert!(t.contains(u(1)));
    }

    #[test]
    fn sieve_hand_persists() {
        let mut t: LinearPolicyTlb<u64> = LinearPolicyTlb::new(3, RefPolicy::Sieve);
        for k in 1..=3 {
            t.insert(u(k), k * 10);
        }
        for k in 1..=3 {
            t.lookup(u(k)); // visit all
        }
        // First eviction clears every bit and wraps to evict the oldest (1);
        // the hand then rests past it, so 2 goes next without re-sweeping.
        assert_eq!(t.insert(u(4), 40), Some((u(1), 10)));
        assert_eq!(t.insert(u(5), 50), Some((u(2), 20)));
    }

    #[test]
    fn lru_matches_linear_tlb() {
        use crate::oracles::LinearTlb;
        let mut a: LinearPolicyTlb<u64> = LinearPolicyTlb::new(3, RefPolicy::Lru);
        let mut b: LinearTlb<u64> = LinearTlb::new(3);
        for &k in &[1u64, 2, 3, 1, 4, 2, 5, 1, 6, 3, 3, 1] {
            assert_eq!(
                a.access_or_fill(u(k), || k),
                b.access_or_fill(u(k), || k),
                "diverged at {k}"
            );
        }
        assert_eq!(a.len(), b.len());
    }
}
