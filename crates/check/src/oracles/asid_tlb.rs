//! Linear-scan oracle for the ASID-tagged TLB.
//!
//! [`LinearAsidTlb`] is [`super::tlb::LinearTlb`] with multi-tenant
//! semantics spelled out as obviously as possible: one recency `Vec`
//! whose keys are `(asid, huge)` pairs, a lookup that scans for the
//! private entry first and the global ([`Asid::GLOBAL`]) entry second,
//! and an ASID flush that walks the list removing one tenant's private
//! entries while leaving everyone else's — globals included — in their
//! exact recency positions. [`atp_tlb::AsidTlb`] with the LRU policy
//! must match it operation for operation: hits, victims, flush counts.

use atp_types::{Asid, TaggedHugePage, VirtHugePage};

/// A fully associative LRU ASID-tagged TLB as a linearly scanned
/// recency list.
#[derive(Clone, Debug)]
pub struct LinearAsidTlb<V> {
    /// Front = most recently used.
    entries: Vec<(TaggedHugePage, V)>,
    capacity: usize,
}

impl<V> LinearAsidTlb<V> {
    /// Creates an empty TLB with `capacity` entries shared by all
    /// tenants.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entry count (all tenants plus globals).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: TaggedHugePage) -> Option<usize> {
        self.entries.iter().position(|(k, _)| *k == key)
    }

    /// Whether tenant `asid` would hit on `huge` (private or global),
    /// without touching recency.
    pub fn contains(&self, asid: Asid, huge: VirtHugePage) -> bool {
        self.position(TaggedHugePage::new(asid, huge)).is_some()
            || self.position(TaggedHugePage::global(huge)).is_some()
    }

    /// Looks up `huge` for tenant `asid`: private entry first, then the
    /// global one. A hit moves the matching entry to the front.
    pub fn lookup(&mut self, asid: Asid, huge: VirtHugePage) -> Option<&V> {
        let pos = self
            .position(TaggedHugePage::new(asid, huge))
            .or_else(|| self.position(TaggedHugePage::global(huge)))?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    /// Inserts a private entry for tenant `asid` at the front, returning
    /// the LRU victim (possibly another tenant's) if the TLB was full.
    ///
    /// # Panics
    /// Panics if the `(asid, huge)` entry is already resident.
    pub fn insert(
        &mut self,
        asid: Asid,
        huge: VirtHugePage,
        value: V,
    ) -> Option<(TaggedHugePage, V)> {
        self.insert_key(TaggedHugePage::new(asid, huge), value)
    }

    /// Inserts a global (all-tenants) entry.
    ///
    /// # Panics
    /// Panics if the global entry for `huge` is already resident.
    pub fn insert_global(&mut self, huge: VirtHugePage, value: V) -> Option<(TaggedHugePage, V)> {
        self.insert_key(TaggedHugePage::global(huge), value)
    }

    fn insert_key(&mut self, key: TaggedHugePage, value: V) -> Option<(TaggedHugePage, V)> {
        assert!(self.position(key).is_none(), "insert of resident TLB entry");
        let victim = if self.entries.len() == self.capacity {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, (key, value));
        victim
    }

    /// Invalidates tenant `asid`'s private entry for `huge`, returning
    /// its value if resident. Globals are untouched.
    pub fn invalidate(&mut self, asid: Asid, huge: VirtHugePage) -> Option<V> {
        let pos = self.position(TaggedHugePage::new(asid, huge))?;
        Some(self.entries.remove(pos).1)
    }

    /// Invalidates the global entry for `huge`.
    pub fn invalidate_global(&mut self, huge: VirtHugePage) -> Option<V> {
        let pos = self.position(TaggedHugePage::global(huge))?;
        Some(self.entries.remove(pos).1)
    }

    /// Removes every private entry of `asid`, preserving every other
    /// entry's recency position. Returns how many were removed.
    /// Flushing [`Asid::GLOBAL`] removes nothing, mirroring the SUT.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        if asid.is_global() {
            return 0;
        }
        let before = self.entries.len();
        self.entries.retain(|(k, _)| k.asid != asid);
        (before - self.entries.len()) as u64
    }

    /// Looks up `(asid, huge)`, filling a private entry on a miss.
    /// Returns whether it hit.
    pub fn access_or_fill(
        &mut self,
        asid: Asid,
        huge: VirtHugePage,
        fill: impl FnOnce() -> V,
    ) -> bool {
        if self.lookup(asid, huge).is_some() {
            return true;
        }
        self.insert(asid, huge, fill());
        false
    }

    /// Resident keys from most- to least-recently used.
    pub fn recency_order(&self) -> impl Iterator<Item = TaggedHugePage> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: u64) -> VirtHugePage {
        VirtHugePage(x)
    }

    #[test]
    fn private_then_global_probe_order() {
        let mut t: LinearAsidTlb<u64> = LinearAsidTlb::new(4);
        t.insert_global(h(1), 100);
        t.insert(Asid(1), h(1), 11);
        // Tenant 1 sees its private value; tenant 2 falls through to the
        // global entry.
        assert_eq!(t.lookup(Asid(1), h(1)), Some(&11));
        assert_eq!(t.lookup(Asid(2), h(1)), Some(&100));
    }

    #[test]
    fn flush_spares_globals_and_other_tenants() {
        let mut t: LinearAsidTlb<u64> = LinearAsidTlb::new(8);
        t.insert(Asid(1), h(1), 1);
        t.insert(Asid(1), h(2), 2);
        t.insert(Asid(2), h(1), 3);
        t.insert_global(h(9), 4);
        assert_eq!(t.flush_asid(Asid(1)), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(Asid(2), h(1)), Some(&3));
        assert_eq!(t.lookup(Asid(1), h(9)), Some(&4));
        assert_eq!(t.flush_asid(Asid::GLOBAL), 0);
    }

    #[test]
    fn cross_tenant_lru_eviction() {
        let mut t: LinearAsidTlb<u64> = LinearAsidTlb::new(2);
        t.insert(Asid(1), h(1), 1);
        t.insert(Asid(2), h(1), 2);
        t.lookup(Asid(1), h(1));
        // Tenant 2's entry is LRU; tenant 3's fill evicts it.
        let victim = t.insert(Asid(3), h(1), 3);
        assert_eq!(victim, Some((TaggedHugePage::new(Asid(2), h(1)), 2)));
    }
}
