//! Brute-force Belady OPT oracle.
//!
//! [`opt_misses_naive`] simulates farthest-in-future eviction with no
//! precomputation and no heap: on every miss with a full cache it scans
//! the *remaining trace* to find each resident item's next use, then
//! evicts the farthest. O(n² · capacity), which is exactly why the real
//! [`opt_misses`](atp_replacement::opt::opt_misses) exists — and exactly
//! why this version is trustworthy as its differential reference.
//!
//! Ties (several residents never used again) may be broken differently
//! from the production implementation; Belady's exchange argument makes
//! every farthest-in-future choice optimal, so the *miss count* is still
//! uniquely determined and comparable.

/// Misses of Belady's OPT on `trace` with `capacity` frames, by exhaustive
/// lookahead.
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn opt_misses_naive(trace: &[u64], capacity: usize) -> u64 {
    assert!(capacity > 0, "capacity must be nonzero");
    let mut resident: Vec<u64> = Vec::with_capacity(capacity);
    let mut misses = 0u64;
    for (i, &k) in trace.iter().enumerate() {
        if resident.contains(&k) {
            continue;
        }
        misses += 1;
        if resident.len() == capacity {
            // Exhaustive lookahead: next use of each resident after i.
            let next_use = |r: u64| {
                trace[i + 1..]
                    .iter()
                    .position(|&t| t == r)
                    .map_or(usize::MAX, |d| i + 1 + d)
            };
            let (victim_idx, _) = resident
                .iter()
                .enumerate()
                .max_by_key(|&(_, &r)| next_use(r))
                // atp-lint: allow(unwrap-policy, reason = "invariant: eviction is only reached when the cache is full")
                .expect("cache is full");
            resident.swap_remove(victim_idx);
        }
        resident.push(k);
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_replacement::opt::opt_misses;

    #[test]
    fn textbook_example() {
        let trace = [7u64, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2];
        assert_eq!(opt_misses_naive(&trace, 3), 7);
    }

    #[test]
    fn agrees_with_heap_opt_on_small_fixed_traces() {
        let traces: &[&[u64]] = &[
            &[],
            &[1],
            &[1, 1, 1],
            &[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5],
            &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3],
        ];
        for t in traces {
            for cap in 1..=6 {
                assert_eq!(
                    opt_misses_naive(t, cap),
                    opt_misses(t, cap).misses,
                    "trace {t:?} cap {cap}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_capacity() {
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 7 + i / 5) % 17).collect();
        let mut prev = u64::MAX;
        for cap in 1..=8 {
            let m = opt_misses_naive(&trace, cap);
            assert!(m <= prev);
            prev = m;
        }
    }
}
