//! Linear-scan fully-associative TLB oracle.
//!
//! [`LinearTlb`] is textbook LRU: one `Vec` ordered front-to-back from
//! most- to least-recently-used, every operation a linear scan. It is the
//! reference model the paper assumes ("the TLB as a fully associative
//! cache ... LRU as the replacement policy", §6) and the differential
//! baseline for the real TLB organizations:
//!
//! * [`Tlb`](atp_tlb::Tlb) with the LRU policy must match it exactly;
//! * [`SetAssocTlb`](atp_tlb::SetAssocTlb) with a single set is fully
//!   associative by construction and must match;
//! * [`TwoLevelTlb`](atp_tlb::TwoLevelTlb) with mostly-exclusive
//!   promote/demote LRU movement holds exactly the `ℓ₁+ℓ₂` most recent
//!   entries, so its hit/miss stream must match a `ℓ₁+ℓ₂`-entry
//!   [`LinearTlb`];
//! * [`SplitTlb`](atp_tlb::SplitTlb) restricted to one size class is one
//!   fully-associative structure and must match.

use atp_types::VirtHugePage;

/// A fully associative LRU TLB as a linearly scanned recency list.
#[derive(Clone, Debug)]
pub struct LinearTlb<V> {
    /// Front = most recently used.
    entries: Vec<(VirtHugePage, V)>,
    capacity: usize,
}

impl<V> LinearTlb<V> {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `u` is resident (no recency effect).
    pub fn contains(&self, u: VirtHugePage) -> bool {
        self.entries.iter().any(|(k, _)| *k == u)
    }

    /// Looks up `u`; a hit moves it to the front of the recency list.
    pub fn lookup(&mut self, u: VirtHugePage) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| *k == u)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    /// Inserts `u → value` at the front, returning the LRU victim if the
    /// TLB was full.
    ///
    /// # Panics
    /// Panics if `u` is already resident.
    pub fn insert(&mut self, u: VirtHugePage, value: V) -> Option<(VirtHugePage, V)> {
        assert!(!self.contains(u), "insert of resident TLB entry");
        let victim = if self.entries.len() == self.capacity {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, (u, value));
        victim
    }

    /// Invalidates `u`, returning its value if resident.
    pub fn invalidate(&mut self, u: VirtHugePage) -> Option<V> {
        let pos = self.entries.iter().position(|(k, _)| *k == u)?;
        Some(self.entries.remove(pos).1)
    }

    /// Looks up `u`, filling from `fill` on a miss. Returns whether it hit.
    pub fn access_or_fill(&mut self, u: VirtHugePage, fill: impl FnOnce() -> V) -> bool {
        if self.lookup(u).is_some() {
            return true;
        }
        self.insert(u, fill());
        false
    }

    /// Resident keys from most- to least-recently used.
    pub fn recency_order(&self) -> impl Iterator<Item = VirtHugePage> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(x: u64) -> VirtHugePage {
        VirtHugePage(x)
    }

    #[test]
    fn lru_eviction_order() {
        let mut t: LinearTlb<u64> = LinearTlb::new(2);
        assert_eq!(t.insert(u(1), 10), None);
        assert_eq!(t.insert(u(2), 20), None);
        t.lookup(u(1));
        assert_eq!(t.insert(u(3), 30), Some((u(2), 20)));
        assert_eq!(t.recency_order().collect::<Vec<_>>(), vec![u(3), u(1)]);
    }

    #[test]
    fn invalidate_and_refill() {
        let mut t: LinearTlb<u64> = LinearTlb::new(4);
        t.insert(u(9), 90);
        assert_eq!(t.invalidate(u(9)), Some(90));
        assert_eq!(t.invalidate(u(9)), None);
        assert!(!t.access_or_fill(u(9), || 91));
        assert!(t.access_or_fill(u(9), || 92));
        assert_eq!(t.lookup(u(9)), Some(&91));
    }

    #[test]
    #[should_panic(expected = "insert of resident")]
    fn double_insert_panics() {
        let mut t: LinearTlb<()> = LinearTlb::new(2);
        t.insert(u(1), ());
        t.insert(u(1), ());
    }
}
