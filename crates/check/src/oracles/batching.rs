//! Single-step pipeline-driving oracle.
//!
//! [`run_single_step`] is the reference for
//! [`run_batched`](atp_sim::run_batched): it replays the warmup/measure
//! protocol one access at a time with no chunk buffer and no boundary
//! announcements. Batching is purely a driver-side streaming optimization,
//! so for every manager, trace, and batch size the two must accumulate
//! bit-identical [`Costs`] in both phases; observer counters must also
//! agree except for the `batches` count, which belongs to the driver (see
//! [`counters_modulo_batches`]).

use atp_memmgmt::{MemoryManager, StageCounters};
use atp_types::{Costs, VirtPage};

/// Replays `warmup` then `measure` accesses one at a time (stopping early
/// if the trace ends), resetting counters between the phases exactly like
/// the batched driver. Returns `(warmup_costs, measure_costs)`.
pub fn run_single_step<M: MemoryManager + ?Sized>(
    mgr: &mut M,
    trace: impl IntoIterator<Item = VirtPage>,
    warmup: u64,
    measure: u64,
) -> (Costs, Costs) {
    let mut iter = trace.into_iter();
    for p in iter.by_ref().take(warmup as usize) {
        mgr.access(p);
    }
    let warmup_costs = mgr.costs();
    mgr.reset_costs();
    for p in iter.take(measure as usize) {
        mgr.access(p);
    }
    (warmup_costs, mgr.costs())
}

/// Projects out the driver-owned `batches` field so stage counters can be
/// compared across batch sizes (and against the batch-free single-step
/// reference, which never announces a boundary).
pub fn counters_modulo_batches(c: StageCounters) -> StageCounters {
    StageCounters { batches: 0, ..c }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_memmgmt::classic::{ClassicConfig, ClassicMm};
    use atp_sim::run_batched;

    #[test]
    fn single_step_matches_batched_on_classic() {
        let trace: Vec<VirtPage> = (0..3000u64).map(|i| VirtPage(i % 700)).collect();
        let mut a = ClassicMm::new(ClassicConfig::paper(4, 256));
        let mut b = ClassicMm::new(ClassicConfig::paper(4, 256));
        let (wa, ma) = run_single_step(&mut a, trace.iter().copied(), 1000, 2000);
        let sb = run_batched(&mut b, trace.iter().copied(), 1000, 2000, 64);
        assert_eq!(wa, sb.warmup_costs);
        assert_eq!(ma, sb.costs);
    }

    #[test]
    fn modulo_batches_only_clears_batches() {
        let c = StageCounters {
            tlb_hits: 3,
            batches: 9,
            ..StageCounters::default()
        };
        let m = counters_modulo_batches(c);
        assert_eq!(m.tlb_hits, 3);
        assert_eq!(m.batches, 0);
    }
}
