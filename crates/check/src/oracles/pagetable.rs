//! Flat-map page-table oracle.
//!
//! [`MapPageTable`] implements the [`PageTable`] trait with a plain
//! `HashMap` and a constant walk cost of one touch. Translation
//! *correctness* (which mappings exist, what they resolve to, how many
//! pages are mapped) must be identical across every substrate — radix,
//! open-addressing hash, walk-cache-wrapped, and nested — while the walk
//! *cost* is each substrate's own business and is deliberately excluded
//! from the differential surface.

use atp_pagetable::{PageTable, WalkStats};
use atp_types::{PhysPage, VirtPage};
use std::collections::HashMap;

/// The obvious page table: a `HashMap<v, p>`; every operation touches one
/// location.
#[derive(Clone, Debug, Default)]
pub struct MapPageTable {
    map: HashMap<u64, PhysPage>,
}

impl MapPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

const ONE_TOUCH: WalkStats = WalkStats { touches: 1 };

impl PageTable for MapPageTable {
    fn map(&mut self, v: VirtPage, p: PhysPage) -> WalkStats {
        self.map.insert(v.0, p);
        ONE_TOUCH
    }

    fn unmap(&mut self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        (self.map.remove(&v.0), ONE_TOUCH)
    }

    fn translate(&self, v: VirtPage) -> (Option<PhysPage>, WalkStats) {
        (self.map.get(&v.0).copied(), ONE_TOUCH)
    }

    fn mapped(&self) -> u64 {
        self.map.len() as u64
    }

    fn table_pages(&self) -> u64 {
        // Structural overhead is substrate-specific; the flat reference
        // charges the minimum possible (entries packed into 512-slot
        // pages), and differential tests do not compare this quantity.
        self.map.len().div_ceil(512) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut t = MapPageTable::new();
        assert_eq!(t.translate(VirtPage(5)).0, None);
        t.map(VirtPage(5), PhysPage(50));
        assert_eq!(t.translate(VirtPage(5)).0, Some(PhysPage(50)));
        assert_eq!(t.mapped(), 1);
        // Overwrite keeps the count stable.
        t.map(VirtPage(5), PhysPage(51));
        assert_eq!(t.translate(VirtPage(5)).0, Some(PhysPage(51)));
        assert_eq!(t.mapped(), 1);
        assert_eq!(t.unmap(VirtPage(5)).0, Some(PhysPage(51)));
        assert_eq!(t.unmap(VirtPage(5)).0, None);
        assert_eq!(t.mapped(), 0);
    }

    #[test]
    fn every_walk_is_one_touch() {
        let mut t = MapPageTable::new();
        assert_eq!(t.map(VirtPage(1), PhysPage(2)).touches, 1);
        assert_eq!(t.translate(VirtPage(1)).1.touches, 1);
        assert_eq!(t.unmap(VirtPage(1)).1.touches, 1);
    }
}
