//! Brute-force balls-and-bins placement oracle.
//!
//! [`NaiveGame`] re-implements the paper's placement rules with the most
//! obvious data structure possible: one `Vec` of balls per bin, every load
//! computed by an exhaustive linear scan at decision time. It shares the
//! [`PageHasher`] family with the real [`Game`](atp_ballsbins::Game) (both
//! construct it from `(seed, bins, rule.hash_count())`), so for equal
//! seeds the two see identical hash choices and must agree on every
//! placement, load, and removal — the differential surface for
//! `OneChoice`, `Greedy[d]`, and `Iceberg`.

use atp_ballsbins::{Rule, Slot, Tier};
use atp_hash::PageHasher;
use atp_types::VirtPage;

/// The exhaustive-scan reference implementation of the placement game.
#[derive(Clone, Debug)]
pub struct NaiveGame {
    rule: Rule,
    hasher: PageHasher,
    bins: Vec<Vec<(u64, Slot)>>,
}

impl NaiveGame {
    /// Creates the reference game with the same hash family a
    /// [`Game`](atp_ballsbins::Game) built from `(seed, bins, rule)` uses.
    ///
    /// # Panics
    /// Panics if `bins == 0` or the rule is `Greedy{d}` with `d < 2`.
    pub fn new(seed: u64, bins: u64, rule: Rule) -> Self {
        assert!(bins > 0, "bins must be nonzero");
        if let Rule::Greedy { d } = rule {
            assert!(d >= 2, "Greedy[d] requires d >= 2");
        }
        Self {
            rule,
            hasher: PageHasher::new(seed, bins, rule.hash_count()),
            bins: vec![Vec::new(); bins as usize],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> u64 {
        self.bins.len() as u64
    }

    /// Number of balls present (exhaustive count).
    pub fn len(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }

    /// Whether no balls are present.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(Vec::is_empty)
    }

    /// Total load of bin `b`, by scanning it.
    pub fn load(&self, b: u64) -> u32 {
        self.bins[b as usize].len() as u32
    }

    fn tier_load(&self, b: u64, tier: Tier) -> u32 {
        self.bins[b as usize]
            .iter()
            .filter(|&&(_, s)| s.tier == tier)
            .count() as u32
    }

    /// Front-tier load of bin `b`.
    pub fn front_load(&self, b: u64) -> u32 {
        self.tier_load(b, Tier::Front)
    }

    /// Back-tier load of bin `b`.
    pub fn back_load(&self, b: u64) -> u32 {
        self.tier_load(b, Tier::Back)
    }

    /// Whether `ball` is present (exhaustive scan of every bin).
    pub fn contains(&self, ball: u64) -> bool {
        self.slot_of(ball).is_some()
    }

    /// The slot of a present ball, found by scanning every bin.
    pub fn slot_of(&self, ball: u64) -> Option<Slot> {
        self.bins
            .iter()
            .flatten()
            .find(|&&(id, _)| id == ball)
            .map(|&(_, s)| s)
    }

    /// Where `ball` would be placed right now — the placement rules
    /// transcribed from the paper, with every load an exhaustive scan.
    pub fn placement(&self, ball: u64) -> Slot {
        let v = VirtPage(ball);
        match self.rule {
            Rule::OneChoice => Slot {
                bin: self.hasher.bin(v, 0),
                tier: Tier::Back,
                hash_index: 0,
            },
            Rule::Greedy { d } => {
                // Least-loaded of the d choices, ties toward the first.
                let (best_idx, best_bin) = (0..d)
                    .map(|i| (i, self.hasher.bin(v, i)))
                    .min_by_key(|&(i, b)| (self.load(b), i))
                    // atp-lint: allow(unwrap-policy, reason = "oracle contract: games are constructed with d >= 2")
                    .expect("d >= 2");
                Slot {
                    bin: best_bin,
                    tier: Tier::Back,
                    hash_index: best_idx,
                }
            }
            Rule::Iceberg { front_cap } => {
                let b1 = self.hasher.bin(v, 0);
                if self.front_load(b1) < front_cap {
                    return Slot {
                        bin: b1,
                        tier: Tier::Front,
                        hash_index: 0,
                    };
                }
                // Overflow: Greedy[2] over back loads only, tie toward h₂.
                let b2 = self.hasher.bin(v, 1);
                let b3 = self.hasher.bin(v, 2);
                if self.back_load(b2) <= self.back_load(b3) {
                    Slot {
                        bin: b2,
                        tier: Tier::Back,
                        hash_index: 1,
                    }
                } else {
                    Slot {
                        bin: b3,
                        tier: Tier::Back,
                        hash_index: 2,
                    }
                }
            }
        }
    }

    /// Inserts `ball`, returning its slot.
    ///
    /// # Panics
    /// Panics if `ball` is already present.
    pub fn insert(&mut self, ball: u64) -> Slot {
        assert!(!self.contains(ball), "ball {ball} double-inserted");
        let slot = self.placement(ball);
        self.bins[slot.bin as usize].push((ball, slot));
        slot
    }

    /// Removes `ball` if present, returning the slot it occupied.
    pub fn remove(&mut self, ball: u64) -> Option<Slot> {
        let slot = self.slot_of(ball)?;
        let bin = &mut self.bins[slot.bin as usize];
        let pos = bin
            .iter()
            .position(|&(id, _)| id == ball)
            // atp-lint: allow(unwrap-policy, reason = "invariant: slot_of located this ball in the table just above")
            .expect("slot_of found it");
        bin.remove(pos);
        Some(slot)
    }

    /// Maximum total load across bins.
    pub fn max_load(&self) -> u32 {
        self.bins.iter().map(|b| b.len() as u32).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_ballsbins::Game;

    #[test]
    fn naive_matches_real_on_a_fixed_run() {
        for rule in [
            Rule::OneChoice,
            Rule::Greedy { d: 2 },
            Rule::Greedy { d: 4 },
            Rule::Iceberg { front_cap: 2 },
        ] {
            let mut real = Game::new(9, 8, rule);
            let mut naive = NaiveGame::new(9, 8, rule);
            for ball in 0..100u64 {
                assert_eq!(
                    real.insert(ball),
                    naive.insert(ball),
                    "{rule:?} ball {ball}"
                );
            }
            for b in 0..8 {
                assert_eq!(real.load(b), naive.load(b));
                assert_eq!(real.front_load(b), naive.front_load(b));
                assert_eq!(real.back_load(b), naive.back_load(b));
            }
            for ball in (0..100u64).step_by(3) {
                assert_eq!(real.remove(ball), naive.remove(ball));
            }
            assert_eq!(real.len(), naive.len());
            assert_eq!(real.max_load(), naive.max_load());
        }
    }

    #[test]
    fn slot_of_tracks_inserts() {
        let mut g = NaiveGame::new(3, 16, Rule::Iceberg { front_cap: 1 });
        for ball in 0..50u64 {
            let s = g.insert(ball);
            assert_eq!(g.slot_of(ball), Some(s));
        }
        assert!(!g.is_empty());
        assert_eq!(g.bins(), 16);
        assert_eq!(g.len(), 50);
    }
}
