//! Naive reference models ("oracles") for every randomized subsystem.
//!
//! Each oracle is the *obvious* implementation of a subsystem's contract —
//! exhaustive scans, flat maps, quadratic lookahead — deliberately too
//! slow for simulation but trivially auditable. Differential tests
//! (`crates/check/tests/`) drive each production implementation and its
//! oracle over identical generated inputs and fail on the first diverging
//! step:
//!
//! | family        | oracle                                      | systems under test                          |
//! |---------------|---------------------------------------------|---------------------------------------------|
//! | balls-and-bins| [`NaiveGame`] (exhaustive bin scan)         | `Game` under `OneChoice`/`Greedy`/`Iceberg` |
//! | TLB           | [`LinearTlb`] (linear-scan LRU)             | `Tlb`, `SetAssocTlb`, `TwoLevelTlb`, `SplitTlb` |
//! | ASID TLB      | [`LinearAsidTlb`] (tagged linear-scan LRU)  | `AsidTlb` (private/global probe, ASID flush) |
//! | TLB policies  | [`LinearPolicyTlb`] (linear scan per policy)| fused `Tlb<_, P>` for LRU/FIFO/CLOCK/SIEVE  |
//! | page table    | [`MapPageTable`] (flat `HashMap`)           | `radix`, `hash_table`, `pwc`, `nested`      |
//! | OPT           | [`opt_misses_naive`] (exhaustive lookahead) | `opt::opt_misses`                           |
//! | batching      | [`run_single_step`] (unbatched driver)      | `run_batched` over all seven managers       |

pub mod asid_tlb;
pub mod ballsbins;
pub mod batching;
pub mod belady;
pub mod pagetable;
pub mod policy_tlb;
pub mod tlb;

pub use asid_tlb::LinearAsidTlb;
pub use ballsbins::NaiveGame;
pub use batching::{counters_modulo_batches, run_single_step};
pub use belady::opt_misses_naive;
pub use pagetable::MapPageTable;
pub use policy_tlb::{LinearPolicyTlb, RefPolicy};
pub use tlb::LinearTlb;
