//! Workload generators for the Section 6 experiments (and beyond).
//!
//! Every generator is a seeded, deterministic `Iterator<Item = VirtPage>`:
//!
//! * [`Bimodal`] — Figure 1a: 99.99% of accesses uniform in a "hot" region,
//!   the rest uniform over the whole virtual address space;
//! * [`ParetoWalk`] — Figure 1b: a random walk on a graph whose nodes are
//!   pages, each with a logarithmic number of out-edges whose destinations
//!   are Pareto-distributed (`P(page i) ∝ i^{−α−1}`, α = 0.01);
//! * [`graph500`] — Figure 1c: an R-MAT (Kronecker) graph per the graph500
//!   spec, laid out as CSR in a simulated address space, traversed by BFS
//!   with every data-structure access recorded at page granularity (our
//!   substitute for the paper's recorded trace — see DESIGN.md);
//! * [`basic`] — uniform, sequential, strided, Zipf, and phased working-set
//!   generators for tests and ablations.
//!
//! The Zipf sampler ([`zipf::Zipf`]) uses Hörmann's rejection-inversion
//! method, exact for any exponent > 0 (including the near-1 exponent
//! 1.01 the Pareto walk needs) and O(1) per sample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basic;
pub mod bimodal;
pub mod compose;
pub mod graph500;
pub mod hpc;
pub mod tenants;
pub mod walk;
pub mod zipf;

pub use basic::{PhasedWorkingSet, Sequential, Strided, UniformRandom, Zipfian};
pub use bimodal::Bimodal;
pub use compose::{Mix, Offset, Replay};
pub use graph500::{Graph500Config, Graph500Trace};
pub use hpc::{Gups, Stencil2d};
pub use tenants::TenantMix;
pub use walk::ParetoWalk;
pub use zipf::Zipf;
