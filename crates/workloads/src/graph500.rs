//! The Figure 1c workload: a graph500-style BFS memory trace.
//!
//! The paper replays a recorded trace of ~5 M memory accesses from a real
//! graph500 run. We do not have the authors' trace, so we *generate* the
//! equivalent (see DESIGN.md "Substitutions"): an R-MAT/Kronecker graph per
//! the graph500 specification (quadrant probabilities A = 0.57, B = 0.19,
//! C = 0.19, D = 0.05, edge factor 16), laid out as CSR arrays in a
//! simulated virtual address space, traversed by level-synchronous BFS with
//! **every** data-structure access — `xadj`, `adj`, `parent`, and the
//! frontier queue — recorded at 4 kB-page granularity.
//!
//! The resulting trace has graph500's signature behaviour: sequential bursts
//! over the queue and `xadj`/`adj` arrays interleaved with random-looking
//! `parent[]` probes across the whole footprint — friendly to huge-page TLB
//! coverage, hostile to huge-page RAM residency.

use atp_hash::CounterRng;
use atp_types::{VirtPage, PAGE_SIZE};

/// R-MAT quadrant probabilities from the graph500 spec.
const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Configuration for trace generation.
#[derive(Clone, Copy, Debug)]
pub struct Graph500Config {
    /// log₂ of the vertex count (graph500 "scale").
    pub scale: u32,
    /// Edges per vertex (graph500 default 16).
    pub edge_factor: u64,
    /// RNG seed.
    pub seed: u64,
    /// Maximum number of page accesses to record.
    pub max_accesses: usize,
}

impl Graph500Config {
    /// A laptop-scale default: scale 14 (16 k vertices, 256 k edges).
    pub fn small(seed: u64) -> Self {
        Self {
            scale: 14,
            edge_factor: 16,
            seed,
            max_accesses: 5_000_000,
        }
    }
}

/// Compressed-sparse-row adjacency (symmetrized).
struct Csr {
    xadj: Vec<u64>,
    adj: Vec<u32>,
}

fn rmat_edges(cfg: &Graph500Config) -> Vec<(u32, u32)> {
    let n_edges = (1u64 << cfg.scale) * cfg.edge_factor;
    let mut rng = CounterRng::new(cfg.seed, 0x6500);
    let mut edges = Vec::with_capacity(n_edges as usize);
    for _ in 0..n_edges {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..cfg.scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < A {
                // top-left quadrant
            } else if r < A + B {
                v |= 1;
            } else if r < A + B + C {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    edges
}

fn build_csr(n: u64, edges: &[(u32, u32)]) -> Csr {
    // Symmetrize: every edge contributes both directions (self-loops once).
    let mut degree = vec![0u64; n as usize];
    for &(u, v) in edges {
        degree[u as usize] += 1;
        if u != v {
            degree[v as usize] += 1;
        }
    }
    let mut xadj = vec![0u64; n as usize + 1];
    for i in 0..n as usize {
        xadj[i + 1] = xadj[i] + degree[i];
    }
    let mut cursor = xadj.clone();
    let mut adj = vec![0u32; xadj[n as usize] as usize];
    for &(u, v) in edges {
        adj[cursor[u as usize] as usize] = v;
        cursor[u as usize] += 1;
        if u != v {
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
    }
    Csr { xadj, adj }
}

/// A generated graph500 BFS page trace.
#[derive(Debug)]
pub struct Graph500Trace {
    trace: Vec<u64>,
    touched_pages: u64,
    vertices: u64,
    edges: u64,
    footprint_pages: u64,
}

impl Graph500Trace {
    /// Generates the graph, runs BFS from random roots, and records the
    /// page-granular trace (up to `cfg.max_accesses` accesses).
    pub fn generate(cfg: &Graph500Config) -> Self {
        let n = 1u64 << cfg.scale;
        let edges = rmat_edges(cfg);
        let csr = build_csr(n, &edges);
        let m = csr.adj.len() as u64;

        // Virtual layout (byte offsets, page-aligned regions):
        //   xadj:   (n+1) × 8 bytes
        //   adj:    m × 4 bytes
        //   parent: n × 8 bytes
        //   queue:  n × 8 bytes
        let xadj_base = 0u64;
        let adj_base = page_align(xadj_base + (n + 1) * 8);
        let parent_base = page_align(adj_base + m * 4);
        let queue_base = page_align(parent_base + n * 8);
        let footprint_pages = (queue_base + n * 8).div_ceil(PAGE_SIZE);

        let mut trace = Vec::with_capacity(cfg.max_accesses.min(1 << 24));
        let touch = |byte: u64, trace: &mut Vec<u64>| {
            trace.push(byte / PAGE_SIZE);
        };

        let mut parent = vec![u32::MAX; n as usize];
        let mut queue: Vec<u32> = Vec::with_capacity(n as usize);
        let mut rng = CounterRng::new(cfg.seed, 0xBF5);

        'outer: while trace.len() < cfg.max_accesses {
            // Pick an unvisited root (give up after a few tries — the
            // remaining unvisited vertices are likely isolated).
            let mut root = None;
            for _ in 0..64 {
                let r = rng.next_below(n) as u32;
                if parent[r as usize] == u32::MAX {
                    root = Some(r);
                    break;
                }
            }
            let Some(root) = root else { break 'outer };

            parent[root as usize] = root;
            touch(parent_base + root as u64 * 8, &mut trace);
            queue.clear();
            queue.push(root);
            touch(queue_base, &mut trace);

            let mut head = 0usize;
            while head < queue.len() {
                if trace.len() >= cfg.max_accesses {
                    break 'outer;
                }
                let v = queue[head];
                touch(queue_base + (head as u64 % n) * 8, &mut trace);
                head += 1;

                // xadj[v], xadj[v+1] (usually the same page).
                touch(xadj_base + v as u64 * 8, &mut trace);
                touch(xadj_base + (v as u64 + 1) * 8, &mut trace);
                let (lo, hi) = (csr.xadj[v as usize], csr.xadj[v as usize + 1]);
                for e in lo..hi {
                    touch(adj_base + e * 4, &mut trace);
                    let w = csr.adj[e as usize];
                    touch(parent_base + w as u64 * 8, &mut trace);
                    if parent[w as usize] == u32::MAX {
                        parent[w as usize] = v;
                        // write parent[w] — same page as the read just made;
                        // still recorded (a store is an access).
                        touch(parent_base + w as u64 * 8, &mut trace);
                        queue.push(w);
                        touch(queue_base + ((queue.len() as u64 - 1) % n) * 8, &mut trace);
                    }
                    if trace.len() >= cfg.max_accesses {
                        break 'outer;
                    }
                }
            }
        }

        let touched_pages = {
            let mut s: Vec<u64> = trace.clone();
            s.sort_unstable();
            s.dedup();
            s.len() as u64
        };

        Self {
            trace,
            touched_pages,
            vertices: n,
            edges: m,
            footprint_pages,
        }
    }

    /// The recorded page accesses.
    pub fn pages(&self) -> &[u64] {
        &self.trace
    }

    /// Iterator over the trace as `VirtPage`s.
    pub fn iter(&self) -> impl Iterator<Item = VirtPage> + '_ {
        self.trace.iter().map(|&p| VirtPage(p))
    }

    /// Number of distinct pages touched (the paper sets the cache slightly
    /// below this: 520 MB vs 525 MB touched).
    pub fn touched_pages(&self) -> u64 {
        self.touched_pages
    }

    /// Total virtual footprint in pages (all four regions).
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Vertex count.
    pub fn vertices(&self) -> u64 {
        self.vertices
    }

    /// Directed edge count after symmetrization.
    pub fn edges(&self) -> u64 {
        self.edges
    }
}

#[inline]
fn page_align(x: u64) -> u64 {
    x.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph500Trace {
        Graph500Trace::generate(&Graph500Config {
            scale: 10,
            edge_factor: 16,
            seed: 1,
            max_accesses: 200_000,
        })
    }

    #[test]
    fn trace_is_nonempty_and_bounded() {
        let t = tiny();
        assert!(!t.pages().is_empty());
        assert!(t.pages().len() <= 200_000);
        for &p in t.pages() {
            assert!(p < t.footprint_pages(), "page {p} beyond footprint");
        }
    }

    #[test]
    fn touched_is_at_most_footprint() {
        let t = tiny();
        assert!(t.touched_pages() <= t.footprint_pages());
        assert!(t.touched_pages() > 10, "BFS must touch many pages");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Graph500Trace::generate(&Graph500Config {
            scale: 9,
            edge_factor: 8,
            seed: 5,
            max_accesses: 50_000,
        });
        let b = Graph500Trace::generate(&Graph500Config {
            scale: 9,
            edge_factor: 8,
            seed: 5,
            max_accesses: 50_000,
        });
        assert_eq!(a.pages(), b.pages());
    }

    #[test]
    fn rmat_is_skewed() {
        // R-MAT with A=0.57 concentrates edges on low vertex ids.
        let cfg = Graph500Config {
            scale: 12,
            edge_factor: 16,
            seed: 2,
            max_accesses: 1,
        };
        let edges = rmat_edges(&cfg);
        let n = 1u64 << cfg.scale;
        let low_half =
            edges.iter().filter(|&&(u, _)| (u as u64) < n / 2).count() as f64 / edges.len() as f64;
        // P(source in low half) = A + B = 0.76.
        assert!((0.72..0.80).contains(&low_half), "skew {low_half}");
    }

    #[test]
    fn csr_is_consistent() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (3, 3)];
        let csr = build_csr(4, &edges);
        // Symmetrized degrees: 0:2, 1:2, 2:2, 3:1 (self-loop once).
        assert_eq!(csr.xadj, vec![0, 2, 4, 6, 7]);
        assert_eq!(csr.adj.len(), 7);
        let mut n0: Vec<u32> = csr.adj[0..2].to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn bfs_visits_reached_component() {
        // The trace length grows with max_accesses until the graph is
        // exhausted.
        let small = Graph500Trace::generate(&Graph500Config {
            scale: 9,
            edge_factor: 8,
            seed: 3,
            max_accesses: 10_000,
        });
        let big = Graph500Trace::generate(&Graph500Config {
            scale: 9,
            edge_factor: 8,
            seed: 3,
            max_accesses: 1_000_000,
        });
        assert!(big.pages().len() > small.pages().len());
    }
}
