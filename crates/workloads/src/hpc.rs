//! HPC kernel access patterns.
//!
//! Two canonical patterns from the HPC benchmarking canon, at page
//! granularity (the §1 motivation names "machine learning and graph
//! analytics" as irregular and hard to prefetch — GUPS is the standard
//! stress test for exactly that, and stencils are its regular opposite):
//!
//! * [`Gups`] — HPC Challenge RandomAccess: read-modify-write of uniformly
//!   random table entries, interleaved with sequential touches of a small
//!   substitution stream. Zero locality in the table: the TLB's worst case.
//! * [`Stencil2d`] — a blocked 5-point stencil sweep over a 2D grid stored
//!   row-major: each output row touches three input rows, so page reuse is
//!   high and strictly structured. Huge pages shine; decoupling matches.

use atp_hash::CounterRng;
use atp_types::{VirtPage, PAGE_SIZE};

/// GUPS / RandomAccess-style workload.
#[derive(Clone, Debug)]
pub struct Gups {
    rng: CounterRng,
    table_pages: u64,
    stream_pages: u64,
    stream_pos: u64,
    /// Table updates between stream touches.
    updates_per_stream: u64,
    phase: u64,
}

impl Gups {
    /// Creates a GUPS workload over a `table_pages`-page table with a
    /// `stream_pages`-page sequential substitution stream.
    pub fn new(seed: u64, table_pages: u64, stream_pages: u64) -> Self {
        assert!(table_pages > 0 && stream_pages > 0);
        Self {
            rng: CounterRng::new(seed, 0x6095),
            table_pages,
            stream_pages,
            stream_pos: 0,
            updates_per_stream: 8,
            phase: 0,
        }
    }
}

impl Iterator for Gups {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        self.phase += 1;
        if self.phase.is_multiple_of(self.updates_per_stream + 1) {
            // Sequential stream touch (laid out after the table).
            let p = self.table_pages + self.stream_pos;
            self.stream_pos = (self.stream_pos + 1) % self.stream_pages;
            Some(VirtPage(p))
        } else {
            Some(VirtPage(self.rng.next_below(self.table_pages)))
        }
    }
}

/// Blocked 5-point stencil over a row-major 2D grid of `f64`s.
///
/// Emits the page of every logical load/store: for output cell `(i, j)`,
/// reads `(i±1, j)`, `(i, j±1)`, `(i, j)` from the input array and writes
/// `(i, j)` to the output array (allocated after the input).
#[derive(Clone, Debug)]
pub struct Stencil2d {
    rows: u64,
    cols: u64,
    block: u64,
    /// Iteration state: current block origin and offset within block.
    bi: u64,
    bj: u64,
    ii: u64,
    jj: u64,
    pending: Vec<VirtPage>,
}

impl Stencil2d {
    /// Creates a stencil sweep over a `rows × cols` grid with `block`-sized
    /// tiles (cache blocking).
    pub fn new(rows: u64, cols: u64, block: u64) -> Self {
        assert!(rows >= 3 && cols >= 3 && block > 0);
        Self {
            rows,
            cols,
            block,
            bi: 1,
            bj: 1,
            ii: 0,
            jj: 0,
            pending: Vec::new(),
        }
    }

    const ELEM: u64 = 8; // f64

    fn elems_per_page() -> u64 {
        PAGE_SIZE / Self::ELEM
    }

    fn page_of(&self, array: u64, i: u64, j: u64) -> VirtPage {
        let index = i * self.cols + j;
        let array_pages = (self.rows * self.cols).div_ceil(Self::elems_per_page());
        VirtPage(array * array_pages + index / Self::elems_per_page())
    }

    fn emit_cell(&mut self, i: u64, j: u64) {
        let reads = [(i, j), (i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)];
        for (ri, rj) in reads {
            let p = self.page_of(0, ri, rj);
            self.pending.push(p);
        }
        let out = self.page_of(1, i, j);
        self.pending.push(out);
    }

    fn advance(&mut self) -> bool {
        // Interior sweep over blocks; wraps around forever.
        let i = self.bi + self.ii;
        let j = self.bj + self.jj;
        if i < self.rows - 1 && j < self.cols - 1 {
            self.emit_cell(i, j);
        }
        // Advance within block, then across blocks.
        self.jj += 1;
        if self.jj >= self.block || self.bj + self.jj >= self.cols - 1 {
            self.jj = 0;
            self.ii += 1;
            if self.ii >= self.block || self.bi + self.ii >= self.rows - 1 {
                self.ii = 0;
                self.bj += self.block;
                if self.bj >= self.cols - 1 {
                    self.bj = 1;
                    self.bi += self.block;
                    if self.bi >= self.rows - 1 {
                        self.bi = 1; // next sweep
                    }
                }
            }
        }
        !self.pending.is_empty()
    }
}

impl Iterator for Stencil2d {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        while self.pending.is_empty() {
            self.advance();
        }
        Some(self.pending.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gups_covers_table_uniformly() {
        let mut g = Gups::new(1, 1000, 10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            let p = g.next().unwrap().0;
            assert!(p < 1010);
            seen.insert(p);
        }
        assert!(seen.len() > 990, "coverage {}", seen.len());
    }

    #[test]
    fn gups_interleaves_stream() {
        let mut g = Gups::new(2, 100, 5);
        let stream_hits = (0..900).filter(|_| g.next().unwrap().0 >= 100).count();
        // One stream touch per 9 accesses.
        assert_eq!(stream_hits, 100);
    }

    #[test]
    fn stencil_pages_stay_in_two_arrays() {
        let s = Stencil2d::new(64, 64, 8);
        let array_pages = (64u64 * 64).div_ceil(512);
        for p in s.take(10_000) {
            assert!(p.0 < 2 * array_pages, "page {p:?} out of bounds");
        }
    }

    #[test]
    fn stencil_has_strong_page_locality() {
        use atp_trace::TraceStats;
        let trace: Vec<VirtPage> = Stencil2d::new(256, 256, 16).take(30_000).collect();
        let stats = TraceStats::compute(&trace);
        // 512 f64s per page: within a cell the (i,j±1) reads share the
        // (i,j) page while the i±1 rows usually live one page away —
        // so roughly a third of transitions stay on-page and reuse is deep.
        assert!(stats.same_page_rate > 0.25, "rate {}", stats.same_page_rate);
        assert!(stats.mean_reuse > 50.0, "reuse {}", stats.mean_reuse);
    }

    #[test]
    fn stencil_emits_six_accesses_per_cell() {
        let mut s = Stencil2d::new(16, 16, 4);
        // First cell (1,1): 5 reads + 1 write.
        let first_six: Vec<u64> = (0..6).map(|_| s.next().unwrap().0).collect();
        assert_eq!(first_six.len(), 6);
        // The write goes to the second array.
        let array_pages = (16u64 * 16).div_ceil(512);
        assert!(first_six[5] >= array_pages);
    }

    #[test]
    fn deterministic() {
        let a: Vec<u64> = Gups::new(7, 500, 5).take(1000).map(|p| p.0).collect();
        let b: Vec<u64> = Gups::new(7, 500, 5).take(1000).map(|p| p.0).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = Stencil2d::new(32, 32, 8).take(1000).map(|p| p.0).collect();
        let d: Vec<u64> = Stencil2d::new(32, 32, 8).take(1000).map(|p| p.0).collect();
        assert_eq!(c, d);
    }
}
