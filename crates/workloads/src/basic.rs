//! Elementary generators for tests, warmups, and ablations.

use crate::zipf::Zipf;
use atp_hash::CounterRng;
use atp_types::VirtPage;

/// Uniformly random pages over `[0, pages)`.
#[derive(Clone, Debug)]
pub struct UniformRandom {
    rng: CounterRng,
    pages: u64,
}

impl UniformRandom {
    /// Creates the generator.
    pub fn new(seed: u64, pages: u64) -> Self {
        assert!(pages > 0);
        Self {
            rng: CounterRng::new(seed, 0x0F1),
            pages,
        }
    }
}

impl Iterator for UniformRandom {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        Some(VirtPage(self.rng.next_below(self.pages)))
    }
}

/// A wrapping sequential scan `0, 1, 2, …` — the huge-page best case.
#[derive(Clone, Debug)]
pub struct Sequential {
    next: u64,
    pages: u64,
}

impl Sequential {
    /// Creates the generator.
    pub fn new(pages: u64) -> Self {
        assert!(pages > 0);
        Self { next: 0, pages }
    }
}

impl Iterator for Sequential {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        let out = self.next;
        self.next = (self.next + 1) % self.pages;
        Some(VirtPage(out))
    }
}

/// A strided scan — defeats huge-page coverage when the stride exceeds the
/// huge-page size.
#[derive(Clone, Debug)]
pub struct Strided {
    next: u64,
    stride: u64,
    pages: u64,
}

impl Strided {
    /// Creates the generator.
    pub fn new(stride: u64, pages: u64) -> Self {
        assert!(pages > 0 && stride > 0);
        Self {
            next: 0,
            stride,
            pages,
        }
    }
}

impl Iterator for Strided {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        let out = self.next;
        self.next = (self.next + self.stride) % self.pages;
        Some(VirtPage(out))
    }
}

/// Zipf-distributed independent accesses (rank 1 = page 0).
#[derive(Clone, Debug)]
pub struct Zipfian {
    rng: CounterRng,
    zipf: Zipf,
}

impl Zipfian {
    /// Creates the generator with exponent `s`.
    pub fn new(seed: u64, pages: u64, s: f64) -> Self {
        Self {
            rng: CounterRng::new(seed, 0x21F),
            zipf: Zipf::new(pages, s),
        }
    }
}

impl Iterator for Zipfian {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        Some(VirtPage(self.zipf.sample(&mut self.rng) - 1))
    }
}

/// Phased working sets: uniform accesses within a working set whose base
/// jumps to a fresh random location every `phase_len` accesses — the
/// classic model of program phase behaviour (Denning's working sets).
#[derive(Clone, Debug)]
pub struct PhasedWorkingSet {
    rng: CounterRng,
    pages: u64,
    set_size: u64,
    phase_len: u64,
    base: u64,
    remaining: u64,
}

impl PhasedWorkingSet {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics if `set_size` is 0 or exceeds `pages`, or `phase_len == 0`.
    pub fn new(seed: u64, pages: u64, set_size: u64, phase_len: u64) -> Self {
        assert!(set_size > 0 && set_size <= pages && phase_len > 0);
        let mut rng = CounterRng::new(seed, 0x9A5E);
        let base = rng.next_below(pages - set_size + 1);
        Self {
            rng,
            pages,
            set_size,
            phase_len,
            base,
            remaining: phase_len,
        }
    }
}

impl Iterator for PhasedWorkingSet {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        if self.remaining == 0 {
            self.base = self.rng.next_below(self.pages - self.set_size + 1);
            self.remaining = self.phase_len;
        }
        self.remaining -= 1;
        Some(VirtPage(self.base + self.rng.next_below(self.set_size)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps() {
        let s: Vec<u64> = Sequential::new(3).take(7).map(|p| p.0).collect();
        assert_eq!(s, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn strided_pattern() {
        let s: Vec<u64> = Strided::new(4, 10).take(5).map(|p| p.0).collect();
        assert_eq!(s, vec![0, 4, 8, 2, 6]);
    }

    #[test]
    fn uniform_in_bounds_and_spread() {
        let mut seen = std::collections::HashSet::new();
        for p in UniformRandom::new(1, 100).take(5000) {
            assert!(p.0 < 100);
            seen.insert(p.0);
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn zipfian_head_is_hot() {
        let head = Zipfian::new(2, 1000, 1.5)
            .take(10_000)
            .filter(|p| p.0 < 10)
            .count();
        assert!(head > 6_000, "zipf(1.5) head hits: {head}");
    }

    #[test]
    fn phases_shift_base() {
        let mut w = PhasedWorkingSet::new(3, 1 << 20, 64, 100);
        let first: Vec<u64> = (&mut w).take(100).map(|p| p.0).collect();
        let second: Vec<u64> = (&mut w).take(100).map(|p| p.0).collect();
        let min1 = *first.iter().min().unwrap();
        let min2 = *second.iter().min().unwrap();
        assert_ne!(min1 / 64, min2 / 64, "phase base should move");
        // All accesses within a 64-page window per phase.
        assert!(first.iter().max().unwrap() - min1 < 64);
        assert!(second.iter().max().unwrap() - min2 < 64);
    }

    #[test]
    fn phased_stays_in_bounds() {
        for p in PhasedWorkingSet::new(9, 128, 128, 10).take(1000) {
            assert!(p.0 < 128);
        }
    }
}
