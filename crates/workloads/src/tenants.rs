//! Multi-tenant workload generation.
//!
//! [`TenantMix`] turns the single-tenant generators' recipe inside out:
//! instead of one page stream, it schedules N tenants in quanta. Each
//! quantum picks a tenant by a Zipf draw over tenant ranks (a few
//! tenants dominate, a long tail barely runs — the "tenant-activity
//! skew"), emits a [`TenantOp::Switch`], then `quantum` Zipf-distributed
//! accesses into that tenant's private page range, and finally — with
//! probability `churn` — retires the tenant so its ASID recycles cold.
//!
//! Memory is O(1) in the tenant count: a tenant's page stream for
//! quantum *q* is a pure function of `(seed, asid, q)` (a fresh
//! [`CounterRng`] keyed by both), so driving millions of lightweight
//! tenants needs no per-tenant state. The cost of that purity is that a
//! tenant restarts its Zipf stream each quantum — which is exactly the
//! hot-set re-touch behaviour a rescheduled process shows anyway.

use crate::zipf::Zipf;
use atp_hash::CounterRng;
use atp_types::{Asid, TenantOp, VirtPage};

/// Key stream for the scheduler's RNG (tenant draws + churn coin).
const STREAM_SCHED: u64 = 0x7E4A;

/// Key stream for per-(tenant, quantum) page RNGs.
const STREAM_PAGES: u64 = 0x7E4B;

/// A context-switch-aware multi-tenant workload: an infinite
/// `Iterator<Item = TenantOp>`.
#[derive(Clone, Debug)]
pub struct TenantMix {
    seed: u64,
    sched: CounterRng,
    tenant_zipf: Zipf,
    page_zipf: Zipf,
    quantum: u64,
    churn: f64,
    /// Quantum counter; keys the per-quantum page RNG.
    q: u64,
    current: Asid,
    page_rng: CounterRng,
    /// Accesses left in the current quantum.
    remaining: u64,
    /// Retire `current` before scheduling the next quantum.
    pending_retire: bool,
}

impl TenantMix {
    /// Creates the generator.
    ///
    /// * `tenants` — number of address spaces N (ASIDs `0..N`);
    /// * `vspan` — private virtual pages per tenant;
    /// * `tenant_skew` — Zipf exponent over tenant ranks (rank 1 =
    ///   ASID 0 is the hottest tenant);
    /// * `page_skew` — Zipf exponent of each tenant's page stream;
    /// * `quantum` — accesses per scheduling slice;
    /// * `churn` — probability a tenant is retired at the end of its
    ///   quantum (ASIDs recycle; `0.0` disables churn).
    ///
    /// # Panics
    /// Panics if `tenants`, `vspan`, or `quantum` is zero, or `churn`
    /// is outside `[0, 1]`.
    pub fn new(
        seed: u64,
        tenants: u64,
        vspan: u64,
        tenant_skew: f64,
        page_skew: f64,
        quantum: u64,
        churn: f64,
    ) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        assert!(vspan > 0, "tenant page span must be nonzero");
        assert!(quantum > 0, "quantum must be nonzero");
        assert!((0.0..=1.0).contains(&churn), "churn is a probability");
        Self {
            seed,
            sched: CounterRng::new(seed, STREAM_SCHED),
            tenant_zipf: Zipf::new(tenants, tenant_skew),
            page_zipf: Zipf::new(vspan, page_skew),
            quantum,
            churn,
            q: 0,
            current: Asid::SINGLE,
            page_rng: CounterRng::new(seed, STREAM_PAGES),
            remaining: 0,
            pending_retire: false,
        }
    }
}

impl Iterator for TenantMix {
    type Item = TenantOp;

    fn next(&mut self) -> Option<TenantOp> {
        if self.remaining > 0 {
            self.remaining -= 1;
            if self.remaining == 0 && self.churn > 0.0 && self.sched.next_bool(self.churn) {
                self.pending_retire = true;
            }
            let page = self.page_zipf.sample(&mut self.page_rng) - 1;
            return Some(TenantOp::Access(VirtPage(page)));
        }
        if self.pending_retire {
            self.pending_retire = false;
            return Some(TenantOp::Retire(self.current));
        }
        // New quantum: draw the tenant, restart its pure page stream.
        self.q += 1;
        let rank = self.tenant_zipf.sample(&mut self.sched);
        self.current = Asid((rank - 1) as u32);
        self.page_rng = CounterRng::new2(self.seed ^ STREAM_PAGES, self.current.0 as u64, self.q);
        self.remaining = self.quantum;
        Some(TenantOp::Switch(self.current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_hash::FxHashSet;

    fn mix() -> TenantMix {
        TenantMix::new(42, 100, 1 << 12, 1.1, 1.01, 64, 0.05)
    }

    #[test]
    fn deterministic_across_clones() {
        let a: Vec<TenantOp> = mix().take(10_000).collect();
        let b: Vec<TenantOp> = mix().take(10_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn structure_is_switch_then_quantum_accesses() {
        let ops: Vec<TenantOp> = TenantMix::new(7, 4, 256, 1.2, 1.1, 8, 0.0)
            .take(45)
            .collect();
        // With churn 0: strictly [Switch, 8 × Access] repeating.
        for (i, op) in ops.iter().enumerate() {
            if i % 9 == 0 {
                assert!(matches!(op, TenantOp::Switch(_)), "op {i} should switch");
            } else {
                assert!(matches!(op, TenantOp::Access(_)), "op {i} should access");
            }
        }
    }

    #[test]
    fn pages_stay_in_span_and_asids_in_range() {
        for op in mix().take(50_000) {
            match op {
                TenantOp::Access(v) => assert!(v.0 < 1 << 12),
                TenantOp::Switch(a) | TenantOp::Retire(a) => assert!(a.0 < 100),
            }
        }
    }

    #[test]
    fn tenant_skew_concentrates_activity() {
        let mut switches_to_rank1 = 0u64;
        let mut total = 0u64;
        for op in TenantMix::new(3, 1000, 64, 1.2, 1.1, 4, 0.0).take(100_000) {
            if let TenantOp::Switch(a) = op {
                total += 1;
                if a.0 == 0 {
                    switches_to_rank1 += 1;
                }
            }
        }
        assert!(
            switches_to_rank1 * 5 > total,
            "rank-1 tenant got {switches_to_rank1}/{total} quanta; zipf(1.2) should give it ≳ 20%"
        );
    }

    #[test]
    fn churn_retires_and_recycles() {
        let ops: Vec<TenantOp> = TenantMix::new(11, 8, 64, 1.1, 1.1, 4, 0.5)
            .take(20_000)
            .collect();
        let mut retired: FxHashSet<u32> = FxHashSet::default();
        let mut recycled = false;
        for op in &ops {
            match op {
                TenantOp::Retire(a) => {
                    retired.insert(a.0);
                }
                TenantOp::Switch(a) if retired.contains(&a.0) => {
                    recycled = true;
                }
                _ => {}
            }
        }
        assert!(!retired.is_empty(), "churn 0.5 must retire someone");
        assert!(recycled, "retired ASIDs must come back (recycling)");
        // A retirement always follows the retiree's own quantum.
        for w in ops.windows(2) {
            if let TenantOp::Retire(a) = w[1] {
                assert!(matches!(w[0], TenantOp::Access(_)), "retire ends a quantum");
                let _ = a;
            }
        }
    }

    #[test]
    fn millions_of_tenants_run_in_constant_memory() {
        // 2^21 tenants; generation must not allocate per tenant.
        let mut mix = TenantMix::new(1, 1 << 21, 1 << 10, 1.05, 1.1, 16, 0.01);
        let mut distinct: FxHashSet<u32> = FxHashSet::default();
        for op in mix.by_ref().take(100_000) {
            if let TenantOp::Switch(a) = op {
                distinct.insert(a.0);
            }
        }
        assert!(
            distinct.len() > 100,
            "long tail should surface many tenants"
        );
    }
}
