//! The Figure 1a workload: bimodal uniform accesses.
//!
//! "A synthetic stress test that frequently accesses one 'hot' page and
//! infrequently accesses another 'cold' page. The 'hot' page is selected at
//! random from a 1 GB region of memory, within a 64 GB virtual address
//! space; the 'cold' page is selected at random from the entire virtual
//! address space." 99.99% of accesses are hot.
//!
//! The hot region is a contiguous run of pages placed at a random
//! hot-region-aligned offset inside the address space, as in the paper.

use atp_hash::CounterRng;
use atp_types::VirtPage;

/// Bimodal uniform workload.
#[derive(Clone, Debug)]
pub struct Bimodal {
    rng: CounterRng,
    total_pages: u64,
    hot_base: u64,
    hot_pages: u64,
    hot_fraction: f64,
}

impl Bimodal {
    /// Creates the workload: `hot_pages` contiguous hot pages inside
    /// `total_pages`, hit with probability `hot_fraction`.
    ///
    /// # Panics
    /// Panics if `hot_pages == 0`, `hot_pages > total_pages`, or
    /// `hot_fraction ∉ [0, 1]`.
    pub fn new(seed: u64, total_pages: u64, hot_pages: u64, hot_fraction: f64) -> Self {
        assert!(hot_pages > 0 && hot_pages <= total_pages);
        assert!((0.0..=1.0).contains(&hot_fraction));
        let mut rng = CounterRng::new(seed, 0xB1B0);
        // Random placement of the hot region, aligned to its own size when
        // possible so huge pages of any size ≤ hot_pages tile it cleanly.
        let slots = total_pages / hot_pages;
        let hot_base = if slots > 1 {
            rng.next_below(slots) * hot_pages
        } else {
            0
        };
        Self {
            rng,
            total_pages,
            hot_base,
            hot_pages,
            hot_fraction,
        }
    }

    /// The paper's exact configuration: 64 GB VA, 1 GB hot region, 99.99%
    /// hot — expressed in 4 kB pages.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, 1 << 24, 1 << 18, 0.9999)
    }

    /// A scaled-down configuration preserving the 64:1 space ratio.
    pub fn scaled(seed: u64, total_pages: u64) -> Self {
        Self::new(seed, total_pages, (total_pages / 64).max(1), 0.9999)
    }

    /// First page of the hot region.
    pub fn hot_base(&self) -> u64 {
        self.hot_base
    }

    /// Total pages in the address space.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }
}

impl Iterator for Bimodal {
    type Item = VirtPage;

    fn next(&mut self) -> Option<VirtPage> {
        let page = if self.rng.next_bool(self.hot_fraction) {
            self.hot_base + self.rng.next_below(self.hot_pages)
        } else {
            self.rng.next_below(self.total_pages)
        };
        Some(VirtPage(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_hot_fraction() {
        let mut w = Bimodal::new(1, 1 << 16, 1 << 10, 0.99);
        let (base, hot) = (w.hot_base(), 1 << 10);
        let n = 100_000;
        let in_hot = (0..n)
            .filter(|_| {
                let p = w.next().unwrap().0;
                p >= base && p < base + hot
            })
            .count();
        let frac = in_hot as f64 / n as f64;
        // Cold accesses also land in the hot region ~1/64 of the time.
        assert!(frac > 0.985 && frac <= 1.0, "hot fraction {frac}");
    }

    #[test]
    fn pages_stay_in_bounds() {
        let mut w = Bimodal::new(2, 4096, 64, 0.5);
        for _ in 0..10_000 {
            assert!(w.next().unwrap().0 < 4096);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = Bimodal::new(3, 1 << 16, 1 << 10, 0.9999)
            .take(1000)
            .map(|p| p.0)
            .collect();
        let b: Vec<u64> = Bimodal::new(3, 1 << 16, 1 << 10, 0.9999)
            .take(1000)
            .map(|p| p.0)
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = Bimodal::new(4, 1 << 16, 1 << 10, 0.9999)
            .take(1000)
            .map(|p| p.0)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn hot_region_is_aligned() {
        for seed in 0..20 {
            let w = Bimodal::new(seed, 1 << 16, 1 << 10, 0.9999);
            assert_eq!(w.hot_base() % (1 << 10), 0);
            assert!(w.hot_base() + (1 << 10) <= 1 << 16);
        }
    }

    #[test]
    fn paper_scale_dimensions() {
        let w = Bimodal::paper(0);
        assert_eq!(w.total_pages(), 1 << 24); // 64 GB of 4 kB pages
    }

    #[test]
    fn cold_accesses_cover_address_space() {
        // With fraction 0, accesses are uniform over everything.
        let mut w = Bimodal::new(5, 1024, 16, 0.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(w.next().unwrap().0);
        }
        assert!(seen.len() > 1000 - 50, "coverage {}", seen.len());
    }
}
