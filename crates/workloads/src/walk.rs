//! The Figure 1b workload: a random walk on an implicit Pareto graph.
//!
//! "A synthetic workload that performs a random walk on a large graph,
//! modeling a PageRank-like computation. We model each page as a node in
//! the graph, where each node has a logarithmic number of outgoing edges.
//! The destination page of each outgoing edge is chosen from a Pareto
//! distribution over all the pages in the system, with Pareto constant
//! α = 0.01 (i.e., the probability of selecting the i-th page is
//! proportional to i^{−α−1})."
//!
//! The graph is *implicit*: edge `j` of node `v` is a pure function of
//! `(seed, v, j)` via a counter-keyed RNG feeding the Zipf sampler, so the
//! multi-gigabyte edge list never materializes, yet every revisit of `v`
//! sees the same out-edges.

use crate::zipf::Zipf;
use atp_hash::CounterRng;
use atp_types::VirtPage;

/// Pareto random-walk workload.
#[derive(Clone, Debug)]
pub struct ParetoWalk {
    seed: u64,
    pages: u64,
    out_degree: u64,
    zipf: Zipf,
    rng: CounterRng,
    current: u64,
}

impl ParetoWalk {
    /// Creates a walk over `pages` nodes with Pareto constant `alpha`
    /// (edge destinations `∝ i^{−α−1}`).
    ///
    /// # Panics
    /// Panics if `pages == 0` or `alpha < 0`.
    pub fn new(seed: u64, pages: u64, alpha: f64) -> Self {
        assert!(pages > 0, "pages must be nonzero");
        assert!(alpha >= 0.0, "alpha must be nonnegative");
        let out_degree = (pages.max(2) as f64).log2().ceil().max(1.0) as u64;
        let mut rng = CounterRng::new(seed, 0x3A1C);
        let current = rng.next_below(pages);
        Self {
            seed,
            pages,
            out_degree,
            zipf: Zipf::new(pages, alpha + 1.0),
            rng,
            current,
        }
    }

    /// The paper's configuration: 64 GB of 4 kB pages, α = 0.01.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, 1 << 24, 0.01)
    }

    /// Out-degree of every node (⌈log₂ pages⌉).
    pub fn out_degree(&self) -> u64 {
        self.out_degree
    }

    /// Destination of edge `j` of node `v` — the implicit adjacency
    /// function (stable across visits).
    pub fn edge(&self, v: u64, j: u64) -> u64 {
        let mut edge_rng = CounterRng::new2(self.seed ^ 0xED6E, v, j);
        self.zipf.sample(&mut edge_rng) - 1 // ranks are 1-based
    }

    /// Current node of the walk.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Number of pages (nodes) in the graph.
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl Iterator for ParetoWalk {
    type Item = VirtPage;

    fn next(&mut self) -> Option<VirtPage> {
        let j = self.rng.next_below(self.out_degree);
        self.current = self.edge(self.current, j);
        Some(VirtPage(self.current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_stable() {
        let w = ParetoWalk::new(1, 1 << 16, 0.01);
        for v in [0u64, 17, 999] {
            for j in 0..w.out_degree() {
                assert_eq!(w.edge(v, j), w.edge(v, j));
            }
        }
    }

    #[test]
    fn out_degree_is_logarithmic() {
        assert_eq!(ParetoWalk::new(0, 1 << 16, 0.01).out_degree(), 16);
        assert_eq!(ParetoWalk::new(0, 1 << 24, 0.01).out_degree(), 24);
    }

    #[test]
    fn walk_stays_in_bounds() {
        let mut w = ParetoWalk::new(2, 4096, 0.01);
        for _ in 0..50_000 {
            assert!(w.next().unwrap().0 < 4096);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = ParetoWalk::new(3, 1 << 14, 0.01)
            .take(500)
            .map(|p| p.0)
            .collect();
        let b: Vec<u64> = ParetoWalk::new(3, 1 << 14, 0.01)
            .take(500)
            .map(|p| p.0)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_alpha_spreads_but_keeps_a_head() {
        // α = 0.01 (Zipf exponent 1.01): the harmonic-like normalizer is
        // only ~ln n, so low ranks form a genuine hot head while the tail
        // still gets visited across the whole address space — exactly the
        // mix that makes Figure 1b interesting.
        let n = 1u64 << 14;
        let mut w = ParetoWalk::new(4, n, 0.01);
        let mut seen = std::collections::HashSet::new();
        let mut max_page = 0u64;
        for _ in 0..20_000 {
            let p = w.next().unwrap().0;
            max_page = max_page.max(p);
            seen.insert(p);
        }
        assert!(
            seen.len() > 1_500 && seen.len() < 15_000,
            "unexpected spread: {}",
            seen.len()
        );
        assert!(max_page > n / 2, "tail never reached: max {max_page}");
    }

    #[test]
    fn large_alpha_concentrates() {
        // Sanity check of the Pareto knob: α = 3 (s = 4) pins the walk to
        // low-ranked pages.
        let mut w = ParetoWalk::new(5, 1 << 14, 3.0);
        let low = (0..10_000).filter(|_| w.next().unwrap().0 < 16).count();
        assert!(low > 9_000, "only {low} of 10k steps in the head");
    }
}
