//! Zipf sampling by rejection inversion (Hörmann & Derflinger).
//!
//! Samples ranks `k ∈ {1, …, n}` with `P(k) ∝ k^{−s}`, in O(1) expected time
//! and O(1) memory, for any `s > 0` and any `n` — no precomputed tables, so
//! it works for the paper's 16-million-page address spaces and the
//! near-critical exponent `s = 1.01` of the Pareto walk.

use atp_hash::CounterRng;

/// A Zipf(n, s) sampler.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "n must be nonzero");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        let nf = n as f64;
        let h_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_n = Self::h_integral(nf + 0.5, s);
        let threshold = 2.0 - Self::h_integral_inv(Self::h_integral(2.5, s) - Self::h(2.5, s), s);
        Self {
            n: nf,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    /// `H(x) = ∫ t^{−s} dt`, the integral of the frequency function.
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        Self::helper2((1.0 - s) * log_x) * log_x
    }

    /// `h(x) = x^{−s}`.
    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// Inverse of `h_integral`.
    fn h_integral_inv(x: f64, s: f64) -> f64 {
        let mut t = x * (1.0 - s);
        if t < -1.0 {
            // Guard against numerical round-off (as in the reference impl).
            t = -1.0;
        }
        (Self::helper1(t) * x).exp()
    }

    /// `ln(1+x)/x`, stable near 0.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
        }
    }

    /// `(e^x − 1)/x`, stable near 0.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
        }
    }

    /// Draws a rank in `1..=n` using `rng`.
    pub fn sample(&self, rng: &mut CounterRng) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inv(u, self.s);
            let k64 = x.clamp(1.0, self.n);
            let k = (k64 + 0.5).floor().clamp(1.0, self.n);
            if k64 - x <= self.threshold
                || u >= Self::h_integral(k + 0.5, self.s) - Self::h(k, self.s)
            {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact Zipf pmf for validation.
    fn pmf(n: u64, s: f64) -> Vec<f64> {
        let z: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        (1..=n).map(|k| (k as f64).powf(-s) / z).collect()
    }

    fn histogram(n: u64, s: f64, samples: u64, seed: u64) -> Vec<f64> {
        let d = Zipf::new(n, s);
        let mut rng = CounterRng::new(seed, 0);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = d.sample(&mut rng);
            assert!((1..=n).contains(&k), "rank {k} out of range");
            counts[(k - 1) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    fn matches_exact_pmf_small_n() {
        for &s in &[0.5, 1.0, 1.01, 2.0] {
            let n = 10;
            let emp = histogram(n, s, 200_000, 42);
            let exact = pmf(n, s);
            for k in 0..n as usize {
                let err = (emp[k] - exact[k]).abs();
                assert!(
                    err < 0.01,
                    "s={s} k={} emp={} exact={}",
                    k + 1,
                    emp[k],
                    exact[k]
                );
            }
        }
    }

    #[test]
    fn head_mass_for_near_critical_exponent() {
        // s = 1.01 over a large universe: rank 1 gets p ≈ 1/H where H ≈
        // (1 - n^{-0.01})/0.01 — heavy tail, small but nontrivial head.
        let n = 1 << 20;
        let emp = histogram(n, 1.01, 300_000, 7);
        let exact = pmf(n, 1.01);
        assert!(
            (emp[0] - exact[0]).abs() < 0.005,
            "head mass off: {} vs {}",
            emp[0],
            exact[0]
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let d = Zipf::new(1000, 1.2);
        let mut r1 = CounterRng::new(5, 5);
        let mut r2 = CounterRng::new(5, 5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), d.sample(&mut r2));
        }
    }

    #[test]
    fn n_one_always_returns_one() {
        let d = Zipf::new(1, 1.5);
        let mut rng = CounterRng::new(0, 0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn high_exponent_concentrates_on_head() {
        let emp = histogram(100, 4.0, 50_000, 9);
        assert!(emp[0] > 0.9, "rank 1 should dominate at s=4: {}", emp[0]);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn rejects_nonpositive_exponent() {
        Zipf::new(10, 0.0);
    }
}
