//! Workload combinators: replay, mixing, and region remapping.
//!
//! Real experiments compose primitives: replay a recorded trace, interleave
//! a foreground workload with background scans (the multi-tenant pressure
//! Ingens [30] targets), or shift a generator into a region of a larger
//! address space. These adapters keep every composition deterministic.

use atp_hash::CounterRng;
use atp_types::VirtPage;

/// Replays a recorded trace (optionally cycling).
#[derive(Clone, Debug)]
pub struct Replay {
    pages: Vec<VirtPage>,
    pos: usize,
    cycle: bool,
}

impl Replay {
    /// Replays `pages` once.
    pub fn once(pages: Vec<VirtPage>) -> Self {
        Self {
            pages,
            pos: 0,
            cycle: false,
        }
    }

    /// Replays `pages` forever (wrapping).
    ///
    /// # Panics
    /// Panics if `pages` is empty.
    pub fn cycling(pages: Vec<VirtPage>) -> Self {
        assert!(!pages.is_empty(), "cannot cycle an empty trace");
        Self {
            pages,
            pos: 0,
            cycle: true,
        }
    }
}

impl Iterator for Replay {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        if self.pos >= self.pages.len() {
            if !self.cycle {
                return None;
            }
            self.pos = 0;
        }
        let out = self.pages[self.pos];
        self.pos += 1;
        Some(out)
    }
}

/// Randomly interleaves two workloads: each access comes from `a` with
/// probability `p_a`, else from `b`.
#[derive(Clone, Debug)]
pub struct Mix<A, B> {
    a: A,
    b: B,
    p_a: f64,
    rng: CounterRng,
}

impl<A, B> Mix<A, B> {
    /// Creates the mix.
    ///
    /// # Panics
    /// Panics if `p_a ∉ [0, 1]`.
    pub fn new(seed: u64, a: A, b: B, p_a: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_a), "p_a must be in [0,1]");
        Self {
            a,
            b,
            p_a,
            rng: CounterRng::new(seed, 0x313C),
        }
    }
}

impl<A, B> Iterator for Mix<A, B>
where
    A: Iterator<Item = VirtPage>,
    B: Iterator<Item = VirtPage>,
{
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        if self.rng.next_bool(self.p_a) {
            self.a.next().or_else(|| self.b.next())
        } else {
            self.b.next().or_else(|| self.a.next())
        }
    }
}

/// Shifts a workload's pages by a fixed base (placing it in a region of a
/// larger address space).
#[derive(Clone, Debug)]
pub struct Offset<W> {
    inner: W,
    base: u64,
}

impl<W> Offset<W> {
    /// Adds `base` to every page id.
    pub fn new(inner: W, base: u64) -> Self {
        Self { inner, base }
    }
}

impl<W: Iterator<Item = VirtPage>> Iterator for Offset<W> {
    type Item = VirtPage;
    fn next(&mut self) -> Option<VirtPage> {
        self.inner.next().map(|p| VirtPage(p.0 + self.base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::Sequential;

    #[test]
    fn replay_once_ends() {
        let t: Vec<VirtPage> = vec![VirtPage(1), VirtPage(2)];
        let out: Vec<VirtPage> = Replay::once(t.clone()).collect();
        assert_eq!(out, t);
    }

    #[test]
    fn replay_cycles() {
        let t = vec![VirtPage(1), VirtPage(2)];
        let out: Vec<u64> = Replay::cycling(t).take(5).map(|p| p.0).collect();
        assert_eq!(out, vec![1, 2, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_cycle_rejected() {
        Replay::cycling(vec![]);
    }

    #[test]
    fn mix_ratio_is_respected() {
        // a = always page 0, b = always page 1.
        let a = std::iter::repeat(VirtPage(0));
        let b = std::iter::repeat(VirtPage(1));
        let mut m = Mix::new(1, a, b, 0.75);
        let n = 20_000;
        let zeros = (0..n).filter(|_| m.next().unwrap().0 == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((0.73..0.77).contains(&frac), "mix fraction {frac}");
    }

    #[test]
    fn mix_falls_back_when_one_side_ends() {
        let a = Replay::once(vec![VirtPage(7)]);
        let b = std::iter::repeat(VirtPage(9));
        let m = Mix::new(2, a, b, 0.5);
        let out: Vec<u64> = m.take(100).map(|p| p.0).collect();
        assert_eq!(out.iter().filter(|&&x| x == 7).count(), 1);
        assert_eq!(out.iter().filter(|&&x| x == 9).count(), 99);
    }

    #[test]
    fn offset_shifts_pages() {
        let out: Vec<u64> = Offset::new(Sequential::new(3), 100)
            .take(4)
            .map(|p| p.0)
            .collect();
        assert_eq!(out, vec![100, 101, 102, 100]);
    }

    #[test]
    fn mix_is_deterministic() {
        let make = || {
            Mix::new(
                7,
                Sequential::new(10),
                Offset::new(Sequential::new(10), 1000),
                0.5,
            )
        };
        let a: Vec<u64> = make().take(200).map(|p| p.0).collect();
        let b: Vec<u64> = make().take(200).map(|p| p.0).collect();
        assert_eq!(a, b);
    }
}
