//! Runtime-selected policy with inline fast paths.
//!
//! [`AnyPolicy`] is the bridge between the two dispatch worlds: code that
//! knows its policy at compile time instantiates `CacheSim<K, Lru>` /
//! `Tlb<V, Sieve>` and gets fully monomorphized callbacks, while code
//! configured from a [`PolicyKind`] (sweep drivers, CLI flags) uses
//! `CacheSim<K, AnyPolicy>`. The four Figure-1 policies (LRU, FIFO, Clock,
//! Sieve) are inline enum variants — dispatch is a branch-predictable
//! `match`, not a vtable call — and every other kind falls back to the
//! boxed trait object via [`crate::make_policy`].

use crate::clock::Clock;
use crate::fifo::Fifo;
use crate::lfu::Lfu;
use crate::lru::Lru;
use crate::lruk::LruK;
use crate::marking::Marking;
use crate::mru::Mru;
use crate::policy::{Policy, PolicyBuild, PolicyKind, SlotId};
use crate::random::RandomPolicy;
use crate::sieve::Sieve;
use crate::slru::Slru;
use crate::twoq::TwoQ;

/// A policy chosen at runtime. Hot kinds are inline variants; the rest are
/// boxed. Behavior is identical to the wrapped policy in every case.
pub enum AnyPolicy {
    /// Least-recently used (inline).
    Lru(Lru),
    /// First-in first-out (inline).
    Fifo(Fifo),
    /// CLOCK / second chance (inline).
    Clock(Clock),
    /// SIEVE (inline).
    Sieve(Sieve),
    /// Any other kind, boxed.
    Other(Box<dyn Policy>),
}

impl std::fmt::Debug for AnyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyPolicy::Lru(p) => f.debug_tuple("Lru").field(p).finish(),
            AnyPolicy::Fifo(p) => f.debug_tuple("Fifo").field(p).finish(),
            AnyPolicy::Clock(p) => f.debug_tuple("Clock").field(p).finish(),
            AnyPolicy::Sieve(p) => f.debug_tuple("Sieve").field(p).finish(),
            // `dyn Policy` has no Debug bound; its kind identifies it.
            AnyPolicy::Other(p) => f.debug_tuple("Other").field(&p.kind().name()).finish(),
        }
    }
}

impl AnyPolicy {
    /// Builds the policy of `kind` for a cache of `capacity` slots.
    /// Deterministic kinds ignore `seed`.
    pub fn new(kind: PolicyKind, capacity: usize, seed: u64) -> Self {
        match kind {
            PolicyKind::Lru => AnyPolicy::Lru(Lru::new(capacity)),
            PolicyKind::Fifo => AnyPolicy::Fifo(Fifo::new(capacity)),
            PolicyKind::Clock => AnyPolicy::Clock(Clock::new(capacity)),
            PolicyKind::Sieve => AnyPolicy::Sieve(Sieve::new(capacity)),
            other => AnyPolicy::Other(crate::make_policy(other, capacity, seed)),
        }
    }
}

impl Policy for AnyPolicy {
    #[inline]
    fn on_insert(&mut self, s: SlotId) {
        match self {
            AnyPolicy::Lru(p) => p.on_insert(s),
            AnyPolicy::Fifo(p) => p.on_insert(s),
            AnyPolicy::Clock(p) => p.on_insert(s),
            AnyPolicy::Sieve(p) => p.on_insert(s),
            AnyPolicy::Other(p) => p.on_insert(s),
        }
    }

    #[inline]
    fn on_hit(&mut self, s: SlotId) {
        match self {
            AnyPolicy::Lru(p) => p.on_hit(s),
            AnyPolicy::Fifo(p) => p.on_hit(s),
            AnyPolicy::Clock(p) => p.on_hit(s),
            AnyPolicy::Sieve(p) => p.on_hit(s),
            AnyPolicy::Other(p) => p.on_hit(s),
        }
    }

    #[inline]
    fn choose_victim(&mut self) -> SlotId {
        match self {
            AnyPolicy::Lru(p) => p.choose_victim(),
            AnyPolicy::Fifo(p) => p.choose_victim(),
            AnyPolicy::Clock(p) => p.choose_victim(),
            AnyPolicy::Sieve(p) => p.choose_victim(),
            AnyPolicy::Other(p) => p.choose_victim(),
        }
    }

    #[inline]
    fn on_remove(&mut self, s: SlotId) {
        match self {
            AnyPolicy::Lru(p) => p.on_remove(s),
            AnyPolicy::Fifo(p) => p.on_remove(s),
            AnyPolicy::Clock(p) => p.on_remove(s),
            AnyPolicy::Sieve(p) => p.on_remove(s),
            AnyPolicy::Other(p) => p.on_remove(s),
        }
    }

    fn kind(&self) -> PolicyKind {
        match self {
            AnyPolicy::Lru(p) => p.kind(),
            AnyPolicy::Fifo(p) => p.kind(),
            AnyPolicy::Clock(p) => p.kind(),
            AnyPolicy::Sieve(p) => p.kind(),
            AnyPolicy::Other(p) => p.kind(),
        }
    }
}

impl PolicyBuild for Lru {
    fn build(capacity: usize, _seed: u64) -> Self {
        Lru::new(capacity)
    }
}

impl PolicyBuild for Fifo {
    fn build(capacity: usize, _seed: u64) -> Self {
        Fifo::new(capacity)
    }
}

impl PolicyBuild for Clock {
    fn build(capacity: usize, _seed: u64) -> Self {
        Clock::new(capacity)
    }
}

impl PolicyBuild for Sieve {
    fn build(capacity: usize, _seed: u64) -> Self {
        Sieve::new(capacity)
    }
}

impl PolicyBuild for Mru {
    fn build(capacity: usize, _seed: u64) -> Self {
        Mru::new(capacity)
    }
}

impl PolicyBuild for Lfu {
    fn build(capacity: usize, _seed: u64) -> Self {
        Lfu::new(capacity)
    }
}

impl PolicyBuild for Slru {
    fn build(capacity: usize, _seed: u64) -> Self {
        Slru::new(capacity)
    }
}

impl PolicyBuild for TwoQ {
    fn build(capacity: usize, _seed: u64) -> Self {
        TwoQ::new(capacity)
    }
}

impl PolicyBuild for RandomPolicy {
    fn build(capacity: usize, seed: u64) -> Self {
        RandomPolicy::new(capacity, seed)
    }
}

impl PolicyBuild for LruK {
    fn build(capacity: usize, _seed: u64) -> Self {
        LruK::two(capacity)
    }
}

impl PolicyBuild for Marking {
    fn build(capacity: usize, seed: u64) -> Self {
        Marking::new(capacity, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;

    /// AnyPolicy must replay the exact same eviction stream as the policy
    /// it wraps, for both inline and boxed variants.
    #[test]
    fn any_matches_wrapped_policy() {
        for kind in PolicyKind::ALL {
            let cap = 4;
            let mut mono: CacheSim<u64, Box<dyn Policy>> =
                CacheSim::new(cap, crate::make_policy(kind, cap, 42));
            let mut any: CacheSim<u64, AnyPolicy> =
                CacheSim::new(cap, AnyPolicy::new(kind, cap, 42));
            let mut x: u64 = 0x9E37;
            for _ in 0..500 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let k = (x >> 33) % 9;
                assert_eq!(mono.access(k), any.access(k), "{kind} diverged");
            }
            assert_eq!(mono.hits(), any.hits());
            assert_eq!(any.policy().kind(), kind);
        }
    }

    #[test]
    fn inline_variants_cover_figure1_policies() {
        assert!(matches!(
            AnyPolicy::new(PolicyKind::Lru, 2, 0),
            AnyPolicy::Lru(_)
        ));
        assert!(matches!(
            AnyPolicy::new(PolicyKind::Fifo, 2, 0),
            AnyPolicy::Fifo(_)
        ));
        assert!(matches!(
            AnyPolicy::new(PolicyKind::Clock, 2, 0),
            AnyPolicy::Clock(_)
        ));
        assert!(matches!(
            AnyPolicy::new(PolicyKind::Sieve, 2, 0),
            AnyPolicy::Sieve(_)
        ));
        assert!(matches!(
            AnyPolicy::new(PolicyKind::Lfu, 2, 0),
            AnyPolicy::Other(_)
        ));
    }

    #[test]
    fn build_trait_constructs_working_policies() {
        let mut c: CacheSim<u64, Sieve> = CacheSim::new(2, Sieve::build(2, 0));
        c.access(1);
        c.access(2);
        assert!(c.access(1).is_hit());
    }
}
