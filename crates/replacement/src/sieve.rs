//! SIEVE replacement (Zhang et al., NSDI 2024).
//!
//! A remarkably simple scan-resistant policy: items live on a FIFO list
//! with a *visited* bit; a hand sweeps from tail to head looking for an
//! unvisited item to evict, clearing visited bits as it passes, and — the
//! key difference from CLOCK — survivors stay in place rather than being
//! recycled to the head, so the hand position carries state between
//! evictions. Hits only set a bit (no list movement), making it cheaper
//! than LRU and empirically stronger on skewed web/cache traces.

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

/// SIEVE policy state.
#[derive(Clone, Debug)]
pub struct Sieve {
    // Front = newest; back = oldest.
    list: IndexList,
    visited: Vec<bool>,
    /// The sweep hand: a slot id, or None (hand parked at the tail).
    hand: Option<SlotId>,
}

impl Sieve {
    /// Creates SIEVE state for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            list: IndexList::new(capacity),
            visited: vec![false; capacity],
            hand: None,
        }
    }

    /// The slot *before* `s` in list order (closer to the head) — the next
    /// position of the hand after examining `s`. O(1).
    fn prev_toward_head(&self, s: SlotId) -> Option<SlotId> {
        self.list.prev_of(s)
    }
}

impl Policy for Sieve {
    #[inline]
    fn on_insert(&mut self, s: SlotId) {
        self.visited[s] = false;
        self.list.push_front(s);
    }

    #[inline]
    fn on_hit(&mut self, s: SlotId) {
        self.visited[s] = true;
    }

    #[inline]
    fn choose_victim(&mut self) -> SlotId {
        // Start at the hand (or the tail), sweep toward the head clearing
        // visited bits; wrap to the tail if the head is passed.
        let mut cur = match self.hand {
            Some(h) if self.list.contains(h) => h,
            // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
            _ => self.list.back().expect("choose_victim on empty cache"),
        };
        loop {
            if !self.visited[cur] {
                // Hand moves past the victim toward the head.
                self.hand = self.prev_toward_head(cur);
                return cur;
            }
            self.visited[cur] = false;
            cur = match self.prev_toward_head(cur) {
                Some(p) => p,
                // atp-lint: allow(unwrap-policy, reason = "invariant: the list was non-empty when the hand scan started")
                None => self.list.back().expect("nonempty"),
            };
        }
    }

    #[inline]
    fn on_remove(&mut self, s: SlotId) {
        if self.hand == Some(s) {
            self.hand = self.prev_toward_head(s);
        }
        self.visited[s] = false;
        self.list.remove(s);
    }

    #[inline]
    fn kind(&self) -> PolicyKind {
        PolicyKind::Sieve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn evicts_oldest_unvisited() {
        let mut c = CacheSim::new(3, Sieve::new(3));
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // visit 1
        match c.access(4) {
            // Hand starts at tail (1): visited → spared; 2 unvisited → out.
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn hand_persists_between_evictions() {
        let mut c = CacheSim::new(3, Sieve::new(3));
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1);
        c.access(2);
        c.access(3); // all visited
                     // First eviction sweeps the whole list (clearing bits) and wraps to
                     // evict the tail (1); the hand now rests past 1.
        match c.access(4) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
        // Second eviction continues from the hand: 2 is next (bit cleared).
        match c.access(5) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
    }

    #[test]
    fn scan_resistant_like_clock_or_better() {
        use crate::lru::Lru;
        let cap = 16;
        let mut sieve = CacheSim::new(cap, Sieve::new(cap));
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        for k in 0..4u64 {
            sieve.access(k);
            sieve.access(k);
            lru.access(k);
            lru.access(k);
        }
        let mut scan = 100u64;
        let (mut hs, mut hl) = (0u64, 0u64);
        for round in 0..800u64 {
            let hot = round % 4;
            hs += u64::from(sieve.access(hot).is_hit());
            hl += u64::from(lru.access(hot).is_hit());
            for _ in 0..8 {
                scan += 1;
                sieve.access(scan);
                lru.access(scan);
            }
        }
        assert!(
            hs > hl,
            "sieve {hs} should beat lru {hl} under scan pollution"
        );
    }

    #[test]
    fn remove_on_hand_does_not_panic() {
        let mut c = CacheSim::new(4, Sieve::new(4));
        for k in 1..=4u64 {
            c.access(k);
        }
        for k in 1..=4u64 {
            c.access(k); // visit all
        }
        c.access(5); // force a full sweep; hand set
                     // Remove everything including wherever the hand points.
        for k in 2..=5u64 {
            c.remove(&k);
        }
        assert_eq!(c.len(), 0);
        c.access(10);
        c.access(11);
        assert_eq!(c.len(), 2);
    }
}
