//! Simplified 2Q replacement (Johnson & Shasha).
//!
//! New items enter a FIFO queue `A1in` (a fixed fraction of capacity);
//! a hit while in `A1in` promotes to the main LRU queue `Am`. Victims are
//! drawn from `A1in` while it exceeds its share, otherwise from `Am`.
//! Like SLRU, 2Q defends the main queue against one-touch scans.

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Queue {
    A1in,
    Am,
}

/// Simplified-2Q policy state.
#[derive(Clone, Debug)]
pub struct TwoQ {
    a1in: IndexList,
    am: IndexList,
    queue_of: Vec<Option<Queue>>,
    a1in_cap: usize,
}

impl TwoQ {
    /// Creates 2Q state with the conventional 25% `A1in` share.
    pub fn new(capacity: usize) -> Self {
        Self::with_a1in_fraction(capacity, 0.25)
    }

    /// Creates 2Q state with a custom `A1in` fraction in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_a1in_fraction(capacity: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        Self {
            a1in: IndexList::new(capacity),
            am: IndexList::new(capacity),
            queue_of: vec![None; capacity],
            a1in_cap: (((capacity as f64) * fraction).ceil() as usize).max(1),
        }
    }
}

impl Policy for TwoQ {
    fn on_insert(&mut self, s: SlotId) {
        self.a1in.push_front(s);
        self.queue_of[s] = Some(Queue::A1in);
    }

    fn on_hit(&mut self, s: SlotId) {
        // atp-lint: allow(unwrap-policy, reason = "invariant: slots are tracked from on_insert until remove, so metadata lookups cannot miss")
        match self.queue_of[s].expect("hit on untracked slot") {
            Queue::Am => self.am.move_to_front(s),
            Queue::A1in => {
                self.a1in.remove(s);
                self.am.push_front(s);
                self.queue_of[s] = Some(Queue::Am);
            }
        }
    }

    fn choose_victim(&mut self) -> SlotId {
        if self.a1in.len() > self.a1in_cap || self.am.is_empty() {
            // atp-lint: allow(unwrap-policy, reason = "a1in is non-empty here: it either exceeds its cap or am is empty while the cache is not")
            self.a1in.back().expect("a1in nonempty")
        } else {
            // atp-lint: allow(unwrap-policy, reason = "invariant: a non-empty cache has a non-empty am whenever a1in is empty")
            self.am.back().expect("am nonempty")
        }
    }

    fn on_remove(&mut self, s: SlotId) {
        // atp-lint: allow(unwrap-policy, reason = "invariant: slots are tracked from on_insert until remove, so metadata lookups cannot miss")
        match self.queue_of[s].take().expect("remove on untracked slot") {
            Queue::A1in => self.a1in.remove(s),
            Queue::Am => self.am.remove(s),
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TwoQ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;

    #[test]
    fn second_access_promotes_to_main() {
        let mut c = CacheSim::new(8, TwoQ::new(8));
        c.access(1);
        c.access(1); // → Am
                     // Flood A1in with one-touch keys; 1 must survive.
        for k in 100..140u64 {
            c.access(k);
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn scan_resistance_beats_lru() {
        use crate::lru::Lru;
        let cap = 16;
        let mut twoq = CacheSim::new(cap, TwoQ::new(cap));
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        let mut t_hits = 0u64;
        let mut l_hits = 0u64;
        // Warm a hot set of 4 keys (second touch promotes them to Am).
        for k in 0..4u64 {
            twoq.access(k);
            twoq.access(k);
            lru.access(k);
            lru.access(k);
        }
        // Hot accesses interleaved with a long one-touch scan: 2Q keeps the
        // hot set in Am while the scan churns A1in; LRU thrashes.
        let mut scan_key = 1000u64;
        for round in 0..2000u64 {
            let hot = round % 4;
            t_hits += u64::from(twoq.access(hot).is_hit());
            l_hits += u64::from(lru.access(hot).is_hit());
            for _ in 0..8 {
                scan_key += 1;
                twoq.access(scan_key);
                lru.access(scan_key);
            }
        }
        assert!(
            t_hits > l_hits,
            "2q {t_hits} should beat lru {l_hits} under scan pollution"
        );
    }

    #[test]
    fn a1in_overflow_evicts_fifo_order() {
        // capacity 4, a1in_cap = 1.
        let mut c = CacheSim::new(4, TwoQ::new(4));
        for k in [1u64, 2, 3, 4] {
            c.access(k);
        }
        // A1in holds all four (len 4 > cap 1) → victim is FIFO oldest = 1.
        match c.access(5) {
            crate::cache::AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn remove_from_both_queues() {
        let mut c = CacheSim::new(4, TwoQ::new(4));
        c.access(1);
        c.access(1); // Am
        c.access(2); // A1in
        assert!(c.remove(&1));
        assert!(c.remove(&2));
        assert_eq!(c.len(), 0);
        c.access(3);
        assert!(c.contains(&3));
    }
}
