//! The generic cache simulator driving a replacement policy.
//!
//! [`CacheSim`] is the single-probe slot arena at the bottom of every hot
//! path in the workspace: one `FxHashMap<K, u32>` probe resolves to a slot
//! index into a contiguous arena holding the key and an optional user value
//! `V`, while the policy keeps its intrusive recency metadata (u32 links,
//! reference bits, …) in its own slot-indexed arrays. A hit is therefore
//! one hash probe plus O(1) index arithmetic — no second map for values, no
//! membership pre-check. The policy type parameter `P` is monomorphized at
//! the call site; pass [`crate::AnyPolicy`] for runtime-configured policies.

use crate::policy::{Policy, SlotId};
use atp_hash::FxHashMap;
use core::hash::Hash;

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult<K> {
    /// The key was resident.
    Hit,
    /// The key was not resident and has been inserted; if the cache was
    /// full, `evicted` names the victim that made room.
    Miss {
        /// Victim evicted to make room, if the cache was at capacity.
        evicted: Option<K>,
    },
}

impl<K> AccessResult<K> {
    /// Whether this was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// A capacity-bounded cache over keys `K` (optionally carrying a value `V`
/// per entry), with replacement delegated to a [`Policy`].
///
/// Used throughout the workspace as the content-tracker for both RAM (keys =
/// pages or huge pages, no value) and TLBs (keys = huge-page ids, value =
/// the translation payload). Explicit removal is supported for TLB
/// shootdowns and decoupling-driven invalidations.
///
/// ```
/// use atp_replacement::{AccessResult, CacheSim, Lru};
///
/// let mut cache = CacheSim::new(2, Lru::new(2));
/// cache.access(1u64);
/// cache.access(2);
/// cache.access(1); // refresh 1
/// match cache.access(3) {
///     AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct CacheSim<K, P: Policy, V = ()> {
    capacity: usize,
    map: FxHashMap<K, u32>,
    /// Slot arena: key and value co-located, `None` = free slot.
    slots: Vec<Option<(K, V)>>,
    free: Vec<u32>,
    policy: P,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Copy, P: Policy, V> CacheSim<K, P, V> {
    /// Creates a cache of `capacity` entries driven by `policy`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `capacity >= u32::MAX` (slot ids are
    /// 32-bit).
    pub fn new(capacity: usize, policy: P) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        assert!(
            capacity < u32::MAX as usize,
            "cache capacity exceeds u32 slot ids"
        );
        Self {
            capacity,
            map: FxHashMap::default(),
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity as u32).rev().collect(),
            policy,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `k` is resident (does not touch the policy).
    #[inline]
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Hit count so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses `k` *only if resident*: one hash probe. A hit refreshes the
    /// policy, bumps the hit counter, and returns the value; a miss bumps
    /// the miss counter and returns `None` without inserting anything.
    ///
    /// This is the whole TLB/cache hot path — callers must not pair it with
    /// a preceding [`CacheSim::contains`] (that is the double-probe pattern
    /// this method exists to remove).
    #[inline]
    pub fn access_if_present(&mut self, k: &K) -> Option<&V> {
        match self.map.get(k) {
            Some(&slot) => {
                self.policy.on_hit(slot as SlotId);
                self.hits += 1;
                match &self.slots[slot as usize] {
                    Some((_, v)) => Some(v),
                    None => unreachable!("mapped slot occupied"),
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Reads the value of `k` without touching recency or counters.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&V> {
        let &slot = self.map.get(k)?;
        self.slots[slot as usize].as_ref().map(|(_, v)| v)
    }

    /// Mutable access to the value of `k` without touching recency or
    /// counters (free ψ-updates in the paper's cost model).
    #[inline]
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        let &slot = self.map.get(k)?;
        self.slots[slot as usize].as_mut().map(|(_, v)| v)
    }

    /// Inserts a key known to be absent with its value, returning the
    /// evicted victim entry if the cache was full.
    ///
    /// # Panics
    /// Panics if `k` is already resident.
    pub fn insert_cold_with(&mut self, k: K, v: V) -> Option<(K, V)> {
        assert!(!self.map.contains_key(&k), "insert_cold on resident key");
        let mut evicted = None;
        if self.map.len() == self.capacity {
            evicted = self.evict_one_entry();
            debug_assert!(evicted.is_some(), "full cache must yield a victim");
        }
        // atp-lint: allow(unwrap-policy, reason = "invariant: insert_new is only called after an eviction or under capacity, so a free slot exists")
        let slot = self.free.pop().expect("free slot available");
        self.slots[slot as usize] = Some((k, v));
        self.map.insert(k, slot);
        self.policy.on_insert(slot as SlotId);
        evicted
    }

    /// Forces eviction of the policy's preferred victim, returning its
    /// entry (`None` if the cache is empty). Used by managers whose real
    /// capacity constraint is external (e.g. physical frames rather than
    /// entries).
    pub fn evict_one_entry(&mut self) -> Option<(K, V)> {
        if self.map.is_empty() {
            return None;
        }
        let victim_slot = self.policy.choose_victim();
        let (k, v) = self.slots[victim_slot]
            .take()
            // atp-lint: allow(unwrap-policy, reason = "invariant: the policy's victim is always an occupied slot")
            .expect("victim slot occupied");
        self.policy.on_remove(victim_slot);
        self.map.remove(&k);
        self.free.push(victim_slot as u32);
        Some((k, v))
    }

    /// Explicitly removes `k` (invalidation), returning its value if it was
    /// resident. One hash probe.
    pub fn remove_entry(&mut self, k: &K) -> Option<V> {
        let slot = self.map.remove(k)?;
        // atp-lint: allow(unwrap-policy, reason = "invariant: remove receives an occupied slot resolved through the map")
        let (_, v) = self.slots[slot as usize].take().expect("slot occupied");
        self.policy.on_remove(slot as SlotId);
        self.free.push(slot);
        Some(v)
    }

    /// Explicitly removes `k` (invalidation), returning whether it was
    /// resident.
    pub fn remove(&mut self, k: &K) -> bool {
        self.remove_entry(k).is_some()
    }

    /// Removes every resident entry whose key satisfies `pred`, returning
    /// how many were removed. Scans the slot arena in slot order, so the
    /// removal sequence is deterministic. Used for bulk invalidation —
    /// tearing down one tenant's entries out of a shared structure
    /// (`flush_asid`, tenant retirement) without disturbing the rest.
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> u64 {
        let mut removed = 0u64;
        for slot in 0..self.capacity {
            let matches = match &self.slots[slot] {
                Some((k, _)) => pred(k),
                None => false,
            };
            if matches {
                // atp-lint: allow(unwrap-policy, reason = "invariant: the slot was just observed occupied")
                let (k, _) = self.slots[slot].take().expect("slot occupied");
                self.policy.on_remove(slot as SlotId);
                self.map.remove(&k);
                self.free.push(slot as u32);
                removed += 1;
            }
        }
        removed
    }

    /// Iterates over resident keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Iterates over resident `(key, value)` pairs in slot-arena order
    /// (arbitrary from the caller's point of view).
    pub fn entries(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }

    /// Access to the policy (for tests / instrumentation).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

/// Keys-only API: the original `CacheSim` surface, for residency caches
/// that track membership without a payload.
impl<K: Eq + Hash + Copy, P: Policy> CacheSim<K, P, ()> {
    /// Accesses `k`: on a miss, inserts it (possibly evicting).
    #[inline]
    pub fn access(&mut self, k: K) -> AccessResult<K> {
        if let Some(&slot) = self.map.get(&k) {
            self.policy.on_hit(slot as SlotId);
            self.hits += 1;
            return AccessResult::Hit;
        }
        self.misses += 1;
        let evicted = self.insert_cold(k);
        AccessResult::Miss { evicted }
    }

    /// Inserts a key known to be absent, returning the evicted victim if the
    /// cache was full.
    ///
    /// # Panics
    /// Panics if `k` is already resident.
    pub fn insert_cold(&mut self, k: K) -> Option<K> {
        self.insert_cold_with(k, ()).map(|(victim, ())| victim)
    }

    /// Forces eviction of the policy's preferred victim, returning it
    /// (`None` if the cache is empty).
    pub fn evict_one(&mut self) -> Option<K> {
        self.evict_one_entry().map(|(k, ())| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;

    fn lru_cache(cap: usize) -> CacheSim<u64, Lru> {
        CacheSim::new(cap, Lru::new(cap))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = lru_cache(2);
        assert!(!c.access(1).is_hit());
        assert!(c.access(1).is_hit());
        assert!(!c.access(2).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_reports_victim() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!("expected miss"),
        }
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert!(c.contains(&3));
    }

    #[test]
    fn explicit_remove_frees_capacity() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        // Next miss should not evict.
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        lru_cache(0);
    }

    #[test]
    #[should_panic(expected = "insert_cold on resident key")]
    fn insert_cold_rejects_resident() {
        let mut c = lru_cache(2);
        c.access(5);
        c.insert_cold(5);
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut c = lru_cache(4);
        for k in 0..100u64 {
            c.access(k % 13);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn evict_one_honors_policy_order() {
        let mut c = lru_cache(3);
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // refresh
        assert_eq!(c.evict_one(), Some(2));
        assert_eq!(c.evict_one(), Some(3));
        assert_eq!(c.evict_one(), Some(1));
        assert_eq!(c.evict_one(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn evict_one_frees_capacity() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        c.evict_one();
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!(),
        }
    }

    #[test]
    fn keys_iterates_residents() {
        let mut c = lru_cache(3);
        c.access(10);
        c.access(20);
        let mut ks: Vec<u64> = c.keys().copied().collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![10, 20]);
    }

    #[test]
    fn values_live_in_the_arena() {
        let mut c: CacheSim<u64, Lru, String> = CacheSim::new(2, Lru::new(2));
        assert!(c.insert_cold_with(1, "one".into()).is_none());
        assert!(c.insert_cold_with(2, "two".into()).is_none());
        assert_eq!(c.access_if_present(&1), Some(&"one".to_string()));
        // 2 is now LRU; inserting 3 evicts it with its value.
        let evicted = c.insert_cold_with(3, "three".into());
        assert_eq!(evicted, Some((2, "two".to_string())));
        assert_eq!(c.access_if_present(&2), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn get_and_get_mut_skip_recency() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(2, Lru::new(2));
        c.insert_cold_with(1, 10);
        c.insert_cold_with(2, 20);
        *c.get_mut(&1).unwrap() += 1;
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!((c.hits(), c.misses()), (0, 0), "peeks must not count");
        // 1 was NOT refreshed by get/get_mut: it is still the LRU victim.
        assert_eq!(c.insert_cold_with(3, 30), Some((1, 11)));
    }

    #[test]
    fn remove_entry_returns_value() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(2, Lru::new(2));
        c.insert_cold_with(7, 70);
        assert_eq!(c.remove_entry(&7), Some(70));
        assert_eq!(c.remove_entry(&7), None);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_matching_bulk_invalidates() {
        let mut c = lru_cache(8);
        for k in 0..8u64 {
            c.access(k);
        }
        assert_eq!(c.remove_matching(|&k| k % 2 == 0), 4);
        assert_eq!(c.len(), 4);
        for k in 0..8u64 {
            assert_eq!(c.contains(&k), k % 2 == 1);
        }
        // Freed capacity is reusable and survivors keep working.
        assert!(c.access(1).is_hit());
        match c.access(100) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.remove_matching(|_| false), 0);
    }

    #[test]
    fn entries_iterates_pairs() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(3, Lru::new(3));
        c.insert_cold_with(1, 10);
        c.insert_cold_with(2, 20);
        let mut pairs: Vec<(u64, u32)> = c.entries().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }
}
