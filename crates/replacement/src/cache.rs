//! The generic cache simulator driving a replacement policy.

use crate::policy::{Policy, SlotId};
use atp_hash::FxHashMap;
use core::hash::Hash;

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult<K> {
    /// The key was resident.
    Hit,
    /// The key was not resident and has been inserted; if the cache was
    /// full, `evicted` names the victim that made room.
    Miss {
        /// Victim evicted to make room, if the cache was at capacity.
        evicted: Option<K>,
    },
}

impl<K> AccessResult<K> {
    /// Whether this was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// A capacity-bounded cache over keys `K`, with replacement delegated to a
/// [`Policy`].
///
/// Used throughout the workspace as the content-tracker for both RAM (keys =
/// pages or huge pages) and TLBs (keys = huge-page ids). Explicit removal is
/// supported for TLB shootdowns and decoupling-driven invalidations.
///
/// ```
/// use atp_replacement::{AccessResult, CacheSim, Lru};
///
/// let mut cache = CacheSim::new(2, Lru::new(2));
/// cache.access(1u64);
/// cache.access(2);
/// cache.access(1); // refresh 1
/// match cache.access(3) {
///     AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
///     _ => unreachable!(),
/// }
/// ```
pub struct CacheSim<K, P: Policy> {
    capacity: usize,
    map: FxHashMap<K, SlotId>,
    keys: Vec<Option<K>>,
    free: Vec<SlotId>,
    policy: P,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Copy, P: Policy> CacheSim<K, P> {
    /// Creates a cache of `capacity` entries driven by `policy`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, policy: P) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        Self {
            capacity,
            map: FxHashMap::default(),
            keys: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            policy,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `k` is resident (does not touch the policy).
    #[inline]
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Hit count so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accesses `k`: on a miss, inserts it (possibly evicting).
    pub fn access(&mut self, k: K) -> AccessResult<K> {
        if let Some(&slot) = self.map.get(&k) {
            self.policy.on_hit(slot);
            self.hits += 1;
            return AccessResult::Hit;
        }
        self.misses += 1;
        let evicted = self.insert_cold(k);
        AccessResult::Miss { evicted }
    }

    /// Inserts a key known to be absent, returning the evicted victim if the
    /// cache was full.
    ///
    /// # Panics
    /// Panics if `k` is already resident.
    pub fn insert_cold(&mut self, k: K) -> Option<K> {
        assert!(!self.map.contains_key(&k), "insert_cold on resident key");
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim_slot = self.policy.choose_victim();
            let victim = self.keys[victim_slot].take().expect("victim slot occupied");
            self.policy.on_remove(victim_slot);
            self.map.remove(&victim);
            self.free.push(victim_slot);
            evicted = Some(victim);
        }
        let slot = self.free.pop().expect("free slot available");
        self.keys[slot] = Some(k);
        self.map.insert(k, slot);
        self.policy.on_insert(slot);
        evicted
    }

    /// Forces eviction of the policy's preferred victim, returning it
    /// (`None` if the cache is empty). Used by managers whose real capacity
    /// constraint is external (e.g. physical frames rather than entries).
    pub fn evict_one(&mut self) -> Option<K> {
        if self.map.is_empty() {
            return None;
        }
        let victim_slot = self.policy.choose_victim();
        let victim = self.keys[victim_slot].take().expect("victim slot occupied");
        self.policy.on_remove(victim_slot);
        self.map.remove(&victim);
        self.free.push(victim_slot);
        Some(victim)
    }

    /// Explicitly removes `k` (invalidation), returning whether it was
    /// resident.
    pub fn remove(&mut self, k: &K) -> bool {
        if let Some(slot) = self.map.remove(k) {
            self.keys[slot] = None;
            self.policy.on_remove(slot);
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    /// Iterates over resident keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Access to the policy (for tests / instrumentation).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;

    fn lru_cache(cap: usize) -> CacheSim<u64, Lru> {
        CacheSim::new(cap, Lru::new(cap))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = lru_cache(2);
        assert!(!c.access(1).is_hit());
        assert!(c.access(1).is_hit());
        assert!(!c.access(2).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_reports_victim() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!("expected miss"),
        }
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert!(c.contains(&3));
    }

    #[test]
    fn explicit_remove_frees_capacity() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        // Next miss should not evict.
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        lru_cache(0);
    }

    #[test]
    #[should_panic(expected = "insert_cold on resident key")]
    fn insert_cold_rejects_resident() {
        let mut c = lru_cache(2);
        c.access(5);
        c.insert_cold(5);
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut c = lru_cache(4);
        for k in 0..100u64 {
            c.access(k % 13);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn evict_one_honors_policy_order() {
        let mut c = lru_cache(3);
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // refresh
        assert_eq!(c.evict_one(), Some(2));
        assert_eq!(c.evict_one(), Some(3));
        assert_eq!(c.evict_one(), Some(1));
        assert_eq!(c.evict_one(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn evict_one_frees_capacity() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        c.evict_one();
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!(),
        }
    }

    #[test]
    fn keys_iterates_residents() {
        let mut c = lru_cache(3);
        c.access(10);
        c.access(20);
        let mut ks: Vec<u64> = c.keys().copied().collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![10, 20]);
    }
}
