//! The generic cache simulator driving a replacement policy.
//!
//! [`CacheSim`] is the single-probe slot arena at the bottom of every hot
//! path in the workspace: one [`SlotIndex`] probe (a flat open-addressing
//! `hash → slot` table taking precomputed Fx hashes) resolves to a slot id
//! into cache-line-conscious SoA arenas — keys, values, and the policy's
//! intrusive recency metadata (u32 links, reference bits, …) each live in
//! their own slot-indexed array, so a hit touches only the probe line, the
//! key line it validates against, and the arena the caller actually needs.
//! A hit is therefore one hash probe plus O(1) index arithmetic — no second
//! map for values, no membership pre-check. The policy type parameter `P`
//! is monomorphized at the call site; pass [`crate::AnyPolicy`] for
//! runtime-configured policies.
//!
//! The split layout is what the batched translation engine pipelines over:
//! [`CacheSim::touch`] warms the probe line for a key whose hash was
//! precomputed a few accesses ahead, without touching policy state or
//! counters.

use crate::policy::{Policy, SlotId};
use atp_hash::flat::{fx_hash, SlotIndex};
use core::hash::Hash;

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult<K> {
    /// The key was resident.
    Hit,
    /// The key was not resident and has been inserted; if the cache was
    /// full, `evicted` names the victim that made room.
    Miss {
        /// Victim evicted to make room, if the cache was at capacity.
        evicted: Option<K>,
    },
}

impl<K> AccessResult<K> {
    /// Whether this was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// A capacity-bounded cache over keys `K` (optionally carrying a value `V`
/// per entry), with replacement delegated to a [`Policy`].
///
/// Used throughout the workspace as the content-tracker for both RAM (keys =
/// pages or huge pages, no value) and TLBs (keys = huge-page ids, value =
/// the translation payload). Explicit removal is supported for TLB
/// shootdowns and decoupling-driven invalidations.
///
/// ```
/// use atp_replacement::{AccessResult, CacheSim, Lru};
///
/// let mut cache = CacheSim::new(2, Lru::new(2));
/// cache.access(1u64);
/// cache.access(2);
/// cache.access(1); // refresh 1
/// match cache.access(3) {
///     AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct CacheSim<K, P: Policy, V = ()> {
    capacity: usize,
    index: SlotIndex,
    /// SoA slot arenas: `keys[slot]`/`vals[slot]`, `None` = free slot. Keys
    /// are the occupancy truth (slot-order scans read only this array);
    /// values sit apart so key-validation probes never drag value lines in.
    keys: Vec<Option<K>>,
    vals: Vec<Option<V>>,
    free: Vec<u32>,
    policy: P,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Copy, P: Policy, V> CacheSim<K, P, V> {
    /// Creates a cache of `capacity` entries driven by `policy`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `capacity >= u32::MAX` (slot ids are
    /// 32-bit).
    pub fn new(capacity: usize, policy: P) -> Self {
        assert!(capacity > 0, "cache capacity must be nonzero");
        assert!(
            capacity < u32::MAX as usize,
            "cache capacity exceeds u32 slot ids"
        );
        Self {
            capacity,
            index: SlotIndex::with_capacity(capacity),
            keys: (0..capacity).map(|_| None).collect(),
            vals: (0..capacity).map(|_| None).collect(),
            free: (0..capacity as u32).rev().collect(),
            policy,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Resolves `k` to its slot id without touching policy or counters.
    #[inline]
    fn probe(&self, h: u64, k: &K) -> Option<u32> {
        let keys = &self.keys;
        self.index.get(h, |s| keys[s as usize].as_ref() == Some(k))
    }

    /// Whether `k` is resident (does not touch the policy).
    #[inline]
    pub fn contains(&self, k: &K) -> bool {
        self.probe(fx_hash(k), k).is_some()
    }

    /// Hit count so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Warms the probe line for `k` without resolving the probe — the
    /// prefetch stage of a batched pipeline. Semantically a no-op: no
    /// policy update, no counters, no membership change.
    #[inline]
    pub fn touch(&self, k: &K) {
        self.index.touch(fx_hash(k));
    }

    /// Accesses `k` *only if resident*: one hash probe. A hit refreshes the
    /// policy, bumps the hit counter, and returns the value; a miss bumps
    /// the miss counter and returns `None` without inserting anything.
    ///
    /// This is the whole TLB/cache hot path — callers must not pair it with
    /// a preceding [`CacheSim::contains`] (that is the double-probe pattern
    /// this method exists to remove).
    #[inline]
    pub fn access_if_present(&mut self, k: &K) -> Option<&V> {
        match self.probe(fx_hash(k), k) {
            Some(slot) => {
                self.policy.on_hit(slot as SlotId);
                self.hits += 1;
                match &self.vals[slot as usize] {
                    Some(v) => Some(v),
                    None => unreachable!("mapped slot occupied"),
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Reads the value of `k` without touching recency or counters.
    #[inline]
    pub fn get(&self, k: &K) -> Option<&V> {
        let slot = self.probe(fx_hash(k), k)?;
        self.vals[slot as usize].as_ref()
    }

    /// Mutable access to the value of `k` without touching recency or
    /// counters (free ψ-updates in the paper's cost model).
    #[inline]
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        let slot = self.probe(fx_hash(k), k)?;
        self.vals[slot as usize].as_mut()
    }

    /// Inserts a key known to be absent with its value, returning the
    /// evicted victim entry if the cache was full.
    ///
    /// # Panics
    /// Panics if `k` is already resident.
    pub fn insert_cold_with(&mut self, k: K, v: V) -> Option<(K, V)> {
        let h = fx_hash(&k);
        assert!(self.probe(h, &k).is_none(), "insert_cold on resident key");
        let mut evicted = None;
        if self.index.len() == self.capacity {
            evicted = self.evict_one_entry();
            debug_assert!(evicted.is_some(), "full cache must yield a victim");
        }
        // atp-lint: allow(unwrap-policy, reason = "invariant: insert_new is only called after an eviction or under capacity, so a free slot exists")
        let slot = self.free.pop().expect("free slot available");
        self.keys[slot as usize] = Some(k);
        self.vals[slot as usize] = Some(v);
        self.index.insert(h, slot);
        self.policy.on_insert(slot as SlotId);
        evicted
    }

    /// Detaches `slot` from the arenas, the index, and the policy,
    /// returning its entry. The caller guarantees the slot is occupied.
    fn release_slot(&mut self, slot: u32) -> (K, V) {
        // atp-lint: allow(unwrap-policy, reason = "invariant: callers resolve the slot through the index or observe it occupied first")
        let k = self.keys[slot as usize].take().expect("slot key occupied");
        let v = self.vals[slot as usize].take();
        // atp-lint: allow(unwrap-policy, reason = "invariant: key and value arenas are occupied in lockstep")
        let v = v.expect("slot value occupied");
        self.policy.on_remove(slot as SlotId);
        self.index.remove(fx_hash(&k), |s| s == slot);
        self.free.push(slot);
        (k, v)
    }

    /// Forces eviction of the policy's preferred victim, returning its
    /// entry (`None` if the cache is empty). Used by managers whose real
    /// capacity constraint is external (e.g. physical frames rather than
    /// entries).
    pub fn evict_one_entry(&mut self) -> Option<(K, V)> {
        if self.index.is_empty() {
            return None;
        }
        let victim_slot = self.policy.choose_victim();
        Some(self.release_slot(victim_slot as u32))
    }

    /// Explicitly removes `k` (invalidation), returning its value if it was
    /// resident. One hash probe.
    pub fn remove_entry(&mut self, k: &K) -> Option<V> {
        let slot = self.probe(fx_hash(k), k)?;
        Some(self.release_slot(slot).1)
    }

    /// Explicitly removes `k` (invalidation), returning whether it was
    /// resident.
    pub fn remove(&mut self, k: &K) -> bool {
        self.remove_entry(k).is_some()
    }

    /// Removes every resident entry whose key satisfies `pred`, returning
    /// how many were removed. Scans the slot arena in slot order, so the
    /// removal sequence is deterministic. Used for bulk invalidation —
    /// tearing down one tenant's entries out of a shared structure
    /// (`flush_asid`, tenant retirement) without disturbing the rest.
    pub fn remove_matching(&mut self, mut pred: impl FnMut(&K) -> bool) -> u64 {
        let mut removed = 0u64;
        for slot in 0..self.capacity {
            let matches = match &self.keys[slot] {
                Some(k) => pred(k),
                None => false,
            };
            if matches {
                self.release_slot(slot as u32);
                removed += 1;
            }
        }
        removed
    }

    /// Iterates over resident keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.keys.iter().filter_map(|k| k.as_ref())
    }

    /// Iterates over resident `(key, value)` pairs in slot-arena order
    /// (arbitrary from the caller's point of view).
    pub fn entries(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter_map(|(k, v)| Some((k.as_ref()?, v.as_ref()?)))
    }

    /// Access to the policy (for tests / instrumentation).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

/// Keys-only API: the original `CacheSim` surface, for residency caches
/// that track membership without a payload.
impl<K: Eq + Hash + Copy, P: Policy> CacheSim<K, P, ()> {
    /// Accesses `k`: on a miss, inserts it (possibly evicting).
    #[inline]
    pub fn access(&mut self, k: K) -> AccessResult<K> {
        let h = fx_hash(&k);
        if let Some(slot) = self.probe(h, &k) {
            self.policy.on_hit(slot as SlotId);
            self.hits += 1;
            return AccessResult::Hit;
        }
        self.misses += 1;
        let mut evicted = None;
        if self.index.len() == self.capacity {
            evicted = self.evict_one_entry().map(|(k, ())| k);
            debug_assert!(evicted.is_some(), "full cache must yield a victim");
        }
        // atp-lint: allow(unwrap-policy, reason = "invariant: a free slot exists after an eviction or under capacity")
        let slot = self.free.pop().expect("free slot available");
        self.keys[slot as usize] = Some(k);
        self.vals[slot as usize] = Some(());
        self.index.insert(h, slot);
        self.policy.on_insert(slot as SlotId);
        AccessResult::Miss { evicted }
    }

    /// Inserts a key known to be absent, returning the evicted victim if the
    /// cache was full.
    ///
    /// # Panics
    /// Panics if `k` is already resident.
    pub fn insert_cold(&mut self, k: K) -> Option<K> {
        self.insert_cold_with(k, ()).map(|(victim, ())| victim)
    }

    /// Forces eviction of the policy's preferred victim, returning it
    /// (`None` if the cache is empty).
    pub fn evict_one(&mut self) -> Option<K> {
        self.evict_one_entry().map(|(k, ())| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;

    fn lru_cache(cap: usize) -> CacheSim<u64, Lru> {
        CacheSim::new(cap, Lru::new(cap))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = lru_cache(2);
        assert!(!c.access(1).is_hit());
        assert!(c.access(1).is_hit());
        assert!(!c.access(2).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_reports_victim() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!("expected miss"),
        }
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert!(c.contains(&3));
    }

    #[test]
    fn explicit_remove_frees_capacity() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        // Next miss should not evict.
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        lru_cache(0);
    }

    #[test]
    #[should_panic(expected = "insert_cold on resident key")]
    fn insert_cold_rejects_resident() {
        let mut c = lru_cache(2);
        c.access(5);
        c.insert_cold(5);
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut c = lru_cache(4);
        for k in 0..100u64 {
            c.access(k % 13);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn evict_one_honors_policy_order() {
        let mut c = lru_cache(3);
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // refresh
        assert_eq!(c.evict_one(), Some(2));
        assert_eq!(c.evict_one(), Some(3));
        assert_eq!(c.evict_one(), Some(1));
        assert_eq!(c.evict_one(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn evict_one_frees_capacity() {
        let mut c = lru_cache(2);
        c.access(1);
        c.access(2);
        c.evict_one();
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!(),
        }
    }

    #[test]
    fn keys_iterates_residents() {
        let mut c = lru_cache(3);
        c.access(10);
        c.access(20);
        let mut ks: Vec<u64> = c.keys().copied().collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![10, 20]);
    }

    #[test]
    fn values_live_in_the_arena() {
        let mut c: CacheSim<u64, Lru, String> = CacheSim::new(2, Lru::new(2));
        assert!(c.insert_cold_with(1, "one".into()).is_none());
        assert!(c.insert_cold_with(2, "two".into()).is_none());
        assert_eq!(c.access_if_present(&1), Some(&"one".to_string()));
        // 2 is now LRU; inserting 3 evicts it with its value.
        let evicted = c.insert_cold_with(3, "three".into());
        assert_eq!(evicted, Some((2, "two".to_string())));
        assert_eq!(c.access_if_present(&2), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn get_and_get_mut_skip_recency() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(2, Lru::new(2));
        c.insert_cold_with(1, 10);
        c.insert_cold_with(2, 20);
        *c.get_mut(&1).unwrap() += 1;
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!((c.hits(), c.misses()), (0, 0), "peeks must not count");
        // 1 was NOT refreshed by get/get_mut: it is still the LRU victim.
        assert_eq!(c.insert_cold_with(3, 30), Some((1, 11)));
    }

    #[test]
    fn touch_is_semantically_inert() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(2, Lru::new(2));
        c.insert_cold_with(1, 10);
        c.touch(&1);
        c.touch(&99);
        assert_eq!((c.hits(), c.misses()), (0, 0), "touch must not count");
        assert_eq!(c.len(), 1);
        // 1 was NOT refreshed: still the (only) LRU victim.
        c.insert_cold_with(2, 20);
        assert_eq!(c.insert_cold_with(3, 30), Some((1, 10)));
    }

    #[test]
    fn remove_entry_returns_value() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(2, Lru::new(2));
        c.insert_cold_with(7, 70);
        assert_eq!(c.remove_entry(&7), Some(70));
        assert_eq!(c.remove_entry(&7), None);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_matching_bulk_invalidates() {
        let mut c = lru_cache(8);
        for k in 0..8u64 {
            c.access(k);
        }
        assert_eq!(c.remove_matching(|&k| k % 2 == 0), 4);
        assert_eq!(c.len(), 4);
        for k in 0..8u64 {
            assert_eq!(c.contains(&k), k % 2 == 1);
        }
        // Freed capacity is reusable and survivors keep working.
        assert!(c.access(1).is_hit());
        match c.access(100) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, None),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.remove_matching(|_| false), 0);
    }

    #[test]
    fn entries_iterates_pairs() {
        let mut c: CacheSim<u64, Lru, u32> = CacheSim::new(3, Lru::new(3));
        c.insert_cold_with(1, 10);
        c.insert_cold_with(2, 20);
        let mut pairs: Vec<(u64, u32)> = c.entries().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        // Interleave access / remove / evict over a small key space so the
        // index's backward-shift deletion and slot reuse get exercised hard.
        let mut c = lru_cache(16);
        let mut model: Vec<u64> = Vec::new(); // recency order, LRU first
        for step in 0u64..50_000 {
            let k = (step.wrapping_mul(0x9E37_79B9)) % 48;
            match step % 7 {
                6 => {
                    let was = model.iter().position(|&m| m == k);
                    assert_eq!(c.remove(&k), was.is_some(), "step {step}");
                    if let Some(i) = was {
                        model.remove(i);
                    }
                }
                5 => {
                    assert_eq!(c.evict_one(), model.first().copied(), "step {step}");
                    if !model.is_empty() {
                        model.remove(0);
                    }
                }
                _ => {
                    let hit = c.access(k).is_hit();
                    let was = model.iter().position(|&m| m == k);
                    assert_eq!(hit, was.is_some(), "step {step}");
                    if let Some(i) = was {
                        model.remove(i);
                    } else if model.len() == 16 {
                        model.remove(0);
                    }
                    model.push(k);
                }
            }
            assert_eq!(c.len(), model.len(), "step {step}");
        }
    }
}
