//! Uniform-random replacement.
//!
//! Evicts a uniformly random resident item. Memoryless; a useful null model
//! in policy comparisons, and — unlike LRU — competitive against adaptive
//! adversaries in expectation.

use crate::policy::{Policy, PolicyKind, SlotId};
use atp_hash::CounterRng;

/// Random-eviction policy state.
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    occupied: Vec<SlotId>,
    // position of each slot within `occupied`, or usize::MAX.
    pos: Vec<usize>,
    rng: CounterRng,
}

impl RandomPolicy {
    /// Creates random-eviction state for a cache of `capacity` slots.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            occupied: Vec::with_capacity(capacity),
            pos: vec![usize::MAX; capacity],
            rng: CounterRng::new(seed, 0x7A4D),
        }
    }
}

impl Policy for RandomPolicy {
    fn on_insert(&mut self, s: SlotId) {
        self.pos[s] = self.occupied.len();
        self.occupied.push(s);
    }

    fn on_hit(&mut self, _s: SlotId) {}

    fn choose_victim(&mut self) -> SlotId {
        let idx = self.rng.next_below(self.occupied.len() as u64) as usize;
        self.occupied[idx]
    }

    fn on_remove(&mut self, s: SlotId) {
        let idx = self.pos[s];
        debug_assert_ne!(idx, usize::MAX, "removing untracked slot");
        // atp-lint: allow(unwrap-policy, reason = "invariant: remove is only called while occupied slots exist")
        let last = self.occupied.pop().expect("occupied nonempty");
        if last != s {
            self.occupied[idx] = last;
            self.pos[last] = idx;
        }
        self.pos[s] = usize::MAX;
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;

    #[test]
    fn maintains_capacity_under_churn() {
        let mut c = CacheSim::new(8, RandomPolicy::new(8, 1));
        for k in 0..10_000u64 {
            c.access(k % 100);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn eviction_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut c = CacheSim::new(4, RandomPolicy::new(4, seed));
            let mut victims = Vec::new();
            for k in 0..50u64 {
                if let crate::cache::AccessResult::Miss { evicted: Some(v) } = c.access(k) {
                    victims.push(v);
                }
            }
            victims
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn explicit_remove_keeps_tracking_consistent() {
        let mut c = CacheSim::new(4, RandomPolicy::new(4, 3));
        for k in 0..4u64 {
            c.access(k);
        }
        c.remove(&2);
        c.access(10);
        c.access(11); // forces an eviction; must not panic or pick slot of 2
        assert!(c.len() <= 4);
    }

    #[test]
    fn victims_spread_over_residents() {
        // Over many evictions every resident should be hit at least once.
        let mut c = CacheSim::new(4, RandomPolicy::new(4, 5));
        use atp_hash::FxHashSet;
        let mut victims = FxHashSet::default();
        for k in 0..400u64 {
            if let crate::cache::AccessResult::Miss { evicted: Some(v) } = c.access(k) {
                victims.insert(v % 4);
            }
        }
        assert_eq!(victims.len(), 4, "random evictions never hit some slots");
    }
}
