//! Segmented LRU.
//!
//! Two LRU segments: new items enter a *probationary* segment; a hit
//! promotes to the *protected* segment (bounded to a fraction of capacity,
//! demoting its LRU item back to probationary when full). Victims come from
//! the probationary tail. SLRU resists one-touch scan pollution while
//! keeping LRU's recency behaviour for the hot set.

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// SLRU policy state.
#[derive(Clone, Debug)]
pub struct Slru {
    probation: IndexList,
    protected: IndexList,
    seg_of: Vec<Option<Segment>>,
    protected_cap: usize,
}

impl Slru {
    /// Creates SLRU state with the default 80% protected fraction.
    pub fn new(capacity: usize) -> Self {
        Self::with_protected_fraction(capacity, 0.8)
    }

    /// Creates SLRU state with a custom protected fraction in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_protected_fraction(capacity: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        Self {
            probation: IndexList::new(capacity),
            protected: IndexList::new(capacity),
            seg_of: vec![None; capacity],
            protected_cap: ((capacity as f64) * fraction).floor() as usize,
        }
    }
}

impl Policy for Slru {
    fn on_insert(&mut self, s: SlotId) {
        self.probation.push_front(s);
        self.seg_of[s] = Some(Segment::Probation);
    }

    fn on_hit(&mut self, s: SlotId) {
        // atp-lint: allow(unwrap-policy, reason = "invariant: slots are tracked from on_insert until remove, so metadata lookups cannot miss")
        match self.seg_of[s].expect("hit on untracked slot") {
            Segment::Protected => self.protected.move_to_front(s),
            Segment::Probation => {
                // Promote; demote the protected LRU if the segment is full.
                self.probation.remove(s);
                if self.protected.len() >= self.protected_cap.max(1) {
                    if let Some(demoted) = self.protected.pop_back() {
                        self.probation.push_front(demoted);
                        self.seg_of[demoted] = Some(Segment::Probation);
                    }
                }
                self.protected.push_front(s);
                self.seg_of[s] = Some(Segment::Protected);
            }
        }
    }

    fn choose_victim(&mut self) -> SlotId {
        self.probation
            .back()
            .or_else(|| self.protected.back())
            // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
            .expect("choose_victim on empty cache")
    }

    fn on_remove(&mut self, s: SlotId) {
        // atp-lint: allow(unwrap-policy, reason = "invariant: slots are tracked from on_insert until remove, so metadata lookups cannot miss")
        match self.seg_of[s].take().expect("remove on untracked slot") {
            Segment::Probation => self.probation.remove(s),
            Segment::Protected => self.protected.remove(s),
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Slru
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn one_touch_scan_does_not_evict_hot_set() {
        let mut c = CacheSim::new(10, Slru::new(10));
        // Build a hot set (touched twice → protected).
        for k in 0..5u64 {
            c.access(k);
            c.access(k);
        }
        // Cold scan of one-touch keys.
        for k in 100..160u64 {
            c.access(k);
        }
        for k in 0..5u64 {
            assert!(c.contains(&k), "hot key {k} was evicted by scan");
        }
    }

    #[test]
    fn victim_comes_from_probation_first() {
        let mut c = CacheSim::new(3, Slru::new(3));
        c.access(1);
        c.access(1); // 1 → protected
        c.access(2); // probation
        c.access(3); // probation
        match c.access(4) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn protected_overflow_demotes() {
        // protected_cap = floor(4*0.5) = 2.
        let mut c = CacheSim::new(4, Slru::with_protected_fraction(4, 0.5));
        for k in 0..4u64 {
            c.access(k);
        }
        // Promote 0,1,2: promoting 2 must demote 0 (protected LRU).
        c.access(0);
        c.access(1);
        c.access(2);
        // Evictions should now take probation members (3, then demoted 0).
        match c.access(10) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(3)),
            _ => panic!(),
        }
        match c.access(11) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(0)),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn bad_fraction_rejected() {
        Slru::with_protected_fraction(4, 1.5);
    }

    #[test]
    fn falls_back_to_protected_when_probation_empty() {
        let mut c = CacheSim::new(2, Slru::new(2));
        c.access(1);
        c.access(2);
        c.access(1); // protect
        c.access(2); // protect (probation now empty)
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }
}
