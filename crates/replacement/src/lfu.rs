//! Least-frequently-used replacement.
//!
//! Evicts the resident item with the fewest accesses, breaking ties toward
//! the least recently inserted/bumped. Implemented with an ordered map keyed
//! by `(frequency, tick)` — O(log n) per operation, which is plenty for a
//! simulator and keeps the code obviously correct.

use crate::policy::{Policy, PolicyKind, SlotId};
use std::collections::BTreeMap;

/// LFU policy state.
#[derive(Clone, Debug, Default)]
pub struct Lfu {
    // (freq, tick) -> slot; the first entry is the victim.
    order: BTreeMap<(u64, u64), SlotId>,
    // per-slot (freq, tick) back-pointers; None when slot is free.
    key_of: Vec<Option<(u64, u64)>>,
    tick: u64,
}

impl Lfu {
    /// Creates LFU state for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            order: BTreeMap::new(),
            key_of: vec![None; capacity],
            tick: 0,
        }
    }

    fn bump(&mut self, s: SlotId, new_freq: u64) {
        if let Some(old) = self.key_of[s].take() {
            self.order.remove(&old);
        }
        let key = (new_freq, self.tick);
        self.tick += 1;
        self.order.insert(key, s);
        self.key_of[s] = Some(key);
    }
}

impl Policy for Lfu {
    fn on_insert(&mut self, s: SlotId) {
        self.bump(s, 1);
    }

    fn on_hit(&mut self, s: SlotId) {
        // atp-lint: allow(unwrap-policy, reason = "invariant: slots are tracked from on_insert until remove, so metadata lookups cannot miss")
        let freq = self.key_of[s].expect("hit on untracked slot").0;
        self.bump(s, freq + 1);
    }

    fn choose_victim(&mut self) -> SlotId {
        *self
            .order
            .values()
            .next()
            // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
            .expect("choose_victim on empty cache")
    }

    fn on_remove(&mut self, s: SlotId) {
        if let Some(key) = self.key_of[s].take() {
            self.order.remove(&key);
        }
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn evicts_least_frequent() {
        let mut c = CacheSim::new(2, Lfu::new(2));
        c.access(1);
        c.access(1);
        c.access(1);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn ties_break_toward_older() {
        let mut c = CacheSim::new(2, Lfu::new(2));
        c.access(1);
        c.access(2); // both freq 1; 1 is older
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn protects_hot_items_against_scans() {
        let mut c = CacheSim::new(4, Lfu::new(4));
        // Heat up 0 and 1.
        for _ in 0..10 {
            c.access(0);
            c.access(1);
        }
        // Long cold scan.
        for k in 100..200u64 {
            c.access(k);
        }
        assert!(c.contains(&0));
        assert!(c.contains(&1));
    }

    #[test]
    fn remove_then_reuse_slot() {
        let mut c = CacheSim::new(2, Lfu::new(2));
        c.access(1);
        c.access(2);
        c.remove(&1);
        c.access(3);
        c.access(3);
        // Evict 2 (freq 1), not 3 (freq 2).
        match c.access(4) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
    }
}
