//! Least-recently-used replacement.
//!
//! The policy analyzed by Sleator and Tarjan [47] and used for both the TLB
//! and RAM in the paper's experiments (Section 6). O(1) per operation via an
//! intrusive recency list: front = most recent, back = victim.

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

/// LRU policy state.
#[derive(Clone, Debug)]
pub struct Lru {
    recency: IndexList,
}

impl Lru {
    /// Creates LRU state for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            recency: IndexList::new(capacity),
        }
    }
}

impl Policy for Lru {
    #[inline]
    fn on_insert(&mut self, s: SlotId) {
        self.recency.push_front(s);
    }

    #[inline]
    fn on_hit(&mut self, s: SlotId) {
        self.recency.move_to_front(s);
    }

    #[inline]
    fn choose_victim(&mut self) -> SlotId {
        // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
        self.recency.back().expect("choose_victim on empty cache")
    }

    #[inline]
    fn on_remove(&mut self, s: SlotId) {
        self.recency.remove(s);
    }

    #[inline]
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;

    #[test]
    fn evicts_least_recent() {
        let mut c = CacheSim::new(3, Lru::new(3));
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(1); // refresh 1; LRU order now 2,3,1
        let r = c.access(4);
        match r {
            crate::cache::AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
    }

    #[test]
    fn sequential_scan_thrashes() {
        // Classic LRU worst case: cyclic scan of capacity+1 items misses always.
        let mut c = CacheSim::new(3, Lru::new(3));
        for i in 0..40u64 {
            let r = c.access(i % 4);
            if i >= 4 {
                assert!(!r.is_hit(), "access {i} unexpectedly hit");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = CacheSim::new(4, Lru::new(4));
        for i in 0..100u64 {
            let r = c.access(i % 4);
            if i >= 4 {
                assert!(r.is_hit());
            }
        }
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn kind_reports_lru() {
        assert_eq!(Lru::new(1).kind(), PolicyKind::Lru);
    }
}
