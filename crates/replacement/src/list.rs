//! An index-based intrusive doubly-linked list.
//!
//! Replacement policies need O(1) "move to front", "pop back", and "unlink
//! arbitrary element". A pointer-based list would fight the borrow checker;
//! instead we link *slot indices* through a flat `Vec` — the standard
//! arena-backed pattern for cache simulators. Slots are allocated by the
//! caller ([`crate::cache::CacheSim`]) and must be `< capacity`.
//!
//! Links are stored as `u32` slot indices: half the memory of `usize`
//! links, so twice as many nodes fit per cache line on the hot
//! move-to-front path. The public API stays in `usize`.
//!
//! The list is *circular through a sentinel node* stored at index
//! `capacity`: the sentinel's `next` is the head and its `prev` is the
//! tail. Every linked node therefore has a real predecessor and successor,
//! which makes `push_front`/`push_back`/`remove` straight-line code — no
//! "am I the head/tail?" branches, which are data-dependent and
//! mispredict-prone on the move-to-front path taken by every LRU hit.
//! Unlinked slots are marked by `prev[s] == NIL`.

/// Sentinel meaning "not linked".
const NIL: u32 = u32::MAX;

/// A node's links, stored as one pair so touching both costs a single
/// bounds check and one cache line.
#[derive(Clone, Copy, Debug)]
struct Link {
    prev: u32,
    next: u32,
}

/// A doubly-linked list over externally-allocated slot indices.
#[derive(Clone, Debug)]
pub struct IndexList {
    /// `capacity + 1` entries; the extra slot is the circular sentinel.
    links: Vec<Link>,
    /// Sentinel index (`== capacity`).
    sent: u32,
    len: usize,
}

impl IndexList {
    /// Creates an empty list able to link slots `0..capacity`.
    ///
    /// # Panics
    /// Panics if `capacity >= u32::MAX` (slot links are 32-bit).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity < u32::MAX as usize,
            "capacity {capacity} exceeds u32 slot links"
        );
        let sent = capacity as u32;
        let mut links = vec![
            Link {
                prev: NIL,
                next: NIL
            };
            capacity + 1
        ];
        links[capacity] = Link {
            prev: sent,
            next: sent,
        };
        Self {
            links,
            sent,
            len: 0,
        }
    }

    /// Number of linked slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First slot, if any.
    #[inline]
    pub fn front(&self) -> Option<usize> {
        let h = self.links[self.sent as usize].next;
        (h != self.sent).then_some(h as usize)
    }

    /// Last slot, if any.
    #[inline]
    pub fn back(&self) -> Option<usize> {
        let t = self.links[self.sent as usize].prev;
        (t != self.sent).then_some(t as usize)
    }

    /// Slot after `s`, if any.
    #[inline]
    pub fn next_of(&self, s: usize) -> Option<usize> {
        let n = self.links[s].next;
        (n != NIL && n != self.sent).then_some(n as usize)
    }

    /// Slot before `s`, if any.
    #[inline]
    pub fn prev_of(&self, s: usize) -> Option<usize> {
        let p = self.links[s].prev;
        (p != NIL && p != self.sent).then_some(p as usize)
    }

    /// Links `s` at the front.
    ///
    /// # Panics
    /// Debug-panics if `s` is already linked.
    #[inline]
    pub fn push_front(&mut self, s: usize) {
        debug_assert!(!self.contains(s), "slot {s} already linked");
        let s32 = s as u32;
        let sent = self.sent as usize;
        let h = self.links[sent].next;
        self.links[s] = Link {
            prev: self.sent,
            next: h,
        };
        self.links[h as usize].prev = s32;
        self.links[sent].next = s32;
        self.len += 1;
    }

    /// Links `s` at the back.
    #[inline]
    pub fn push_back(&mut self, s: usize) {
        debug_assert!(!self.contains(s), "slot {s} already linked");
        let s32 = s as u32;
        let sent = self.sent as usize;
        let t = self.links[sent].prev;
        self.links[s] = Link {
            prev: t,
            next: self.sent,
        };
        self.links[t as usize].next = s32;
        self.links[sent].prev = s32;
        self.len += 1;
    }

    /// Unlinks `s` (which must be linked).
    #[inline]
    pub fn remove(&mut self, s: usize) {
        debug_assert!(self.contains(s), "removing unlinked slot {s}");
        let Link { prev: p, next: n } = self.links[s];
        self.links[p as usize].next = n;
        self.links[n as usize].prev = p;
        self.links[s] = Link {
            prev: NIL,
            next: NIL,
        };
        self.len -= 1;
    }

    /// Unlinks the last slot and returns it.
    pub fn pop_back(&mut self) -> Option<usize> {
        let t = self.back()?;
        self.remove(t);
        Some(t)
    }

    /// Unlinks the first slot and returns it.
    pub fn pop_front(&mut self) -> Option<usize> {
        let h = self.front()?;
        self.remove(h);
        Some(h)
    }

    /// Moves `s` to the front (must be linked).
    ///
    /// Fused unlink+relink rather than `remove` + `push_front`: the length
    /// is unchanged and `s`'s links are overwritten anyway, and thanks to
    /// the sentinel the whole operation is branch-free past the
    /// already-at-front early exit. This is the hottest code in the crate —
    /// it runs on every LRU hit.
    #[inline]
    pub fn move_to_front(&mut self, s: usize) {
        debug_assert!(self.contains(s), "moving unlinked slot {s}");
        let s32 = s as u32;
        let sent = self.sent as usize;
        let h = self.links[sent].next;
        if h == s32 {
            return;
        }
        // `s` is not the head, so its predecessor `p` is a real node or the
        // sentinel — either way the writes below cannot clobber `h`'s
        // `next` link (`h != s`, `h != n`; `h == p` only touches `.prev`).
        let Link { prev: p, next: n } = self.links[s];
        self.links[p as usize].next = n;
        self.links[n as usize].prev = p;
        self.links[s] = Link {
            prev: self.sent,
            next: h,
        };
        self.links[h as usize].prev = s32;
        self.links[sent].next = s32;
    }

    /// Moves `s` to the back (must be linked). Mirror of
    /// [`Self::move_to_front`].
    #[inline]
    pub fn move_to_back(&mut self, s: usize) {
        debug_assert!(self.contains(s), "moving unlinked slot {s}");
        let s32 = s as u32;
        let sent = self.sent as usize;
        let t = self.links[sent].prev;
        if t == s32 {
            return;
        }
        let Link { prev: p, next: n } = self.links[s];
        self.links[p as usize].next = n;
        self.links[n as usize].prev = p;
        self.links[s] = Link {
            prev: t,
            next: self.sent,
        };
        self.links[t as usize].next = s32;
        self.links[sent].prev = s32;
    }

    /// Whether `s` is currently linked. One load: every linked node has a
    /// real predecessor (at least the sentinel), so `prev == NIL` means
    /// unlinked.
    #[inline]
    pub fn contains(&self, s: usize) -> bool {
        self.links[s].prev != NIL
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.links[self.sent as usize].next;
        core::iter::from_fn(move || {
            if cur == self.sent {
                None
            } else {
                let out = cur as usize;
                cur = self.links[out].next;
                Some(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_front_back() {
        let mut l = IndexList::new(8);
        l.push_front(0);
        l.push_front(1);
        l.push_back(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 0, 2]);
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_front(), Some(1));
        assert_eq!(l.pop_front(), Some(0));
        assert_eq!(l.pop_front(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut l = IndexList::new(8);
        for s in 0..5 {
            l.push_back(s);
        }
        l.remove(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(l.len(), 4);
        assert!(!l.contains(2));
    }

    #[test]
    fn move_to_front_and_back() {
        let mut l = IndexList::new(8);
        for s in 0..4 {
            l.push_back(s);
        }
        l.move_to_front(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 0, 1, 3]);
        l.move_to_back(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 2]);
        // Moving head to front / tail to back is a no-op.
        l.move_to_front(0);
        l.move_to_back(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn contains_is_accurate() {
        let mut l = IndexList::new(4);
        assert!(!l.contains(0));
        l.push_back(0);
        assert!(l.contains(0));
        l.push_back(1);
        assert!(l.contains(1));
        l.remove(0);
        assert!(!l.contains(0));
        assert!(l.contains(1));
    }

    #[test]
    fn singleton_list_edges() {
        let mut l = IndexList::new(2);
        l.push_back(1);
        assert_eq!(l.front(), Some(1));
        assert_eq!(l.back(), Some(1));
        l.move_to_front(1);
        l.move_to_back(1);
        assert_eq!(l.len(), 1);
        l.remove(1);
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }

    #[test]
    fn relink_after_remove() {
        let mut l = IndexList::new(4);
        l.push_back(0);
        l.push_back(1);
        l.remove(0);
        l.push_back(0); // reuse the slot
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 0]);
    }
}
