//! An index-based intrusive doubly-linked list.
//!
//! Replacement policies need O(1) "move to front", "pop back", and "unlink
//! arbitrary element". A pointer-based list would fight the borrow checker;
//! instead we link *slot indices* through a flat `Vec` — the standard
//! arena-backed pattern for cache simulators. Slots are allocated by the
//! caller ([`crate::cache::CacheSim`]) and must be `< capacity`.

/// Sentinel meaning "no link".
const NIL: usize = usize::MAX;

/// A doubly-linked list over externally-allocated slot indices.
#[derive(Clone, Debug)]
pub struct IndexList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
}

impl IndexList {
    /// Creates an empty list able to link slots `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First slot, if any.
    #[inline]
    pub fn front(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head)
    }

    /// Last slot, if any.
    #[inline]
    pub fn back(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Slot after `s`, if any.
    #[inline]
    pub fn next_of(&self, s: usize) -> Option<usize> {
        let n = self.next[s];
        (n != NIL).then_some(n)
    }

    /// Slot before `s`, if any.
    #[inline]
    pub fn prev_of(&self, s: usize) -> Option<usize> {
        let p = self.prev[s];
        (p != NIL).then_some(p)
    }

    /// Links `s` at the front.
    ///
    /// # Panics
    /// Debug-panics if `s` is already linked.
    pub fn push_front(&mut self, s: usize) {
        debug_assert!(!self.contains(s), "slot {s} already linked");
        self.prev[s] = NIL;
        self.next[s] = self.head;
        if self.head != NIL {
            self.prev[self.head] = s;
        } else {
            self.tail = s;
        }
        self.head = s;
        self.len += 1;
    }

    /// Links `s` at the back.
    pub fn push_back(&mut self, s: usize) {
        debug_assert!(!self.contains(s), "slot {s} already linked");
        self.next[s] = NIL;
        self.prev[s] = self.tail;
        if self.tail != NIL {
            self.next[self.tail] = s;
        } else {
            self.head = s;
        }
        self.tail = s;
        self.len += 1;
    }

    /// Unlinks `s` (which must be linked).
    pub fn remove(&mut self, s: usize) {
        let (p, n) = (self.prev[s], self.next[s]);
        if p != NIL {
            self.next[p] = n;
        } else {
            debug_assert_eq!(self.head, s, "removing unlinked slot {s}");
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            debug_assert_eq!(self.tail, s, "removing unlinked slot {s}");
            self.tail = p;
        }
        self.prev[s] = NIL;
        self.next[s] = NIL;
        self.len -= 1;
    }

    /// Unlinks the last slot and returns it.
    pub fn pop_back(&mut self) -> Option<usize> {
        let t = self.back()?;
        self.remove(t);
        Some(t)
    }

    /// Unlinks the first slot and returns it.
    pub fn pop_front(&mut self) -> Option<usize> {
        let h = self.front()?;
        self.remove(h);
        Some(h)
    }

    /// Moves `s` to the front (must be linked).
    pub fn move_to_front(&mut self, s: usize) {
        if self.head != s {
            self.remove(s);
            self.push_front(s);
        }
    }

    /// Moves `s` to the back (must be linked).
    pub fn move_to_back(&mut self, s: usize) {
        if self.tail != s {
            self.remove(s);
            self.push_back(s);
        }
    }

    /// Whether `s` is currently linked. O(1) except for the head special
    /// case, which is disambiguated via the stored links.
    pub fn contains(&self, s: usize) -> bool {
        self.head == s || self.prev[s] != NIL || self.next[s] != NIL
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.head;
        core::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let out = cur;
                cur = self.next[cur];
                Some(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_front_back() {
        let mut l = IndexList::new(8);
        l.push_front(0);
        l.push_front(1);
        l.push_back(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 0, 2]);
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_front(), Some(1));
        assert_eq!(l.pop_front(), Some(0));
        assert_eq!(l.pop_front(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle() {
        let mut l = IndexList::new(8);
        for s in 0..5 {
            l.push_back(s);
        }
        l.remove(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(l.len(), 4);
        assert!(!l.contains(2));
    }

    #[test]
    fn move_to_front_and_back() {
        let mut l = IndexList::new(8);
        for s in 0..4 {
            l.push_back(s);
        }
        l.move_to_front(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 0, 1, 3]);
        l.move_to_back(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 2]);
        // Moving head to front / tail to back is a no-op.
        l.move_to_front(0);
        l.move_to_back(2);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn contains_is_accurate() {
        let mut l = IndexList::new(4);
        assert!(!l.contains(0));
        l.push_back(0);
        assert!(l.contains(0));
        l.push_back(1);
        assert!(l.contains(1));
        l.remove(0);
        assert!(!l.contains(0));
        assert!(l.contains(1));
    }

    #[test]
    fn singleton_list_edges() {
        let mut l = IndexList::new(2);
        l.push_back(1);
        assert_eq!(l.front(), Some(1));
        assert_eq!(l.back(), Some(1));
        l.move_to_front(1);
        l.move_to_back(1);
        assert_eq!(l.len(), 1);
        l.remove(1);
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }

    #[test]
    fn relink_after_remove() {
        let mut l = IndexList::new(4);
        l.push_back(0);
        l.push_back(1);
        l.remove(0);
        l.push_back(0); // reuse the slot
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 0]);
    }
}
