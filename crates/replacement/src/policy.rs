//! The replacement-policy callback interface.

/// A cache slot index, allocated by [`crate::cache::CacheSim`];
/// always `< capacity`.
pub type SlotId = usize;

/// Callback interface implemented by every online replacement policy.
///
/// The driving [`crate::cache::CacheSim`] owns the key→slot map; the policy
/// only sees opaque slot ids and maintains whatever recency/frequency
/// structure it needs. Contract:
///
/// * `on_insert(s)` — a new item was placed in previously-free slot `s`;
/// * `on_hit(s)` — the item in slot `s` was accessed;
/// * `choose_victim()` — the cache is full; return an occupied slot to evict
///   (the simulator will follow up with `on_remove` for that slot);
/// * `on_remove(s)` — the item in slot `s` is gone (eviction *or* explicit
///   invalidation); the policy must forget it.
pub trait Policy: Send {
    /// Records the insertion of a new item into free slot `s`.
    fn on_insert(&mut self, s: SlotId);
    /// Records a hit on the item in slot `s`.
    fn on_hit(&mut self, s: SlotId);
    /// Selects an occupied slot to evict.
    fn choose_victim(&mut self) -> SlotId;
    /// Records removal of the item in slot `s`.
    fn on_remove(&mut self, s: SlotId);
    /// The policy's kind, for reporting.
    fn kind(&self) -> PolicyKind;
}

/// A policy that can be constructed from just `(capacity, seed)` — the
/// hook that lets [`crate::cache::CacheSim`] and downstream TLB types offer
/// fully monomorphized constructors (`Tlb::<_, Sieve>::monomorphic(..)`)
/// next to the runtime-configured [`PolicyKind`] path. Deterministic
/// policies ignore the seed.
pub trait PolicyBuild: Policy + Sized {
    /// Builds the policy for a cache of `capacity` slots.
    fn build(capacity: usize, seed: u64) -> Self;
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn on_insert(&mut self, s: SlotId) {
        (**self).on_insert(s)
    }
    fn on_hit(&mut self, s: SlotId) {
        (**self).on_hit(s)
    }
    fn choose_victim(&mut self) -> SlotId {
        (**self).choose_victim()
    }
    fn on_remove(&mut self, s: SlotId) {
        (**self).on_remove(s)
    }
    fn kind(&self) -> PolicyKind {
        (**self).kind()
    }
}

/// Enumeration of the online policies, for runtime configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently used.
    Lru,
    /// First-in first-out.
    Fifo,
    /// CLOCK / second chance.
    Clock,
    /// Most-recently used (anti-LRU; pathological on locality, useful as a
    /// worst-case comparator).
    Mru,
    /// Least-frequently used (O(1) frequency buckets).
    Lfu,
    /// Segmented LRU (probationary + protected segments).
    Slru,
    /// Simplified 2Q (A1in FIFO + Am LRU).
    TwoQ,
    /// Uniform random eviction.
    Random,
    /// LRU-2 (O'Neil et al.): evict by oldest second-most-recent reference.
    LruK,
    /// SIEVE (Zhang et al.): FIFO + visited bit with a persistent hand.
    Sieve,
    /// Randomized marking (Fiat et al.): O(log k)-competitive.
    Marking,
}

impl PolicyKind {
    /// All kinds, for sweep experiments.
    pub const ALL: [PolicyKind; 11] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Clock,
        PolicyKind::Mru,
        PolicyKind::Lfu,
        PolicyKind::Slru,
        PolicyKind::TwoQ,
        PolicyKind::Random,
        PolicyKind::LruK,
        PolicyKind::Sieve,
        PolicyKind::Marking,
    ];

    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Clock => "clock",
            PolicyKind::Mru => "mru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Slru => "slru",
            PolicyKind::TwoQ => "2q",
            PolicyKind::Random => "random",
            PolicyKind::LruK => "lru-2",
            PolicyKind::Sieve => "sieve",
            PolicyKind::Marking => "marking",
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_unique_names() {
        use atp_hash::FxHashSet;
        let names: FxHashSet<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(PolicyKind::Lru.to_string(), "lru");
        assert_eq!(PolicyKind::TwoQ.to_string(), "2q");
    }
}
