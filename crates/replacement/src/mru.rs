//! Most-recently-used replacement.
//!
//! Evicts the item touched most recently. Pathological under temporal
//! locality but optimal for cyclic scans slightly larger than the cache —
//! we keep it as a comparator (cf. "the worst page-replacement policy" [6]).

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

/// MRU policy state.
#[derive(Clone, Debug)]
pub struct Mru {
    recency: IndexList,
}

impl Mru {
    /// Creates MRU state for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            recency: IndexList::new(capacity),
        }
    }
}

impl Policy for Mru {
    fn on_insert(&mut self, s: SlotId) {
        self.recency.push_front(s);
    }

    fn on_hit(&mut self, s: SlotId) {
        self.recency.move_to_front(s);
    }

    fn choose_victim(&mut self) -> SlotId {
        // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
        self.recency.front().expect("choose_victim on empty cache")
    }

    fn on_remove(&mut self, s: SlotId) {
        self.recency.remove(s);
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Mru
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn evicts_most_recent() {
        let mut c = CacheSim::new(2, Mru::new(2));
        c.access(1);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn beats_lru_on_cyclic_scan() {
        use crate::lru::Lru;
        let cap = 8;
        let universe = 9u64; // one more than capacity
        let mut mru = CacheSim::new(cap, Mru::new(cap));
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        let mut mru_hits = 0u64;
        let mut lru_hits = 0u64;
        for i in 0..1000 {
            mru_hits += u64::from(mru.access(i % universe).is_hit());
            lru_hits += u64::from(lru.access(i % universe).is_hit());
        }
        assert_eq!(lru_hits, 0, "LRU must thrash on a cap+1 cycle");
        assert!(mru_hits > 500, "MRU should retain most of the cycle");
    }
}
