//! First-in-first-out replacement.
//!
//! Hits do not refresh position; the victim is always the oldest resident.

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

/// FIFO policy state.
#[derive(Clone, Debug)]
pub struct Fifo {
    queue: IndexList,
}

impl Fifo {
    /// Creates FIFO state for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            queue: IndexList::new(capacity),
        }
    }
}

impl Policy for Fifo {
    #[inline]
    fn on_insert(&mut self, s: SlotId) {
        self.queue.push_front(s);
    }

    #[inline]
    fn on_hit(&mut self, _s: SlotId) {
        // FIFO ignores hits.
    }

    #[inline]
    fn choose_victim(&mut self) -> SlotId {
        // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
        self.queue.back().expect("choose_victim on empty cache")
    }

    #[inline]
    fn on_remove(&mut self, s: SlotId) {
        self.queue.remove(s);
    }

    #[inline]
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn evicts_oldest_regardless_of_hits() {
        let mut c = CacheSim::new(2, Fifo::new(2));
        c.access(1);
        c.access(2);
        c.access(1); // hit; must NOT refresh
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn differs_from_lru_on_refresh_pattern() {
        use crate::lru::Lru;
        let mut fifo = CacheSim::new(2, Fifo::new(2));
        let mut lru = CacheSim::new(2, Lru::new(2));
        let trace = [1u64, 2, 1, 3, 1];
        let mut fifo_hits = 0;
        let mut lru_hits = 0;
        for &k in &trace {
            fifo_hits += u64::from(fifo.access(k).is_hit());
            lru_hits += u64::from(lru.access(k).is_hit());
        }
        // LRU keeps 1 alive; FIFO evicts it before the final access.
        assert!(lru_hits > fifo_hits, "lru {lru_hits} !> fifo {fifo_hits}");
    }
}
