//! Belady's OPT: the offline farthest-in-future algorithm.
//!
//! OPT evicts the resident item whose next use is farthest in the future;
//! it is optimal for the classic paging problem and serves as the lower
//! bound in our policy comparisons (Lemma 1 reduces both the TLB and the
//! RAM sub-problems to classic paging, so OPT bounds both).
//!
//! Implementation: one backward scan precomputes each position's next-use
//! index; the forward simulation keeps residents in a max-heap by next use
//! with lazy deletion. O(n log P) total.

use atp_hash::FxHashMap;
use std::collections::BinaryHeap;

/// Result of an offline OPT simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptStats {
    /// Number of misses (compulsory + capacity).
    pub misses: u64,
    /// Number of hits.
    pub hits: u64,
}

/// Runs Belady's OPT on `trace` with a cache of `capacity` entries.
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn opt_misses(trace: &[u64], capacity: usize) -> OptStats {
    assert!(capacity > 0, "capacity must be nonzero");
    let n = trace.len();

    // next_use[i] = next position after i where trace[i] recurs, or n (never).
    let mut next_use = vec![n; n];
    let mut last_seen: FxHashMap<u64, usize> = FxHashMap::default();
    for i in (0..n).rev() {
        if let Some(&j) = last_seen.get(&trace[i]) {
            next_use[i] = j;
        }
        last_seen.insert(trace[i], i);
    }

    // resident: key -> current next-use; heap of (next_use, key) lazy-deleted.
    let mut resident: FxHashMap<u64, usize> = FxHashMap::default();
    let mut heap: BinaryHeap<(usize, u64)> = BinaryHeap::new();
    let mut misses = 0u64;
    let mut hits = 0u64;

    for (i, &k) in trace.iter().enumerate() {
        let nu = next_use[i];
        if let Some(entry) = resident.get_mut(&k) {
            hits += 1;
            *entry = nu;
            heap.push((nu, k));
            continue;
        }
        misses += 1;
        if resident.len() == capacity {
            // Pop until a live entry (matching the resident's current next-use).
            loop {
                // atp-lint: allow(unwrap-policy, reason = "invariant: the heap holds every resident key, so a live victim exists")
                let (cand_nu, cand_k) = heap.pop().expect("heap has a live victim");
                if resident.get(&cand_k) == Some(&cand_nu) {
                    resident.remove(&cand_k);
                    break;
                }
            }
        }
        resident.insert(k, nu);
        heap.push((nu, k));
    }

    OptStats { misses, hits }
}

/// Convenience wrapper retaining the trace, for repeated queries.
#[derive(Clone, Debug)]
pub struct OptCache {
    trace: Vec<u64>,
}

impl OptCache {
    /// Wraps a trace for OPT evaluation.
    pub fn new(trace: Vec<u64>) -> Self {
        Self { trace }
    }

    /// Misses OPT incurs at the given capacity.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        opt_misses(&self.trace, capacity).misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;
    use crate::lru::Lru;

    #[test]
    fn textbook_example() {
        // Classic Belady example: 3 frames.
        let trace = [7u64, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2];
        let s = opt_misses(&trace, 3);
        // Known OPT fault count for this trace/capacity is 7.
        assert_eq!(s.misses, 7);
        assert_eq!(s.hits as usize, trace.len() - 7);
    }

    #[test]
    fn compulsory_misses_only_when_capacity_suffices() {
        let trace: Vec<u64> = (0..10).chain(0..10).chain(0..10).collect();
        let s = opt_misses(&trace, 10);
        assert_eq!(s.misses, 10);
    }

    #[test]
    fn cyclic_scan_opt_beats_lru() {
        // cap+1 cycle: LRU misses always; OPT misses ~1/cap of the time.
        let cap = 8usize;
        let trace: Vec<u64> = (0..1000u64).map(|i| i % (cap as u64 + 1)).collect();
        let opt = opt_misses(&trace, cap).misses;
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        let mut lru_misses = 0u64;
        for &k in &trace {
            lru_misses += u64::from(!lru.access(k).is_hit());
        }
        assert_eq!(lru_misses, 1000);
        assert!(opt < 200, "opt misses {opt}");
    }

    #[test]
    fn opt_never_exceeds_lru() {
        use atp_hash::CounterRng;
        let mut rng = CounterRng::new(21, 0);
        let trace: Vec<u64> = (0..5000).map(|_| rng.next_below(64)).collect();
        for cap in [2usize, 4, 8, 16, 32] {
            let opt = opt_misses(&trace, cap).misses;
            let mut lru = CacheSim::new(cap, Lru::new(cap));
            let mut lru_misses = 0u64;
            for &k in &trace {
                lru_misses += u64::from(!lru.access(k).is_hit());
            }
            assert!(opt <= lru_misses, "cap {cap}: opt {opt} > lru {lru_misses}");
        }
    }

    #[test]
    fn monotone_in_capacity() {
        let trace: Vec<u64> = (0..2000u64).map(|i| (i * i + i / 3) % 97).collect();
        let mut prev = u64::MAX;
        for cap in [1usize, 2, 4, 8, 16, 32, 64] {
            let m = opt_misses(&trace, cap).misses;
            assert!(m <= prev, "OPT misses must not increase with capacity");
            prev = m;
        }
    }

    #[test]
    fn empty_trace() {
        let s = opt_misses(&[], 4);
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 0);
    }
}
