//! CLOCK (second-chance) replacement.
//!
//! The classic one-bit approximation of LRU used by real virtual-memory
//! systems: items sit on a circular list with a reference bit; the hand
//! sweeps, clearing set bits and evicting the first clear one. Hits only set
//! a bit, making CLOCK far cheaper than true LRU in kernels — and a natural
//! "realistic RAM-replacement policy" input for the decoupling scheme.

use crate::list::IndexList;
use crate::policy::{Policy, PolicyKind, SlotId};

/// CLOCK policy state.
#[derive(Clone, Debug)]
pub struct Clock {
    // The circular order is approximated by a list: the hand is the back;
    // a swept item with its bit set moves to the front (one more lap).
    ring: IndexList,
    referenced: Vec<bool>,
}

impl Clock {
    /// Creates CLOCK state for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: IndexList::new(capacity),
            referenced: vec![false; capacity],
        }
    }
}

impl Policy for Clock {
    #[inline]
    fn on_insert(&mut self, s: SlotId) {
        self.referenced[s] = false;
        self.ring.push_front(s);
    }

    #[inline]
    fn on_hit(&mut self, s: SlotId) {
        self.referenced[s] = true;
    }

    #[inline]
    fn choose_victim(&mut self) -> SlotId {
        loop {
            // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
            let hand = self.ring.back().expect("choose_victim on empty cache");
            if self.referenced[hand] {
                self.referenced[hand] = false;
                self.ring.move_to_front(hand); // second chance
            } else {
                return hand;
            }
        }
    }

    #[inline]
    fn on_remove(&mut self, s: SlotId) {
        self.referenced[s] = false;
        self.ring.remove(s);
    }

    #[inline]
    fn kind(&self) -> PolicyKind {
        PolicyKind::Clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn unreferenced_oldest_is_evicted() {
        let mut c = CacheSim::new(2, Clock::new(2));
        c.access(1);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn referenced_item_gets_second_chance() {
        let mut c = CacheSim::new(2, Clock::new(2));
        c.access(1);
        c.access(2);
        c.access(1); // set 1's bit
        match c.access(3) {
            // Hand sweeps 1 (bit set → spared), then evicts 2.
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn clock_approximates_lru_hit_rate() {
        use crate::lru::Lru;
        use atp_hash::CounterRng;
        // On a Zipf-ish skewed trace CLOCK should be within a few percent of LRU.
        let cap = 64;
        let mut clock = CacheSim::new(cap, Clock::new(cap));
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        let mut rng = CounterRng::new(99, 0);
        let mut clock_hits = 0u64;
        let mut lru_hits = 0u64;
        let n = 20_000;
        for _ in 0..n {
            // Geometric-ish skew over 512 keys.
            let r = rng.next_f64();
            let k = (r * r * 512.0) as u64;
            clock_hits += u64::from(clock.access(k).is_hit());
            lru_hits += u64::from(lru.access(k).is_hit());
        }
        let ratio = clock_hits as f64 / lru_hits as f64;
        assert!((0.9..=1.1).contains(&ratio), "clock/lru hit ratio {ratio}");
    }

    #[test]
    fn all_referenced_degenerates_to_fifo_lap() {
        let mut c = CacheSim::new(3, Clock::new(3));
        for k in [1u64, 2, 3] {
            c.access(k);
        }
        for k in [1u64, 2, 3] {
            c.access(k); // set all bits
        }
        // Victim: hand clears 1,2,3 bits over one lap then evicts oldest (1).
        match c.access(4) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }
}
