//! LRU-K replacement (O'Neil, O'Neil & Weikum).
//!
//! Evicts the item whose K-th most recent access is oldest (items with
//! fewer than K accesses are treated as having an infinitely old K-th
//! reference and evicted first, in LRU order among themselves). K = 2 is
//! the classical database buffer-pool configuration: it discriminates
//! between pages with genuine reuse and one-touch scan pages.

use crate::policy::{Policy, PolicyKind, SlotId};
use std::collections::BTreeMap;

/// LRU-K policy state.
#[derive(Clone, Debug)]
pub struct LruK {
    k: usize,
    /// Rolling access-time history per slot, most recent first (len ≤ k).
    history: Vec<Vec<u64>>,
    /// Eviction order: (kth-ref time, slot). Items with < k refs use their
    /// oldest known time but sort in a "cold" band below all full-history
    /// items (band 0 vs band 1).
    order: BTreeMap<(u8, u64, u64), SlotId>,
    key_of: Vec<Option<(u8, u64, u64)>>,
    clock: u64,
}

impl LruK {
    /// Creates LRU-K state for a cache of `capacity` slots.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(capacity: usize, k: usize) -> Self {
        assert!(k > 0, "k must be nonzero");
        Self {
            k,
            history: vec![Vec::new(); capacity],
            order: BTreeMap::new(),
            key_of: vec![None; capacity],
            clock: 0,
        }
    }

    /// Conventional LRU-2.
    pub fn two(capacity: usize) -> Self {
        Self::new(capacity, 2)
    }

    fn reindex(&mut self, s: SlotId) {
        if let Some(old) = self.key_of[s].take() {
            self.order.remove(&old);
        }
        let h = &self.history[s];
        let key = if h.len() >= self.k {
            // Full history: band 1, ordered by K-th most recent reference.
            (1u8, h[self.k - 1], self.clock)
        } else {
            // Cold band: ordered by most recent reference (plain LRU).
            // atp-lint: allow(unwrap-policy, reason = "invariant: histories are created non-empty on first touch")
            (0u8, *h.last().expect("nonempty history"), self.clock)
        };
        self.clock += 1;
        self.order.insert(key, s);
        self.key_of[s] = Some(key);
    }

    fn touch(&mut self, s: SlotId) {
        self.clock += 1;
        let t = self.clock;
        let h = &mut self.history[s];
        h.insert(0, t);
        h.truncate(self.k);
        self.reindex(s);
    }
}

impl Policy for LruK {
    fn on_insert(&mut self, s: SlotId) {
        self.history[s].clear();
        self.touch(s);
    }

    fn on_hit(&mut self, s: SlotId) {
        self.touch(s);
    }

    fn choose_victim(&mut self) -> SlotId {
        *self
            .order
            .values()
            .next()
            // atp-lint: allow(unwrap-policy, reason = "policy contract: choose_victim is never called on an empty cache (CacheSim only evicts when full)")
            .expect("choose_victim on empty cache")
    }

    fn on_remove(&mut self, s: SlotId) {
        if let Some(key) = self.key_of[s].take() {
            self.order.remove(&key);
        }
        self.history[s].clear();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::LruK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessResult, CacheSim};

    #[test]
    fn one_touch_pages_evicted_before_reused_pages() {
        let mut c = CacheSim::new(3, LruK::two(3));
        c.access(1);
        c.access(1); // 1 has 2 refs → warm band
        c.access(2); // cold
        c.access(3); // cold
                     // Victim must be the coldest one-touch page (2), not the old-but-
                     // reused 1.
        match c.access(4) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(2)),
            _ => panic!(),
        }
        assert!(c.contains(&1));
    }

    #[test]
    fn within_warm_band_kth_reference_orders() {
        let mut c = CacheSim::new(2, LruK::two(2));
        c.access(1);
        c.access(1); // 1: refs at t1,t2 → 2nd-most-recent = t1
        c.access(2);
        c.access(2); // 2: refs at t3,t4 → 2nd-most-recent = t3 > t1
        match c.access(5) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn k1_degenerates_to_lru() {
        use crate::lru::Lru;
        let trace: Vec<u64> = vec![1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1];
        let mut a = CacheSim::new(3, LruK::new(3, 1));
        let mut b = CacheSim::new(3, Lru::new(3));
        for &k in &trace {
            assert_eq!(a.access(k).is_hit(), b.access(k).is_hit(), "at {k}");
        }
    }

    #[test]
    fn scan_resistance_beats_lru() {
        use crate::lru::Lru;
        let cap = 8;
        let mut lruk = CacheSim::new(cap, LruK::two(cap));
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        // Warm 4 hot keys.
        for k in 0..4u64 {
            lruk.access(k);
            lruk.access(k);
            lru.access(k);
            lru.access(k);
        }
        let mut scan = 100u64;
        let (mut hk, mut hl) = (0u64, 0u64);
        for round in 0..500u64 {
            let hot = round % 4;
            hk += u64::from(lruk.access(hot).is_hit());
            hl += u64::from(lru.access(hot).is_hit());
            for _ in 0..6 {
                scan += 1;
                lruk.access(scan);
                lru.access(scan);
            }
        }
        assert!(hk > hl, "lru-2 {hk} should beat lru {hl} under scans");
    }

    #[test]
    fn remove_clears_history() {
        let mut c = CacheSim::new(2, LruK::two(2));
        c.access(1);
        c.access(1);
        c.remove(&1);
        c.access(1); // re-inserted: history must restart cold
        c.access(2);
        c.access(2);
        match c.access(3) {
            AccessResult::Miss { evicted } => assert_eq!(evicted, Some(1)),
            _ => panic!(),
        }
    }
}
