//! The randomized Marking algorithm.
//!
//! The classic O(log k)-competitive randomized paging algorithm (Fiat, Karp,
//! Luby, McGeoch, Sleator & Young [22] — cited by the paper as part of the
//! classical-paging lineage): accesses *mark* items; a miss evicts a
//! uniformly random **unmarked** item; when every resident item is marked, a
//! new phase begins and all marks are cleared. Against oblivious adversaries
//! its expected miss count beats every deterministic policy's worst case.

use crate::policy::{Policy, PolicyKind, SlotId};
use atp_hash::CounterRng;

/// Randomized-marking policy state.
#[derive(Clone, Debug)]
pub struct Marking {
    marked: Vec<bool>,
    /// Unmarked resident slots, as a swap-removable pool.
    unmarked_pool: Vec<SlotId>,
    pool_pos: Vec<usize>,
    /// All resident slots (needed to start a new phase).
    resident: Vec<SlotId>,
    resident_pos: Vec<usize>,
    rng: CounterRng,
    /// Completed phases (exposed for analysis/tests).
    phases: u64,
}

const NONE: usize = usize::MAX;

impl Marking {
    /// Creates marking state for a cache of `capacity` slots.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            marked: vec![false; capacity],
            unmarked_pool: Vec::with_capacity(capacity),
            pool_pos: vec![NONE; capacity],
            resident: Vec::with_capacity(capacity),
            resident_pos: vec![NONE; capacity],
            rng: CounterRng::new(seed, 0x3A7C),
            phases: 0,
        }
    }

    /// Number of completed phases so far.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    fn pool_remove(&mut self, s: SlotId) {
        let i = self.pool_pos[s];
        if i == NONE {
            return;
        }
        // atp-lint: allow(unwrap-policy, reason = "the early return above guarantees s is in the pool, so the pool is non-empty")
        let last = self.unmarked_pool.pop().expect("pool nonempty");
        if last != s {
            self.unmarked_pool[i] = last;
            self.pool_pos[last] = i;
        }
        self.pool_pos[s] = NONE;
    }

    fn pool_add(&mut self, s: SlotId) {
        debug_assert_eq!(self.pool_pos[s], NONE);
        self.pool_pos[s] = self.unmarked_pool.len();
        self.unmarked_pool.push(s);
    }

    fn mark(&mut self, s: SlotId) {
        if !self.marked[s] {
            self.marked[s] = true;
            self.pool_remove(s);
        }
    }
}

impl Policy for Marking {
    fn on_insert(&mut self, s: SlotId) {
        self.resident_pos[s] = self.resident.len();
        self.resident.push(s);
        // A newly fetched item is marked (it was just requested).
        self.marked[s] = true;
        debug_assert_eq!(self.pool_pos[s], NONE);
    }

    fn on_hit(&mut self, s: SlotId) {
        self.mark(s);
    }

    fn choose_victim(&mut self) -> SlotId {
        if self.unmarked_pool.is_empty() {
            // Phase boundary: clear all marks.
            self.phases += 1;
            for i in 0..self.resident.len() {
                let s = self.resident[i];
                self.marked[s] = false;
            }
            let residents = self.resident.clone();
            for s in residents {
                if self.pool_pos[s] == NONE {
                    self.pool_add(s);
                }
            }
        }
        let i = self.rng.next_below(self.unmarked_pool.len() as u64) as usize;
        self.unmarked_pool[i]
    }

    fn on_remove(&mut self, s: SlotId) {
        self.pool_remove(s);
        self.marked[s] = false;
        let i = self.resident_pos[s];
        debug_assert_ne!(i, NONE);
        // atp-lint: allow(unwrap-policy, reason = "invariant: remove is only called while residents exist")
        let last = self.resident.pop().expect("resident nonempty");
        if last != s {
            self.resident[i] = last;
            self.resident_pos[last] = i;
        }
        self.resident_pos[s] = NONE;
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Marking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;

    #[test]
    fn marked_items_survive_the_phase() {
        let mut c = CacheSim::new(3, Marking::new(3, 1));
        c.access(1);
        c.access(2);
        c.access(3);
        // All three are marked (fetched this phase). Accessing 4 forces a
        // phase boundary; exactly one of {1,2,3} is evicted.
        c.access(4);
        let survivors = [1u64, 2, 3].iter().filter(|k| c.contains(k)).count();
        assert_eq!(survivors, 2);
        assert!(c.contains(&4));
    }

    #[test]
    fn hit_marks_and_protects_within_phase() {
        // After the phase starts, re-accessed items must not be evicted
        // while unmarked ones remain.
        let mut c = CacheSim::new(3, Marking::new(3, 2));
        c.access(1);
        c.access(2);
        c.access(3);
        c.access(4); // new phase began; 4 marked, two of {1,2,3} unmarked
        let present: Vec<u64> = [1u64, 2, 3].into_iter().filter(|k| c.contains(k)).collect();
        // Mark one survivor; the next eviction must take the other.
        c.access(present[0]);
        c.access(5);
        assert!(c.contains(&present[0]), "marked survivor evicted");
        assert!(!c.contains(&present[1]), "unmarked item should have gone");
    }

    #[test]
    fn beats_lru_worst_case_on_cyclic_scan() {
        use crate::lru::Lru;
        // The adversarial cap+1 cycle: LRU misses every access; marking
        // misses ~H_k per phase of k+1 accesses in expectation.
        let cap = 16;
        let universe = cap as u64 + 1;
        let mut marking = CacheSim::new(cap, Marking::new(cap, 3));
        let mut lru = CacheSim::new(cap, Lru::new(cap));
        let (mut mm, mut ml) = (0u64, 0u64);
        for i in 0..5_000u64 {
            mm += u64::from(!marking.access(i % universe).is_hit());
            ml += u64::from(!lru.access(i % universe).is_hit());
        }
        assert_eq!(ml, 5_000, "LRU thrashes by construction");
        assert!(mm < 3_000, "randomized marking should miss far less: {mm}");
    }

    #[test]
    fn phase_counter_advances() {
        let mut c = CacheSim::new(2, Marking::new(2, 4));
        for k in 0..20u64 {
            c.access(k);
        }
        assert!(c.policy().phases() >= 5);
    }

    #[test]
    fn remove_keeps_pools_consistent() {
        let mut c = CacheSim::new(4, Marking::new(4, 5));
        for k in 0..4u64 {
            c.access(k);
        }
        c.access(5); // phase boundary, eviction
        c.remove(&5);
        // Keep churning; internal pools must stay consistent (debug asserts).
        for k in 10..40u64 {
            c.access(k);
        }
        assert!(c.len() <= 4);
    }
}
