//! Page-replacement policies over a generic cache simulator.
//!
//! The paper's framework is policy-agnostic: a huge-page decoupling scheme
//! accepts an arbitrary **RAM-replacement policy** and an arbitrary
//! **TLB-replacement policy**, each an online paging algorithm in the classic
//! Sleator–Tarjan sense (Lemma 1 reduces both sub-problems to classic
//! paging). This crate supplies the menu:
//!
//! * online: [`Lru`], [`Fifo`], [`Clock`] (second chance), [`Mru`],
//!   [`Lfu`] (ordered-map implementation), [`Slru`] (segmented LRU),
//!   [`TwoQ`] (simplified 2Q), [`RandomPolicy`];
//! * offline: [`opt::OptCache`] — Belady's farthest-in-future algorithm,
//!   used as the lower-bound comparator in experiments.
//!
//! All online policies plug into [`CacheSim`], which owns the key→slot map
//! and calls back into the policy on hits, insertions, and removals. Every
//! operation is O(1) except `Lfu` bucket maintenance (amortized O(1)).
//!
//! The simulator also supports *explicit invalidation* ([`CacheSim::remove`])
//! because TLBs are invalidated by shootdowns, not only by capacity misses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod cache;
pub mod clock;
pub mod fifo;
pub mod lfu;
pub mod list;
pub mod lru;
pub mod lruk;
pub mod marking;
pub mod mru;
pub mod opt;
pub mod policy;
pub mod random;
pub mod sieve;
pub mod slru;
pub mod twoq;

pub use any::AnyPolicy;
pub use cache::{AccessResult, CacheSim};
pub use clock::Clock;
pub use fifo::Fifo;
pub use lfu::Lfu;
pub use lru::Lru;
pub use lruk::LruK;
pub use marking::Marking;
pub use mru::Mru;
pub use opt::OptCache;
pub use policy::{Policy, PolicyBuild, PolicyKind, SlotId};
pub use random::RandomPolicy;
pub use sieve::Sieve;
pub use slru::Slru;
pub use twoq::TwoQ;

/// Constructs a boxed policy by kind, for runtime-configured experiments.
pub fn make_policy(kind: PolicyKind, capacity: usize, seed: u64) -> Box<dyn Policy> {
    match kind {
        PolicyKind::Lru => Box::new(Lru::new(capacity)),
        PolicyKind::Fifo => Box::new(Fifo::new(capacity)),
        PolicyKind::Clock => Box::new(Clock::new(capacity)),
        PolicyKind::Mru => Box::new(Mru::new(capacity)),
        PolicyKind::Lfu => Box::new(Lfu::new(capacity)),
        PolicyKind::Slru => Box::new(Slru::new(capacity)),
        PolicyKind::TwoQ => Box::new(TwoQ::new(capacity)),
        PolicyKind::Random => Box::new(RandomPolicy::new(capacity, seed)),
        PolicyKind::LruK => Box::new(LruK::two(capacity)),
        PolicyKind::Sieve => Box::new(Sieve::new(capacity)),
        PolicyKind::Marking => Box::new(Marking::new(capacity, seed)),
    }
}
