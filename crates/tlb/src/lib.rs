//! TLB models.
//!
//! A TLB is a small key-value cache: keys are virtual huge-page addresses,
//! values are whatever the encoding scheme stores — a physical huge-page
//! base for classic physically-contiguous huge pages, or a `w`-bit decoupled
//! encoding ψ(u) for the paper's scheme. This crate provides:
//!
//! * [`Tlb`] — fully associative, ℓ entries, pluggable replacement policy
//!   (the paper's experiments model "the TLB as a fully associative cache
//!   and use LRU as the replacement policy", Section 6);
//! * [`SetAssocTlb`] — s sets × a ways with per-set LRU, modeling real
//!   hardware organizations;
//! * [`SplitTlb`] — separate structures per page-size class, as real CPUs
//!   provide ("most systems that implement huge pages use different TLBs for
//!   each size", footnote 1; e.g. Cascade Lake's 1536-entry 4k/2M L2 dTLB
//!   plus a 16-entry 1G TLB);
//! * [`BatchTlb`] — a batched, software-pipelined LRU engine translating
//!   [`batch::LANES`] accesses per step (hash precompute, flat-index probe,
//!   arena prefetch, in-order apply with sequential replay from the first
//!   miss), bit-for-bit equivalent to `Tlb<V, Lru>`.
//!
//! All models support explicit invalidation, needed for TLB shootdowns in
//! the multicore extension and for decoupling-driven value updates.
//!
//! Every variant is generic over its key type ([`TlbKey`]), defaulting to
//! a plain `VirtHugePage` (one address space). Keying by
//! `atp_types::TaggedHugePage` turns any variant into an ASID-tagged TLB
//! with targeted `flush_asid` invalidation, and [`AsidTlb`] adds the
//! global-entry (kernel-bit) matching rule on top — the substrate of the
//! multi-tenant simulations, where context switches flush nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asid;
pub mod batch;
pub mod full;
pub mod key;
pub mod set_assoc;
pub mod split;
pub mod twolevel;

pub use asid::{AsidTlb, AsidTlbStats};
pub use batch::BatchTlb;
pub use full::{Tlb, TlbStats};
pub use key::TlbKey;
pub use set_assoc::SetAssocTlb;
pub use split::SplitTlb;
pub use twolevel::{Level, TwoLevelStats, TwoLevelTlb};
