//! A fully associative TLB with a pluggable replacement policy.

use atp_hash::FxHashMap;
use atp_replacement::{make_policy, AccessResult, CacheSim, Policy, PolicyKind};
use atp_types::VirtHugePage;

/// TLB event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found the huge page.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries installed.
    pub inserts: u64,
    /// Entries explicitly invalidated (shootdowns etc.).
    pub invalidations: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// A fully associative TLB of ℓ entries mapping virtual huge pages to a
/// value payload `V`.
pub struct Tlb<V> {
    sim: CacheSim<VirtHugePage, Box<dyn Policy>>,
    values: FxHashMap<VirtHugePage, V>,
    stats: TlbStats,
}

impl<V> Tlb<V> {
    /// Creates a TLB with `entries` slots and the given replacement policy.
    pub fn new(entries: u64, policy: PolicyKind, seed: u64) -> Self {
        let cap = entries as usize;
        Self {
            sim: CacheSim::new(cap, make_policy(policy, cap, seed)),
            values: FxHashMap::default(),
            stats: TlbStats::default(),
        }
    }

    /// Creates an LRU TLB (the paper's default).
    pub fn lru(entries: u64) -> Self {
        Self::new(entries, PolicyKind::Lru, 0)
    }

    /// Capacity ℓ.
    pub fn capacity(&self) -> usize {
        self.sim.capacity()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Event counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Whether `u` is cached, without touching recency or counters.
    pub fn contains(&self, u: VirtHugePage) -> bool {
        self.sim.contains(&u)
    }

    /// Looks up `u`, updating recency and hit/miss counters.
    pub fn lookup(&mut self, u: VirtHugePage) -> Option<&V> {
        if self.sim.contains(&u) {
            // Touch recency via access (guaranteed hit).
            let r = self.sim.access(u);
            debug_assert!(r.is_hit());
            self.stats.hits += 1;
            self.values.get(&u)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts `u → value`, returning the evicted entry if the TLB was full.
    ///
    /// # Panics
    /// Panics if `u` is already resident (use [`Tlb::update`] to change a
    /// resident value).
    pub fn insert(&mut self, u: VirtHugePage, value: V) -> Option<(VirtHugePage, V)> {
        assert!(!self.sim.contains(&u), "insert of resident TLB entry");
        self.stats.inserts += 1;
        let evicted = self.sim.insert_cold(u);
        self.values.insert(u, value);
        evicted.map(|victim| {
            self.stats.evictions += 1;
            let val = self.values.remove(&victim).expect("victim has a value");
            (victim, val)
        })
    }

    /// Updates the value of a resident entry in place (free in the cost
    /// model — ψ updates do not count as TLB traffic). Returns whether the
    /// entry was resident.
    pub fn update(&mut self, u: VirtHugePage, f: impl FnOnce(&mut V)) -> bool {
        match self.values.get_mut(&u) {
            Some(v) => {
                f(v);
                true
            }
            None => false,
        }
    }

    /// Reads a resident value without touching recency or counters.
    pub fn peek(&self, u: VirtHugePage) -> Option<&V> {
        self.values.get(&u)
    }

    /// Invalidates `u`, returning its value if it was resident.
    pub fn invalidate(&mut self, u: VirtHugePage) -> Option<V> {
        if self.sim.remove(&u) {
            self.stats.invalidations += 1;
            self.values.remove(&u)
        } else {
            None
        }
    }

    /// Accesses `u` like a hardware lookup-and-fill driven by `fill`:
    /// on a miss, `fill(u)` supplies the new value. Returns whether it hit.
    pub fn access_or_fill(&mut self, u: VirtHugePage, fill: impl FnOnce() -> V) -> bool {
        if self.lookup(u).is_some() {
            return true;
        }
        self.insert(u, fill());
        false
    }

    /// Iterates resident (huge page, value) pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&VirtHugePage, &V)> {
        self.values.iter()
    }
}

// Suppress unused-import warning for AccessResult used in debug_assert only.
#[allow(unused)]
fn _assert_types(r: AccessResult<VirtHugePage>) -> bool {
    r.is_hit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_fill() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        assert!(tlb.lookup(VirtHugePage(1)).is_none());
        tlb.insert(VirtHugePage(1), 100);
        assert_eq!(tlb.lookup(VirtHugePage(1)), Some(&100));
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn eviction_returns_victim_value() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        tlb.insert(VirtHugePage(1), 10);
        tlb.insert(VirtHugePage(2), 20);
        let evicted = tlb.insert(VirtHugePage(3), 30);
        assert_eq!(evicted, Some((VirtHugePage(1), 10)));
        assert_eq!(tlb.stats().evictions, 1);
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn lru_order_respected() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        tlb.insert(VirtHugePage(1), 10);
        tlb.insert(VirtHugePage(2), 20);
        tlb.lookup(VirtHugePage(1)); // refresh 1
        let evicted = tlb.insert(VirtHugePage(3), 30);
        assert_eq!(evicted, Some((VirtHugePage(2), 20)));
    }

    #[test]
    fn update_in_place_is_free() {
        let mut tlb: Tlb<Vec<u32>> = Tlb::lru(2);
        tlb.insert(VirtHugePage(5), vec![1]);
        let before = tlb.stats();
        assert!(tlb.update(VirtHugePage(5), |v| v.push(2)));
        assert!(!tlb.update(VirtHugePage(6), |v| v.push(9)));
        assert_eq!(tlb.peek(VirtHugePage(5)), Some(&vec![1, 2]));
        let after = tlb.stats();
        assert_eq!(before, after, "update must not move counters");
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut tlb: Tlb<u64> = Tlb::lru(4);
        tlb.insert(VirtHugePage(7), 70);
        assert_eq!(tlb.invalidate(VirtHugePage(7)), Some(70));
        assert_eq!(tlb.invalidate(VirtHugePage(7)), None);
        assert_eq!(tlb.stats().invalidations, 1);
        assert!(!tlb.contains(VirtHugePage(7)));
    }

    #[test]
    fn access_or_fill_fills_once() {
        let mut tlb: Tlb<u64> = Tlb::lru(4);
        let mut fills = 0;
        assert!(!tlb.access_or_fill(VirtHugePage(1), || {
            fills += 1;
            11
        }));
        assert!(tlb.access_or_fill(VirtHugePage(1), || {
            fills += 1;
            22
        }));
        assert_eq!(fills, 1);
        assert_eq!(tlb.peek(VirtHugePage(1)), Some(&11));
    }

    #[test]
    fn fifo_policy_differs_from_lru() {
        let mut lru: Tlb<()> = Tlb::lru(2);
        let mut fifo: Tlb<()> = Tlb::new(2, PolicyKind::Fifo, 0);
        for t in [&mut lru, &mut fifo] {
            t.insert(VirtHugePage(1), ());
            t.insert(VirtHugePage(2), ());
            t.lookup(VirtHugePage(1));
            t.insert(VirtHugePage(3), ());
        }
        assert!(lru.contains(VirtHugePage(1)));
        assert!(!fifo.contains(VirtHugePage(1)));
    }

    #[test]
    #[should_panic(expected = "insert of resident TLB entry")]
    fn double_insert_panics() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        tlb.insert(VirtHugePage(1), 1);
        tlb.insert(VirtHugePage(1), 2);
    }

    #[test]
    fn values_follow_entries_exactly() {
        // values map and cache sim must stay in lockstep under churn.
        let mut tlb: Tlb<u64> = Tlb::lru(8);
        for i in 0..1000u64 {
            let u = VirtHugePage(i % 23);
            if tlb.lookup(u).is_none() {
                tlb.insert(u, i);
            }
            assert_eq!(tlb.len(), tlb.iter().count());
        }
    }
}
