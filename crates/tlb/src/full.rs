//! A fully associative TLB with a pluggable replacement policy.

use crate::key::TlbKey;
use atp_replacement::{AnyPolicy, CacheSim, Lru, Policy, PolicyBuild, PolicyKind};
use atp_types::{Asid, TaggedHugePage, VirtHugePage};

/// TLB event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found the huge page.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries installed.
    pub inserts: u64,
    /// Entries explicitly invalidated (shootdowns etc.).
    pub invalidations: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// A fully associative TLB of ℓ entries mapping virtual huge pages to a
/// value payload `V`.
///
/// The entry payload lives *inside* the [`CacheSim`] slot arena, so a hit
/// is a single hash probe plus index arithmetic. The policy parameter `P`
/// is monomorphized: `Tlb<V>` (= `Tlb<V, Lru>`) is the paper's default
/// fully-associative LRU TLB with a statically dispatched policy, while
/// [`Tlb::new`] returns `Tlb<V, AnyPolicy>` for [`PolicyKind`]-configured
/// experiments. The key parameter `K` defaults to [`VirtHugePage`]
/// (single address space); multi-tenant simulations use
/// [`TaggedHugePage`] keys, which additionally unlock
/// [`Tlb::flush_asid`].
#[derive(Debug)]
pub struct Tlb<V, P: Policy = Lru, K: TlbKey = VirtHugePage> {
    sim: CacheSim<K, P, V>,
    /// Insert/invalidation/eviction counters; hits and misses live in the
    /// sim (counted by `access_if_present`) so the hit path pays for them
    /// exactly once. [`Tlb::stats`] assembles the full view.
    stats: TlbStats,
}

impl<V, K: TlbKey> Tlb<V, AnyPolicy, K> {
    /// Creates a TLB with `entries` slots and the given replacement policy,
    /// selected at runtime.
    pub fn new(entries: u64, policy: PolicyKind, seed: u64) -> Self {
        let cap = entries as usize;
        Self::with_policy(entries, AnyPolicy::new(policy, cap, seed))
    }
}

impl<V, K: TlbKey> Tlb<V, Lru, K> {
    /// Creates an LRU TLB (the paper's default), fully monomorphized.
    pub fn lru(entries: u64) -> Self {
        Self::with_policy(entries, Lru::new(entries as usize))
    }
}

impl<V, P: Policy, K: TlbKey> Tlb<V, P, K> {
    /// Creates a TLB with `entries` slots driven by a concrete policy value.
    pub fn with_policy(entries: u64, policy: P) -> Self {
        Self {
            sim: CacheSim::new(entries as usize, policy),
            stats: TlbStats::default(),
        }
    }

    /// Creates a TLB with a statically chosen policy built from
    /// `(capacity, seed)` — e.g. `Tlb::<u64, Sieve>::monomorphic(64, 0)`.
    pub fn monomorphic(entries: u64, seed: u64) -> Self
    where
        P: PolicyBuild,
    {
        Self::with_policy(entries, P::build(entries as usize, seed))
    }

    /// Capacity ℓ.
    pub fn capacity(&self) -> usize {
        self.sim.capacity()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Event counters.
    pub fn stats(&self) -> TlbStats {
        TlbStats {
            hits: self.sim.hits(),
            misses: self.sim.misses(),
            ..self.stats
        }
    }

    /// Whether `u` is cached, without touching recency or counters.
    pub fn contains(&self, u: K) -> bool {
        self.sim.contains(&u)
    }

    /// Warms the probe line for `u` without resolving the probe — the
    /// prefetch stage of a batched pipeline. Semantically a no-op.
    #[inline]
    pub fn touch(&self, u: K) {
        self.sim.touch(&u);
    }

    /// Looks up `u`, updating recency and hit/miss counters. One probe.
    #[inline]
    pub fn lookup(&mut self, u: K) -> Option<&V> {
        self.sim.access_if_present(&u)
    }

    /// Inserts `u → value`, returning the evicted entry if the TLB was full.
    ///
    /// # Panics
    /// Panics if `u` is already resident (use [`Tlb::update`] to change a
    /// resident value).
    pub fn insert(&mut self, u: K, value: V) -> Option<(K, V)> {
        assert!(!self.sim.contains(&u), "insert of resident TLB entry");
        self.stats.inserts += 1;
        let evicted = self.sim.insert_cold_with(u, value);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Updates the value of a resident entry in place (free in the cost
    /// model — ψ updates do not count as TLB traffic). Returns whether the
    /// entry was resident.
    pub fn update(&mut self, u: K, f: impl FnOnce(&mut V)) -> bool {
        match self.sim.get_mut(&u) {
            Some(v) => {
                f(v);
                true
            }
            None => false,
        }
    }

    /// Reads a resident value without touching recency or counters.
    pub fn peek(&self, u: K) -> Option<&V> {
        self.sim.get(&u)
    }

    /// Invalidates `u`, returning its value if it was resident.
    pub fn invalidate(&mut self, u: K) -> Option<V> {
        let v = self.sim.remove_entry(&u);
        if v.is_some() {
            self.stats.invalidations += 1;
        }
        v
    }

    /// Accesses `u` like a hardware lookup-and-fill driven by `fill`:
    /// on a miss, `fill(u)` supplies the new value. Returns whether it hit.
    pub fn access_or_fill(&mut self, u: K, fill: impl FnOnce() -> V) -> bool {
        if self.lookup(u).is_some() {
            return true;
        }
        self.insert(u, fill());
        false
    }

    /// Iterates resident (huge page, value) pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.sim.entries()
    }
}

/// ASID-aware operations, available when entries carry an address-space
/// tag.
impl<V, P: Policy> Tlb<V, P, TaggedHugePage> {
    /// Invalidates every entry of address space `asid` — the hardware
    /// `invpcid`-style targeted flush used on tenant retirement and ASID
    /// recycling. Entries tagged [`Asid::GLOBAL`] survive (flushing the
    /// global tag itself is a no-op). Returns how many entries were
    /// removed; each one counts as an invalidation in [`Tlb::stats`].
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        if asid.is_global() {
            return 0;
        }
        let removed = self.sim.remove_matching(|k| k.asid == asid);
        self.stats.invalidations += removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_fill() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        assert!(tlb.lookup(VirtHugePage(1)).is_none());
        tlb.insert(VirtHugePage(1), 100);
        assert_eq!(tlb.lookup(VirtHugePage(1)), Some(&100));
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn eviction_returns_victim_value() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        tlb.insert(VirtHugePage(1), 10);
        tlb.insert(VirtHugePage(2), 20);
        let evicted = tlb.insert(VirtHugePage(3), 30);
        assert_eq!(evicted, Some((VirtHugePage(1), 10)));
        assert_eq!(tlb.stats().evictions, 1);
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn lru_order_respected() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        tlb.insert(VirtHugePage(1), 10);
        tlb.insert(VirtHugePage(2), 20);
        tlb.lookup(VirtHugePage(1)); // refresh 1
        let evicted = tlb.insert(VirtHugePage(3), 30);
        assert_eq!(evicted, Some((VirtHugePage(2), 20)));
    }

    #[test]
    fn update_in_place_is_free() {
        let mut tlb: Tlb<Vec<u32>> = Tlb::lru(2);
        tlb.insert(VirtHugePage(5), vec![1]);
        let before = tlb.stats();
        assert!(tlb.update(VirtHugePage(5), |v| v.push(2)));
        assert!(!tlb.update(VirtHugePage(6), |v| v.push(9)));
        assert_eq!(tlb.peek(VirtHugePage(5)), Some(&vec![1, 2]));
        let after = tlb.stats();
        assert_eq!(before, after, "update must not move counters");
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut tlb: Tlb<u64> = Tlb::lru(4);
        tlb.insert(VirtHugePage(7), 70);
        assert_eq!(tlb.invalidate(VirtHugePage(7)), Some(70));
        assert_eq!(tlb.invalidate(VirtHugePage(7)), None);
        assert_eq!(tlb.stats().invalidations, 1);
        assert!(!tlb.contains(VirtHugePage(7)));
    }

    #[test]
    fn access_or_fill_fills_once() {
        let mut tlb: Tlb<u64> = Tlb::lru(4);
        let mut fills = 0;
        assert!(!tlb.access_or_fill(VirtHugePage(1), || {
            fills += 1;
            11
        }));
        assert!(tlb.access_or_fill(VirtHugePage(1), || {
            fills += 1;
            22
        }));
        assert_eq!(fills, 1);
        assert_eq!(tlb.peek(VirtHugePage(1)), Some(&11));
    }

    #[test]
    fn fifo_policy_differs_from_lru() {
        fn script<P: Policy>(t: &mut Tlb<(), P>) {
            t.insert(VirtHugePage(1), ());
            t.insert(VirtHugePage(2), ());
            t.lookup(VirtHugePage(1));
            t.insert(VirtHugePage(3), ());
        }
        let mut lru: Tlb<()> = Tlb::lru(2);
        let mut fifo: Tlb<(), AnyPolicy> = Tlb::new(2, PolicyKind::Fifo, 0);
        script(&mut lru);
        script(&mut fifo);
        assert!(lru.contains(VirtHugePage(1)));
        assert!(!fifo.contains(VirtHugePage(1)));
    }

    #[test]
    fn monomorphic_sieve_matches_runtime_sieve() {
        use atp_replacement::Sieve;
        let mut mono: Tlb<u64, Sieve> = Tlb::monomorphic(3, 0);
        let mut any: Tlb<u64, AnyPolicy> = Tlb::new(3, PolicyKind::Sieve, 0);
        for i in 0..400u64 {
            let u = VirtHugePage(i % 7);
            assert_eq!(
                mono.access_or_fill(u, || i),
                any.access_or_fill(u, || i),
                "diverged at access {i}"
            );
        }
        assert_eq!(mono.stats(), any.stats());
    }

    #[test]
    #[should_panic(expected = "insert of resident TLB entry")]
    fn double_insert_panics() {
        let mut tlb: Tlb<u64> = Tlb::lru(2);
        tlb.insert(VirtHugePage(1), 1);
        tlb.insert(VirtHugePage(1), 2);
    }

    #[test]
    fn flush_asid_removes_only_that_tenant() {
        let mut tlb: Tlb<u64, Lru, TaggedHugePage> = Tlb::lru(8);
        for i in 0..3u64 {
            tlb.insert(TaggedHugePage::new(Asid(1), VirtHugePage(i)), i);
            tlb.insert(TaggedHugePage::new(Asid(2), VirtHugePage(i)), i);
        }
        tlb.insert(TaggedHugePage::global(VirtHugePage(9)), 99);
        assert_eq!(tlb.flush_asid(Asid(1)), 3);
        assert_eq!(tlb.len(), 4);
        assert!(!tlb.contains(TaggedHugePage::new(Asid(1), VirtHugePage(0))));
        assert!(tlb.contains(TaggedHugePage::new(Asid(2), VirtHugePage(0))));
        assert!(tlb.contains(TaggedHugePage::global(VirtHugePage(9))));
        assert_eq!(tlb.flush_asid(Asid(1)), 0);
        assert_eq!(tlb.flush_asid(Asid::GLOBAL), 0, "global flush is a no-op");
        assert_eq!(tlb.stats().invalidations, 3);
    }

    #[test]
    fn values_follow_entries_exactly() {
        // slot arena and key map must stay in lockstep under churn.
        let mut tlb: Tlb<u64> = Tlb::lru(8);
        for i in 0..1000u64 {
            let u = VirtHugePage(i % 23);
            if tlb.lookup(u).is_none() {
                tlb.insert(u, i);
            }
            assert_eq!(tlb.len(), tlb.iter().count());
        }
    }
}
