//! Split per-page-size TLBs.
//!
//! Real CPUs dedicate separate TLBs to each page size (footnote 1 of the
//! paper; §7 cites Cascade Lake: a 1536-entry L2 dTLB for 4 kB/2 MB pages
//! and a 16-entry TLB for 1 GB pages). The paper notes that "the actual
//! coverage gains are limited by the dedicated TLB size" — this model lets
//! experiments quantify that: a huge-page size routed to a tiny dedicated
//! TLB can lose more to capacity misses than it gains in coverage.

use crate::full::{Tlb, TlbStats};
use crate::key::TlbKey;
use atp_replacement::{AnyPolicy, Policy, PolicyBuild, PolicyKind};
use atp_types::{Asid, TaggedHugePage, VirtHugePage};

/// One size class of a split TLB.
#[derive(Debug)]
struct SizeClass<V, P: Policy, K: TlbKey> {
    /// Huge-page sizes (in base pages) routed to this structure.
    sizes: Vec<u64>,
    tlb: Tlb<V, P, K>,
}

/// A TLB composed of per-page-size structures. `P` is the per-class
/// replacement policy: runtime-selected via [`SplitTlb::new`]
/// ([`AnyPolicy`]) or statically dispatched via [`SplitTlb::monomorphic`].
#[derive(Debug)]
pub struct SplitTlb<V, P: Policy = AnyPolicy, K: TlbKey = VirtHugePage> {
    classes: Vec<SizeClass<V, P, K>>,
}

impl<V, K: TlbKey> SplitTlb<V, AnyPolicy, K> {
    /// Creates a split TLB from `(sizes, entries)` class descriptions.
    ///
    /// # Panics
    /// Panics if classes are empty, a class has no sizes, or a size appears
    /// in two classes.
    pub fn new(classes: &[(&[u64], u64)], policy: PolicyKind, seed: u64) -> Self {
        Self::build_with(classes, seed, |entries, class_seed| {
            Tlb::new(entries, policy, class_seed)
        })
    }

    /// The Cascade Lake-like default: 1536 entries for sizes ≤ 512 pages
    /// (4 kB & 2 MB), 16 entries for larger (1 GB-class) sizes.
    pub fn cascade_lake(seed: u64) -> Self {
        Self::new(
            &[
                (&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512], 1536),
                (&[1024, 2048, 4096, 8192, 1 << 18], 16),
            ],
            PolicyKind::Lru,
            seed,
        )
    }
}

impl<V, P: Policy, K: TlbKey> SplitTlb<V, P, K> {
    /// Creates a split TLB with a statically chosen policy, seeding each
    /// class exactly as [`SplitTlb::new`] does.
    pub fn monomorphic(classes: &[(&[u64], u64)], seed: u64) -> Self
    where
        P: PolicyBuild,
    {
        Self::build_with(classes, seed, |entries, class_seed| {
            Tlb::monomorphic(entries, class_seed)
        })
    }

    /// Shared constructor plumbing: validates the class table and builds
    /// each class's TLB with the per-class seed `seed + i`.
    fn build_with(
        classes: &[(&[u64], u64)],
        seed: u64,
        mut make_tlb: impl FnMut(u64, u64) -> Tlb<V, P, K>,
    ) -> Self {
        assert!(!classes.is_empty(), "at least one size class required");
        let mut seen = atp_hash::FxHashSet::default();
        let built = classes
            .iter()
            .enumerate()
            .map(|(i, (sizes, entries))| {
                assert!(!sizes.is_empty(), "size class must route some sizes");
                for &s in *sizes {
                    assert!(seen.insert(s), "size {s} routed to two classes");
                }
                SizeClass {
                    sizes: sizes.to_vec(),
                    tlb: make_tlb(*entries, seed.wrapping_add(i as u64)),
                }
            })
            .collect();
        Self { classes: built }
    }

    /// Resolves `size` to its class and a size-tagged key. Entries of
    /// different page sizes sharing one physical structure are distinguished
    /// by their size tag (hardware keys entries by (tag, page size)).
    fn resolve(&mut self, u: K, size: u64) -> (&mut Tlb<V, P, K>, K) {
        let idx = self
            .classes
            .iter()
            .position(|c| c.sizes.contains(&size))
            .unwrap_or_else(|| panic!("no TLB class routes huge-page size {size}"));
        let class = &mut self.classes[idx];
        let size_idx = class
            .sizes
            .iter()
            .position(|&s| s == size)
            // atp-lint: allow(unwrap-policy, reason = "invariant: the routing table maps every size class, validated at construction")
            .expect("size present") as u64;
        let key = u.with_class_tag(size_idx);
        (&mut class.tlb, key)
    }

    /// Looks up huge page `u` of the given size class.
    pub fn lookup(&mut self, u: K, size: u64) -> Option<&V> {
        let (tlb, key) = self.resolve(u, size);
        tlb.lookup(key)
    }

    /// Inserts into the TLB class for `size`.
    pub fn insert(&mut self, u: K, size: u64, value: V) -> Option<(K, V)> {
        let (tlb, key) = self.resolve(u, size);
        tlb.insert(key, value).map(|(k, v)| (k.class_untag(), v))
    }

    /// Invalidates `u` in the class for `size`.
    pub fn invalidate(&mut self, u: K, size: u64) -> Option<V> {
        let (tlb, key) = self.resolve(u, size);
        tlb.invalidate(key)
    }

    /// Aggregated stats across classes.
    pub fn stats(&self) -> TlbStats {
        let mut out = TlbStats::default();
        for c in &self.classes {
            let s = c.tlb.stats();
            out.hits += s.hits;
            out.misses += s.misses;
            out.inserts += s.inserts;
            out.invalidations += s.invalidations;
            out.evictions += s.evictions;
        }
        out
    }

    /// Per-class (sizes, stats) view.
    pub fn class_stats(&self) -> Vec<(Vec<u64>, TlbStats)> {
        self.classes
            .iter()
            .map(|c| (c.sizes.clone(), c.tlb.stats()))
            .collect()
    }
}

/// ASID-aware operations for tagged keys.
impl<V, P: Policy> SplitTlb<V, P, TaggedHugePage> {
    /// Invalidates every entry of `asid` across all size classes (global
    /// entries survive). Returns how many entries were removed.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        self.classes
            .iter_mut()
            .map(|c| c.tlb.flush_asid(asid))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_size() {
        let mut t: SplitTlb<u64> = SplitTlb::new(&[(&[1], 4), (&[512], 2)], PolicyKind::Lru, 0);
        t.insert(VirtHugePage(1), 1, 10);
        t.insert(VirtHugePage(1), 512, 20); // same id, different class
        assert_eq!(t.lookup(VirtHugePage(1), 1), Some(&10));
        assert_eq!(t.lookup(VirtHugePage(1), 512), Some(&20));
    }

    #[test]
    #[should_panic(expected = "no TLB class routes")]
    fn unrouted_size_panics() {
        let mut t: SplitTlb<()> = SplitTlb::new(&[(&[1], 4)], PolicyKind::Lru, 0);
        t.lookup(VirtHugePage(0), 64);
    }

    #[test]
    #[should_panic(expected = "routed to two classes")]
    fn duplicate_size_rejected() {
        let _: SplitTlb<()> = SplitTlb::new(&[(&[1], 4), (&[1], 2)], PolicyKind::Lru, 0);
    }

    #[test]
    fn small_dedicated_tlb_limits_coverage() {
        // 16-entry class thrashes on a 32-huge-page working set even though
        // the other class is idle — the paper's "coverage gains are limited
        // by the dedicated TLB size".
        let mut t: SplitTlb<()> = SplitTlb::new(&[(&[1], 1536), (&[1024], 16)], PolicyKind::Lru, 0);
        let mut misses = 0u64;
        for round in 0..10u64 {
            for u in 0..32u64 {
                if t.lookup(VirtHugePage(u), 1024).is_none() {
                    misses += 1;
                    t.insert(VirtHugePage(u), 1024, ());
                }
                let _ = round;
            }
        }
        assert_eq!(
            misses, 320,
            "16-entry LRU TLB must thrash on 32-entry cycle"
        );
    }

    #[test]
    fn cascade_lake_shape() {
        let mut t: SplitTlb<u64> = SplitTlb::cascade_lake(0);
        t.insert(VirtHugePage(0), 1, 1);
        t.insert(VirtHugePage(0), 512, 2);
        t.insert(VirtHugePage(0), 1024, 3);
        assert_eq!(t.lookup(VirtHugePage(0), 1), Some(&1));
        assert_eq!(t.lookup(VirtHugePage(0), 512), Some(&2));
        assert_eq!(t.lookup(VirtHugePage(0), 1024), Some(&3));
        assert_eq!(t.stats().hits, 3);
    }

    #[test]
    fn aggregate_stats_sum_classes() {
        let mut t: SplitTlb<()> = SplitTlb::new(&[(&[1], 2), (&[2], 2)], PolicyKind::Lru, 0);
        t.lookup(VirtHugePage(0), 1); // miss
        t.lookup(VirtHugePage(0), 2); // miss
        t.insert(VirtHugePage(0), 1, ());
        t.lookup(VirtHugePage(0), 1); // hit
        let s = t.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.inserts, 1);
    }
}
