//! The key abstraction shared by every TLB organization.
//!
//! PR 6 makes all four TLB variants generic over their key so the same
//! structures serve single-tenant simulations (keyed by [`VirtHugePage`],
//! the default — zero change to existing monomorphizations) and
//! multi-tenant ones (keyed by [`TaggedHugePage`], where the ASID is part
//! of the match so context switches need no flush).

use atp_types::{TaggedHugePage, VirtHugePage};
use core::hash::Hash;

/// Bits of a huge-page id reserved below the split-TLB size-class tag.
pub(crate) const CLASS_TAG_SHIFT: u32 = 58;

/// A TLB entry key.
///
/// Beyond plain map-key behaviour (`Eq + Hash + Copy`), a key knows how
/// to expose routing bits for set selection and how to carry a split-TLB
/// size-class tag. Implementations must keep tagging injective: distinct
/// `(key, tag)` pairs map to distinct tagged keys, and
/// `k.with_class_tag(t).class_untag() == k`.
pub trait TlbKey: Copy + Eq + Hash + core::fmt::Debug {
    /// Bits fed to the set-index hash. Must mix in every field that
    /// distinguishes entries (for ASID-tagged keys, the ASID — so two
    /// tenants' copies of one page spread over different sets).
    fn route_bits(self) -> u64;

    /// Embeds a split-TLB size-class tag (`tag < 64`) into the key.
    fn with_class_tag(self, tag: u64) -> Self;

    /// Strips the size-class tag applied by [`TlbKey::with_class_tag`].
    fn class_untag(self) -> Self;
}

impl TlbKey for VirtHugePage {
    #[inline]
    fn route_bits(self) -> u64 {
        self.0
    }

    #[inline]
    fn with_class_tag(self, tag: u64) -> Self {
        debug_assert!(
            self.0 < 1 << CLASS_TAG_SHIFT,
            "huge-page id too large for size tagging"
        );
        VirtHugePage((tag << CLASS_TAG_SHIFT) | self.0)
    }

    #[inline]
    fn class_untag(self) -> Self {
        VirtHugePage(self.0 & ((1 << CLASS_TAG_SHIFT) - 1))
    }
}

impl TlbKey for TaggedHugePage {
    /// Mixes the ASID into the routing bits with a fixed odd multiplier
    /// (the 64-bit golden-ratio constant) so one hot page replicated
    /// across tenants does not pile into a single set.
    #[inline]
    fn route_bits(self) -> u64 {
        self.huge
            .0
            .wrapping_add((self.asid.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[inline]
    fn with_class_tag(self, tag: u64) -> Self {
        TaggedHugePage::new(self.asid, self.huge.with_class_tag(tag))
    }

    #[inline]
    fn class_untag(self) -> Self {
        TaggedHugePage::new(self.asid, self.huge.class_untag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atp_types::Asid;

    #[test]
    fn virt_tagging_round_trips() {
        let k = VirtHugePage(0xABCDE);
        for tag in [0u64, 1, 5, 63] {
            let t = k.with_class_tag(tag);
            assert_eq!(t.class_untag(), k);
            if tag != 0 {
                assert_ne!(t, k);
            }
        }
    }

    #[test]
    fn tagged_tagging_preserves_asid() {
        let k = TaggedHugePage::new(Asid(7), VirtHugePage(42));
        let t = k.with_class_tag(3);
        assert_eq!(t.asid, Asid(7));
        assert_eq!(t.class_untag(), k);
    }

    #[test]
    fn route_bits_distinguish_tenants() {
        let a = TaggedHugePage::new(Asid(1), VirtHugePage(99)).route_bits();
        let b = TaggedHugePage::new(Asid(2), VirtHugePage(99)).route_bits();
        assert_ne!(a, b, "same page in two tenants must route differently");
    }

    #[test]
    fn virt_route_bits_are_identity() {
        // Single-tenant set selection must be bit-for-bit what it was
        // before keys were generic.
        assert_eq!(VirtHugePage(12345).route_bits(), 12345);
    }
}
