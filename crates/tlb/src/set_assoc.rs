//! A set-associative TLB.
//!
//! Real TLBs are set-associative: the huge-page address selects one of `s`
//! sets, and only the `a` ways of that set are searched. Per-set LRU over a
//! handful of ways is how hardware actually approximates LRU. Each set is a
//! fused slot-arena [`CacheSim`] with a monomorphized [`Lru`] policy — a
//! way hit is one hash probe into the set's arena, exactly matching the
//! recency-ordered-`Vec` model this replaced (MRU at front, evict the back).

use atp_hash::mix::{mix2, reduce};
use atp_replacement::{CacheSim, Lru};
use atp_types::{Asid, TaggedHugePage, VirtHugePage};

use crate::full::TlbStats;
use crate::key::TlbKey;

/// A set-associative TLB with per-set LRU replacement. Keys default to
/// [`VirtHugePage`]; [`TaggedHugePage`] keys mix the ASID into set
/// selection (via [`TlbKey::route_bits`]) and unlock
/// [`SetAssocTlb::flush_asid`].
#[derive(Debug)]
pub struct SetAssocTlb<V, K: TlbKey = VirtHugePage> {
    sets: Vec<CacheSim<K, Lru, V>>,
    ways: usize,
    seed: u64,
    stats: TlbStats,
}

impl<V, K: TlbKey> SetAssocTlb<V, K> {
    /// Creates a TLB with `sets × ways` entries.
    ///
    /// # Panics
    /// Panics if `sets == 0` or `ways == 0`.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be nonzero");
        Self {
            sets: (0..sets)
                .map(|_| CacheSim::new(ways, Lru::new(ways)))
                .collect(),
            ways,
            seed,
            stats: TlbStats::default(),
        }
    }

    /// Total capacity (sets × ways).
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.sets.iter().map(CacheSim::len).sum()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(CacheSim::is_empty)
    }

    /// Event counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    #[inline]
    fn set_of(&self, u: K) -> usize {
        reduce(mix2(self.seed, u.route_bits()), self.sets.len() as u64) as usize
    }

    /// Looks up `u`, updating per-set recency and counters. One probe into
    /// the selected set's arena.
    #[inline]
    pub fn lookup(&mut self, u: K) -> Option<&V> {
        let si = self.set_of(u);
        match self.sets[si].access_if_present(&u) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `u → value`, returning the per-set LRU victim if the set was
    /// full.
    ///
    /// # Panics
    /// Panics if `u` is already resident.
    pub fn insert(&mut self, u: K, value: V) -> Option<(K, V)> {
        let si = self.set_of(u);
        let set = &mut self.sets[si];
        assert!(!set.contains(&u), "insert of resident TLB entry");
        self.stats.inserts += 1;
        let evicted = set.insert_cold_with(u, value);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Invalidates `u`, returning its value if resident.
    pub fn invalidate(&mut self, u: K) -> Option<V> {
        let si = self.set_of(u);
        let v = self.sets[si].remove_entry(&u);
        if v.is_some() {
            self.stats.invalidations += 1;
        }
        v
    }

    /// Whether `u` is resident (no counter/recency effects).
    pub fn contains(&self, u: K) -> bool {
        let si = self.set_of(u);
        self.sets[si].contains(&u)
    }
}

/// ASID-aware operations for tagged keys.
impl<V> SetAssocTlb<V, TaggedHugePage> {
    /// Invalidates every entry of `asid` across all sets (global entries
    /// survive). Returns how many entries were removed; each counts as an
    /// invalidation in [`SetAssocTlb::stats`].
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        if asid.is_global() {
            return 0;
        }
        let mut removed = 0u64;
        for set in &mut self.sets {
            removed += set.remove_matching(|k| k.asid == asid);
        }
        self.stats.invalidations += removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fill_and_hit() {
        let mut t: SetAssocTlb<u64> = SetAssocTlb::new(4, 2, 0);
        t.insert(VirtHugePage(1), 10);
        assert_eq!(t.lookup(VirtHugePage(1)), Some(&10));
        assert!(t.lookup(VirtHugePage(2)).is_none());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn per_set_lru_eviction() {
        // Single set to make conflict behaviour deterministic.
        let mut t: SetAssocTlb<u64> = SetAssocTlb::new(1, 2, 0);
        t.insert(VirtHugePage(1), 1);
        t.insert(VirtHugePage(2), 2);
        t.lookup(VirtHugePage(1));
        let evicted = t.insert(VirtHugePage(3), 3);
        assert_eq!(evicted, Some((VirtHugePage(2), 2)));
    }

    #[test]
    fn conflict_misses_despite_free_capacity() {
        // Set-associativity's defining artifact: conflicts evict even when
        // other sets are empty. With 1 way per set, two keys in the same set
        // always conflict. Find two colliding keys first.
        let probe: SetAssocTlb<()> = SetAssocTlb::new(8, 1, 42);
        let s0 = probe.set_of(VirtHugePage(0));
        let other = (1..1000u64)
            .find(|&k| probe.set_of(VirtHugePage(k)) == s0)
            .expect("collision exists");
        let mut t: SetAssocTlb<()> = SetAssocTlb::new(8, 1, 42);
        t.insert(VirtHugePage(0), ());
        let evicted = t.insert(VirtHugePage(other), ());
        assert_eq!(evicted.map(|e| e.0), Some(VirtHugePage(0)));
        assert!(t.len() < t.capacity());
    }

    #[test]
    fn invalidate_works() {
        let mut t: SetAssocTlb<u64> = SetAssocTlb::new(4, 4, 1);
        t.insert(VirtHugePage(9), 99);
        assert_eq!(t.invalidate(VirtHugePage(9)), Some(99));
        assert_eq!(t.invalidate(VirtHugePage(9)), None);
        assert!(!t.contains(VirtHugePage(9)));
    }

    #[test]
    fn capacity_and_len() {
        let mut t: SetAssocTlb<()> = SetAssocTlb::new(16, 4, 2);
        assert_eq!(t.capacity(), 64);
        for k in 0..40u64 {
            if !t.contains(VirtHugePage(k)) {
                t.insert(VirtHugePage(k), ());
            }
        }
        assert!(t.len() <= 40);
    }

    #[test]
    fn flush_asid_sweeps_all_sets() {
        let mut t: SetAssocTlb<u64, TaggedHugePage> = SetAssocTlb::new(4, 2, 3);
        for i in 0..6u64 {
            t.insert(TaggedHugePage::new(Asid(1), VirtHugePage(i)), i);
        }
        t.insert(TaggedHugePage::new(Asid(2), VirtHugePage(0)), 77);
        t.insert(TaggedHugePage::global(VirtHugePage(1)), 88);
        let before = t.len() as u64;
        let flushed = t.flush_asid(Asid(1));
        assert_eq!(t.len() as u64, before - flushed);
        assert!(t.contains(TaggedHugePage::new(Asid(2), VirtHugePage(0))));
        assert!(t.contains(TaggedHugePage::global(VirtHugePage(1))));
        assert_eq!(t.flush_asid(Asid(1)), 0);
    }

    #[test]
    fn fully_assoc_equivalent_when_one_set() {
        // s=1 behaves exactly like a fully associative LRU TLB.
        use crate::full::Tlb;
        let mut sa: SetAssocTlb<u64> = SetAssocTlb::new(1, 4, 0);
        let mut fa: Tlb<u64> = Tlb::lru(4);
        let trace: Vec<u64> = vec![1, 2, 3, 1, 4, 5, 2, 1, 6, 3, 3, 7, 1];
        for &k in &trace {
            let u = VirtHugePage(k);
            let h1 = sa.lookup(u).is_some();
            let h2 = fa.lookup(u).is_some();
            assert_eq!(h1, h2, "divergence at key {k}");
            if !h1 {
                sa.insert(u, k);
                fa.insert(u, k);
            }
        }
    }
}
